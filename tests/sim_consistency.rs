//! Cross-crate consistency between the trace evaluator and the
//! pipeline timing model, plus hybrid-predictor sanity at system
//! level.

use branchnet::core::hybrid::HybridPredictor;
use branchnet::sim::{simulate, simulate_with_oracle, CpuConfig};
use branchnet::tage::{TageScL, TageSclConfig};
use branchnet::trace::run_one as evaluate;
use branchnet::workloads::spec::{Benchmark, SpecSuite};

#[test]
fn sim_mpki_equals_evaluator_mpki() {
    let bench = SpecSuite::benchmark(Benchmark::Mcf);
    let trace = bench.generate(&bench.inputs().test[0], 20_000);
    let cfg = CpuConfig::skylake_like();
    let sim = simulate(&trace, &mut TageScL::new(&TageSclConfig::tage_sc_l_64kb()), &cfg);
    let eval = evaluate(&mut TageScL::new(&TageSclConfig::tage_sc_l_64kb()), &trace);
    assert!((sim.mpki() - eval.mpki()).abs() < 1e-9);
    assert_eq!(sim.instructions as f64, eval.instructions());
}

#[test]
fn better_predictors_earn_higher_ipc_across_workloads() {
    let cfg = CpuConfig::skylake_like();
    for bench in [Benchmark::Leela, Benchmark::Xz, Benchmark::X264] {
        let w = SpecSuite::benchmark(bench);
        let trace = w.generate(&w.inputs().test[0], 20_000);
        let oracle = simulate_with_oracle(&trace, &cfg);
        let tage = simulate(&trace, &mut TageScL::new(&TageSclConfig::tage_sc_l_64kb()), &cfg);
        let weak = simulate(&trace, &mut branchnet::tage::Bimodal::new(10, 2), &cfg);
        assert!(
            oracle.ipc() >= tage.ipc() && tage.ipc() >= weak.ipc() * 0.999,
            "{}: oracle {:.3} >= tage {:.3} >= bimodal {:.3}",
            bench.name(),
            oracle.ipc(),
            tage.ipc(),
            weak.ipc()
        );
    }
}

#[test]
fn empty_hybrid_is_transparent_in_the_pipeline_model() {
    let bench = SpecSuite::benchmark(Benchmark::Perlbench);
    let trace = bench.generate(&bench.inputs().test[2], 15_000);
    let cfg = CpuConfig::skylake_like();
    let base_cfg = TageSclConfig::tage_sc_l_64kb();
    let a = simulate(&trace, &mut TageScL::new(&base_cfg), &cfg);
    let b = simulate(&trace, &mut HybridPredictor::new(&base_cfg), &cfg);
    assert_eq!(a.mispredictions, b.mispredictions);
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn easy_benchmarks_run_near_machine_width() {
    let cfg = CpuConfig::skylake_like();
    let w = SpecSuite::benchmark(Benchmark::Exchange2);
    let trace = w.generate(&w.inputs().test[0], 20_000);
    let r = simulate(&trace, &mut TageScL::new(&TageSclConfig::tage_sc_l_64kb()), &cfg);
    assert!(r.ipc() > cfg.fetch_width as f64 * 0.6, "exchange2 IPC {:.2}", r.ipc());
}
