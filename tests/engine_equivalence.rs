//! Integration tests for the inference-engine semantics: the streaming
//! engine must agree with the batch (training-time) datapath, and its
//! recovery mechanism must be exact — across crates, on realistic
//! workload traces rather than synthetic unit fixtures.

use branchnet::core::config::{BranchNetConfig, SliceConfig};
use branchnet::core::dataset::extract;
use branchnet::core::engine::InferenceEngine;
use branchnet::core::quantize::{QuantMode, QuantizedMini};
use branchnet::core::trainer::{train_model, TrainOptions};
use branchnet::workloads::spec::{Benchmark, SpecSuite};

fn all_precise_config() -> BranchNetConfig {
    BranchNetConfig {
        name: "itest-precise".into(),
        slices: vec![
            SliceConfig { history: 24, channels: 3, pool_width: 6, precise_pooling: true },
            SliceConfig { history: 48, channels: 2, pool_width: 12, precise_pooling: true },
        ],
        pc_bits: 12,
        conv_hash_bits: Some(7),
        embedding_dim: 0,
        conv_width: 1,
        hidden: vec![6],
        fc_quant_bits: Some(4),
        tanh_activations: true,
    }
}

fn trained_quant(cfg: &BranchNetConfig) -> QuantizedMini {
    let traces = SpecSuite::benchmark(Benchmark::Leela).trace_set(15_000);
    let ds = extract(&traces.train, 0x1108, cfg.window_len(), cfg.pc_bits);
    let (model, _) =
        train_model(cfg, &ds, &TrainOptions { epochs: 4, max_examples: 800, ..Default::default() });
    QuantizedMini::from_model(&model)
}

#[test]
fn streaming_engine_agrees_with_batch_datapath_on_real_traces() {
    let cfg = all_precise_config();
    let quant = trained_quant(&cfg);
    let mut engine = InferenceEngine::new(quant.clone()).unwrap();

    let trace = SpecSuite::benchmark(Benchmark::Leela)
        .generate(&SpecSuite::benchmark(Benchmark::Leela).inputs().test[0], 4_000);
    let encoded: Vec<u32> =
        trace.iter().filter(|r| r.kind.is_conditional()).map(|r| r.encode(cfg.pc_bits)).collect();
    let w = cfg.window_len();
    let mut checked = 0;
    for (i, &e) in encoded.iter().enumerate() {
        engine.update(e);
        if i + 1 >= w && i % 7 == 0 {
            let window = encoded[i + 1 - w..=i].to_vec();
            assert_eq!(
                engine.predict(),
                quant.predict(&window, QuantMode::Full),
                "engine diverged from batch path at branch {i}"
            );
            checked += 1;
        }
    }
    assert!(checked > 400, "only {checked} positions compared");
}

#[test]
fn checkpoint_recovery_is_exact_mid_workload() {
    let mut cfg = all_precise_config();
    cfg.slices[1].precise_pooling = false; // exercise sliding state too
    let quant = trained_quant(&cfg);
    let mut engine = InferenceEngine::new(quant).unwrap();

    let trace = SpecSuite::benchmark(Benchmark::Mcf)
        .generate(&SpecSuite::benchmark(Benchmark::Mcf).inputs().test[1], 3_000);
    let encoded: Vec<u32> =
        trace.iter().filter(|r| r.kind.is_conditional()).map(|r| r.encode(cfg.pc_bits)).collect();

    for &e in &encoded[..1500] {
        engine.update(e);
    }
    let ckpt = engine.checkpoint();
    let reference = engine.predict();
    for &e in &encoded[1500..1700] {
        engine.update(e); // wrong path
    }
    engine.restore(&ckpt);
    assert_eq!(engine.predict(), reference);
    // Replaying the correct path must match a straight run.
    let mut straight = InferenceEngine::new(engine.model().clone()).unwrap();
    for &e in &encoded {
        straight.update(e);
    }
    for &e in &encoded[1500..] {
        engine.update(e);
    }
    assert_eq!(engine.checkpoint(), straight.checkpoint());
}

#[test]
fn engine_storage_matches_table2_accounting() {
    let cfg = BranchNetConfig::mini_05kb();
    let quant = trained_quant(&cfg);
    let engine = InferenceEngine::new(quant).unwrap();
    let s = engine.storage();
    assert_eq!(s.total_bits(), branchnet::core::storage::storage_breakdown(&cfg).total_bits());
    // The 0.5 KB preset must land near its label.
    assert!(s.total_kb() > 0.25 && s.total_kb() < 0.75, "{} KB", s.total_kb());
}
