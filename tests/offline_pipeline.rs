//! End-to-end integration test: the complete offline methodology of
//! paper Section V-E on a synthetic workload, across all workspace
//! crates (workloads → tage → core → hybrid).

use branchnet::core::config::BranchNetConfig;
use branchnet::core::engine::InferenceEngine;
use branchnet::core::hybrid::{AttachedModel, HybridPredictor};
use branchnet::core::quantize::QuantizedMini;
use branchnet::core::selection::{offline_train, PipelineOptions};
use branchnet::core::trainer::TrainOptions;
use branchnet::tage::{TageScL, TageSclConfig};
use branchnet::trace::run_one as evaluate;
use branchnet::trace::PredictionStats;
use branchnet::workloads::spec::{Benchmark, SpecSuite};

fn pipeline_options() -> PipelineOptions {
    PipelineOptions {
        candidates: 4,
        train: TrainOptions { epochs: 8, lr: 0.02, max_examples: 1_200, ..Default::default() },
        ..Default::default()
    }
}

#[test]
fn offline_training_beats_baseline_on_unseen_inputs() {
    let traces = SpecSuite::benchmark(Benchmark::Xz).trace_set(25_000);
    let baseline_cfg = TageSclConfig::tage_sc_l_64kb();

    let pack =
        offline_train(&BranchNetConfig::big_scaled(), &baseline_cfg, &traces, &pipeline_options());
    assert!(!pack.is_empty(), "xz must yield improvable branches");
    for (r, _) in &pack {
        assert!(r.mispredictions_avoided > 0.0, "selection keeps only improvements: {r:?}");
        assert!(r.model_accuracy > r.baseline_accuracy, "{r:?}");
    }

    let mut hybrid = HybridPredictor::new(&baseline_cfg);
    for (r, m) in pack {
        hybrid.attach(r.pc, AttachedModel::Float(m)).expect("float attach");
    }

    let mut base_agg = PredictionStats::new();
    let mut hybrid_agg = PredictionStats::new();
    for t in &traces.test {
        let mut base = TageScL::new(&baseline_cfg);
        base_agg.merge(&evaluate(&mut base, t));
        hybrid.reset_runtime_state();
        hybrid_agg.merge(&evaluate(&mut hybrid, t));
    }
    assert!(
        hybrid_agg.mpki() < base_agg.mpki(),
        "hybrid {:.3} MPKI must beat baseline {:.3} MPKI on unseen inputs",
        hybrid_agg.mpki(),
        base_agg.mpki()
    );
}

#[test]
fn quantized_engines_also_beat_baseline() {
    let traces = SpecSuite::benchmark(Benchmark::Xz).trace_set(25_000);
    let baseline_cfg = TageSclConfig::tage_sc_l_64kb().without_sc_local();

    let pack =
        offline_train(&BranchNetConfig::mini_2kb(), &baseline_cfg, &traces, &pipeline_options());
    assert!(!pack.is_empty());

    let mut hybrid = HybridPredictor::new(&baseline_cfg);
    for (r, m) in pack {
        let quant = QuantizedMini::from_model(&m);
        hybrid.attach(r.pc, AttachedModel::Engine(InferenceEngine::new(quant).unwrap())).unwrap();
    }

    let mut base_agg = PredictionStats::new();
    let mut hybrid_agg = PredictionStats::new();
    for t in &traces.test {
        let mut base = TageScL::new(&baseline_cfg);
        base_agg.merge(&evaluate(&mut base, t));
        hybrid.reset_runtime_state();
        hybrid_agg.merge(&evaluate(&mut hybrid, t));
    }
    assert!(
        hybrid_agg.mpki() < base_agg.mpki(),
        "fully-quantized engines {:.3} MPKI vs baseline {:.3} MPKI",
        hybrid_agg.mpki(),
        base_agg.mpki()
    );
}

#[test]
fn data_dependent_benchmark_yields_no_false_positives() {
    // omnetpp's hot branches carry no history signal: the pipeline
    // must not attach models that pretend otherwise (paper: "the MPKI
    // reduction on omnetpp is small since [its] branches are
    // data-dependent").
    let traces = SpecSuite::benchmark(Benchmark::Omnetpp).trace_set(25_000);
    let baseline_cfg = TageSclConfig::tage_sc_l_64kb();
    let pack =
        offline_train(&BranchNetConfig::big_scaled(), &baseline_cfg, &traces, &pipeline_options());
    // Any model that survives must at least not hurt the test MPKI.
    let mut hybrid = HybridPredictor::new(&baseline_cfg);
    for (r, m) in pack {
        hybrid.attach(r.pc, AttachedModel::Float(m)).expect("float attach");
    }
    let mut base_agg = PredictionStats::new();
    let mut hybrid_agg = PredictionStats::new();
    for t in &traces.test {
        let mut base = TageScL::new(&baseline_cfg);
        base_agg.merge(&evaluate(&mut base, t));
        hybrid.reset_runtime_state();
        hybrid_agg.merge(&evaluate(&mut hybrid, t));
    }
    assert!(
        hybrid_agg.mpki() <= base_agg.mpki() * 1.02,
        "omnetpp hybrid {:.3} must not regress baseline {:.3}",
        hybrid_agg.mpki(),
        base_agg.mpki()
    );
}
