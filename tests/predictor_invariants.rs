//! Property-based invariants over the public API, spanning crates.

use branchnet::core::hashing::conv_hash;
use branchnet::tage::{AlwaysTaken, Predictor, TageScL, TageSclConfig};
use branchnet::trace::run_one as evaluate;
use branchnet::trace::{BranchRecord, FoldedHistory, GlobalHistory, Trace};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The incrementally-folded history always equals a from-scratch
    /// replay over the recorded global history.
    #[test]
    fn folded_history_matches_replay(
        dirs in prop::collection::vec(any::<bool>(), 1..200),
        original_len in 2usize..60,
        compressed_len in 2usize..16,
    ) {
        let mut history = GlobalHistory::new(original_len + 200);
        let mut folded = FoldedHistory::new(original_len, compressed_len);
        for &bit in &dirs {
            let outgoing = if history.len() >= original_len {
                history.bit(original_len - 1)
            } else {
                false
            };
            folded.update(bit, outgoing);
            history.push(bit);
            prop_assert_eq!(
                folded.value(),
                FoldedHistory::fold_from_history(&history, original_len, compressed_len)
            );
        }
    }

    /// Prediction statistics are exact: accuracy + error rate = 1 and
    /// MPKI is consistent with raw counts for any outcome sequence.
    #[test]
    fn evaluate_accounting_is_consistent(outcomes in prop::collection::vec(any::<bool>(), 1..300)) {
        let trace: Trace = outcomes
            .iter()
            .map(|&t| BranchRecord::conditional(0x40, t))
            .collect();
        let stats = evaluate(&mut AlwaysTaken, &trace);
        let expected_wrong = outcomes.iter().filter(|&&t| !t).count() as f64;
        prop_assert!((stats.mispredictions() - expected_wrong).abs() < 1e-9);
        prop_assert!((stats.predictions() - outcomes.len() as f64).abs() < 1e-9);
        let mpki = 1000.0 * stats.mispredictions() / stats.instructions();
        prop_assert!((stats.mpki() - mpki).abs() < 1e-9);
    }

    /// The conv hash is a pure function of the K-window contents:
    /// equal windows hash equally regardless of surrounding context.
    #[test]
    fn conv_hash_depends_only_on_window(
        prefix in prop::collection::vec(0u32..8192, 0..20),
        window in prop::collection::vec(0u32..8192, 1..8),
        h_bits in 2u32..12,
    ) {
        let k = window.len();
        let mut a = prefix.clone();
        a.extend(&window);
        let mut b = vec![7u32; 3]; // different context
        b.extend(&window);
        prop_assert_eq!(
            conv_hash(&a, a.len() - 1, k, h_bits),
            conv_hash(&b, b.len() - 1, k, h_bits)
        );
    }

    /// TAGE-SC-L never crashes and trains consistently on arbitrary
    /// direction sequences across a handful of PCs.
    #[test]
    fn tage_scl_is_total(outcomes in prop::collection::vec((0u8..4, any::<bool>()), 1..400)) {
        let mut p = TageScL::new(&TageSclConfig::tage_sc_l_64kb());
        for (slot, taken) in outcomes {
            let pc = 0x1000 + u64::from(slot) * 64;
            let pred = p.predict(pc);
            p.update(&BranchRecord::conditional(pc, taken), pred);
        }
    }
}

#[test]
fn deterministic_end_to_end_evaluation() {
    // The same workload, seed, and predictor configuration must give
    // byte-identical statistics run to run.
    use branchnet::workloads::spec::{Benchmark, SpecSuite};
    let bench = SpecSuite::benchmark(Benchmark::Deepsjeng);
    let input = &bench.inputs().valid[0];
    let run = || {
        let trace = bench.generate(input, 10_000);
        let mut p = TageScL::new(&TageSclConfig::tage_sc_l_64kb());
        let s = evaluate(&mut p, &trace);
        (s.predictions(), s.mispredictions(), s.instructions())
    };
    assert_eq!(run(), run());
}
