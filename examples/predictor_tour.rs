//! A tour of the runtime predictors: run every classic predictor over
//! the same workload in ONE pass — a multi-lane [`Gauntlet`] for the
//! accuracy numbers, a multi-lane `simulate_many` for the IPC the
//! pipeline model assigns them.
//!
//! ```text
//! cargo run --release --example predictor_tour
//! ```
//!
//! [`Gauntlet`]: branchnet::trace::Gauntlet

use branchnet::sim::{simulate_many, CpuConfig, DirectionSource};
use branchnet::tage::{
    Bimodal, Gshare, HashedPerceptron, Perceptron, Predictor, TageScL, TageSclConfig, TwoLevel,
};
use branchnet::trace::Gauntlet;
use branchnet::workloads::spec::{Benchmark, SpecSuite};

fn contenders() -> Vec<(&'static str, Box<dyn Predictor>)> {
    vec![
        ("bimodal (8KB)", Box::new(Bimodal::new(15, 2))),
        ("gshare (4KB)", Box::new(Gshare::new(14, 12))),
        ("2-level GAg (16b hist)", Box::new(TwoLevel::new(16, true))),
        ("perceptron", Box::new(Perceptron::new(10, 32))),
        ("hashed perceptron", Box::new(HashedPerceptron::default_config())),
        ("TAGE-SC-L 64KB", Box::new(TageScL::new(&TageSclConfig::tage_sc_l_64kb()))),
        ("MTAGE-SC (unlimited)", Box::new(TageScL::new(&TageSclConfig::mtage_sc_unlimited()))),
    ]
}

fn main() {
    let bench = SpecSuite::benchmark(Benchmark::Leela);
    let input = &bench.inputs().test[0];
    let trace = bench.generate(input, 60_000);
    println!("workload: {} / {} ({} branches)\n", bench.name(), input.label, trace.len());
    println!("{:<22} {:>9} {:>8} {:>10} {:>6}", "predictor", "accuracy", "MPKI", "storage", "IPC");

    // Accuracy/MPKI/storage: every predictor rides one decode of the
    // trace as a gauntlet lane.
    let mut gauntlet = Gauntlet::new();
    let names: Vec<&str> = contenders()
        .into_iter()
        .map(|(name, predictor)| {
            gauntlet.add_boxed(predictor);
            name
        })
        .collect();
    let storage_kb: Vec<f64> =
        contenders().iter().map(|(_, p)| p.storage_bits() as f64 / 8.0 / 1024.0).collect();
    gauntlet.run(&trace);
    let lanes = gauntlet.finish();

    // IPC: fresh predictors (cold start), all behind one shared early
    // predictor in a single timing pass.
    let cpu = CpuConfig::skylake_like();
    let mut fresh = contenders();
    let mut late: Vec<&mut dyn DirectionSource> =
        fresh.iter_mut().map(|(_, p)| p as &mut dyn DirectionSource).collect();
    let sims = simulate_many(&trace, &mut late, &cpu);

    for (((name, lane), kb), sim) in names.iter().zip(&lanes).zip(&storage_kb).zip(&sims) {
        println!(
            "{name:<22} {:>9.4} {:>8.2} {kb:>8.1}KB {:>6.2}",
            lane.stats.accuracy(),
            lane.stats.mpki(),
            sim.ipc()
        );
    }
}
