//! A tour of the runtime predictors: run every classic predictor over
//! the same workloads and compare accuracy, MPKI, storage, and the IPC
//! the pipeline model assigns them.
//!
//! ```text
//! cargo run --release --example predictor_tour
//! ```

use branchnet::sim::{simulate, CpuConfig};
use branchnet::tage::{
    evaluate, Bimodal, Gshare, HashedPerceptron, Perceptron, Predictor, TageScL, TageSclConfig,
    TwoLevel,
};
use branchnet::workloads::spec::{Benchmark, SpecSuite};

fn main() {
    let bench = SpecSuite::benchmark(Benchmark::Leela);
    let input = &bench.inputs().test[0];
    let trace = bench.generate(input, 60_000);
    println!("workload: {} / {} ({} branches)\n", bench.name(), input.label, trace.len());
    println!("{:<22} {:>9} {:>8} {:>10} {:>6}", "predictor", "accuracy", "MPKI", "storage", "IPC");

    let cpu = CpuConfig::skylake_like();
    let report = |name: &str, p: &mut dyn Predictor| {
        let stats = evaluate(p, &trace);
        let kb = p.storage_bits() as f64 / 8.0 / 1024.0;
        (name.to_string(), stats.accuracy(), stats.mpki(), kb)
    };

    let rows = vec![
        report("bimodal (8KB)", &mut Bimodal::new(15, 2)),
        report("gshare (4KB)", &mut Gshare::new(14, 12)),
        report("2-level GAg (16b hist)", &mut TwoLevel::new(16, true)),
        report("perceptron", &mut Perceptron::new(10, 32)),
        report("hashed perceptron", &mut HashedPerceptron::default_config()),
        report("TAGE-SC-L 64KB", &mut TageScL::new(&TageSclConfig::tage_sc_l_64kb())),
        report("MTAGE-SC (unlimited)", &mut TageScL::new(&TageSclConfig::mtage_sc_unlimited())),
    ];

    // IPC needs a fresh predictor per run (cold start).
    let ipcs = vec![
        simulate(&trace, &mut Bimodal::new(15, 2), &cpu).ipc(),
        simulate(&trace, &mut Gshare::new(14, 12), &cpu).ipc(),
        simulate(&trace, &mut TwoLevel::new(16, true), &cpu).ipc(),
        simulate(&trace, &mut Perceptron::new(10, 32), &cpu).ipc(),
        simulate(&trace, &mut HashedPerceptron::default_config(), &cpu).ipc(),
        simulate(&trace, &mut TageScL::new(&TageSclConfig::tage_sc_l_64kb()), &cpu).ipc(),
        simulate(&trace, &mut TageScL::new(&TageSclConfig::mtage_sc_unlimited()), &cpu).ipc(),
    ];

    for ((name, acc, mpki, kb), ipc) in rows.into_iter().zip(ipcs) {
        println!("{name:<22} {acc:>9.4} {mpki:>8.2} {kb:>8.1}KB {ipc:>6.2}");
    }
}
