//! The full offline training pipeline of paper Section V-E, end to
//! end, on the synthetic leela workload:
//!
//! 1. profile training/validation/test inputs (Table III partition),
//! 2. rank the most-mispredicting static branches on the validation
//!    traces under the runtime baseline,
//! 3. train one CNN per hard branch on the training traces,
//! 4. keep the models that actually improve validation accuracy,
//! 5. attach them and measure test-set MPKI against the baseline.
//!
//! ```text
//! cargo run --release --example offline_pipeline
//! ```

use branchnet::core::config::BranchNetConfig;
use branchnet::core::hybrid::{AttachedModel, HybridPredictor};
use branchnet::core::selection::{offline_train, PipelineOptions};
use branchnet::core::trainer::TrainOptions;
use branchnet::tage::{TageScL, TageSclConfig};
use branchnet::trace::Gauntlet;
use branchnet::workloads::spec::{Benchmark, SpecSuite};

fn main() {
    let bench = SpecSuite::benchmark(Benchmark::Leela);
    println!("profiling {} (3 train / 2 valid / 3 test inputs)...", bench.name());
    let traces = bench.trace_set(40_000);

    let baseline_cfg = TageSclConfig::tage_sc_l_64kb();
    let opts = PipelineOptions {
        candidates: 8,
        train: TrainOptions { epochs: 10, lr: 0.02, max_examples: 2_000, ..Default::default() },
        ..Default::default()
    };

    println!("running the offline pipeline (rank -> train -> select)...");
    let pack = offline_train(&BranchNetConfig::big_scaled(), &baseline_cfg, &traces, &opts);
    println!("kept {} improved branch models:", pack.len());
    for (r, _) in &pack {
        println!(
            "  pc {:#06x}: validation accuracy {:.3} -> {:.3} ({:.0} mispredictions avoided)",
            r.pc, r.baseline_accuracy, r.model_accuracy, r.mispredictions_avoided
        );
    }

    // Attach and evaluate on the unseen ref inputs.
    let mut hybrid = HybridPredictor::new(&baseline_cfg);
    for (r, m) in pack {
        hybrid.attach(r.pc, AttachedModel::Float(m)).expect("float attach");
    }

    // Baseline and hybrid share one decode pass per test trace; the
    // flush between traces gives each lane a cold (per-SimPoint) start
    // while the hybrid keeps its frozen offline-trained models.
    let mut gauntlet = Gauntlet::new();
    let base_lane = gauntlet.add(TageScL::new(&baseline_cfg));
    let hybrid_lane = gauntlet.add(hybrid);
    for t in &traces.test {
        gauntlet.run(t);
        gauntlet.flush();
    }
    let lanes = gauntlet.finish();
    let (base_agg, hybrid_agg) = (&lanes[base_lane].stats, &lanes[hybrid_lane].stats);
    println!("\ntest-set results (unseen inputs):");
    println!("  {:<24} MPKI {:.3}", lanes[hybrid_lane].name, hybrid_agg.mpki());
    println!("  {:<24} MPKI {:.3}", lanes[base_lane].name, base_agg.mpki());
    println!(
        "  MPKI reduction: {:.1}%",
        100.0 * (base_agg.mpki() - hybrid_agg.mpki()) / base_agg.mpki()
    );
}
