//! Quantization and the on-chip inference engine (paper Section V-B):
//! train a Mini-BranchNet, lower it through the quantization ladder,
//! stream branches through the engine, and inspect its Table II
//! storage breakdown and flush-recovery behaviour.
//!
//! ```text
//! cargo run --release --example inference_engine
//! ```

use branchnet::core::config::BranchNetConfig;
use branchnet::core::dataset::extract;
use branchnet::core::engine::InferenceEngine;
use branchnet::core::quantize::{QuantMode, QuantizedMini};
use branchnet::core::trainer::{evaluate_accuracy, train_model, TrainOptions};
use branchnet::workloads::spec::{Benchmark, SpecSuite};

fn main() {
    // Train a 1 KB Mini model for xz's copy-loop exit branch.
    let bench = SpecSuite::benchmark(Benchmark::Xz);
    let traces = bench.trace_set(30_000);
    let cfg = BranchNetConfig::mini_1kb();
    let pc = 0x4200;
    let ds = extract(&traces.train, pc, cfg.window_len(), cfg.pc_bits);
    let (mut model, _) = train_model(
        &cfg,
        &ds,
        &TrainOptions { epochs: 12, lr: 0.02, max_examples: 2_000, ..Default::default() },
    );

    // Quantization ladder (Table IV's rungs for one model).
    let test_ds = extract(&traces.test, pc, cfg.window_len(), cfg.pc_bits);
    let quant = QuantizedMini::from_model(&model);
    let acc = |mode: QuantMode| {
        test_ds
            .examples
            .iter()
            .filter(|e| quant.predict(&e.window, mode) == (e.label >= 0.5))
            .count() as f64
            / test_ds.len() as f64
    };
    println!("quantization ladder on the unseen test inputs:");
    println!("  float model:          {:.3}", evaluate_accuracy(&mut model, &test_ds));
    println!("  binarized convolution:{:.3}", acc(QuantMode::ConvOnly));
    println!("  fully quantized:      {:.3}", acc(QuantMode::Full));

    // Storage accounting (Table II).
    let engine = InferenceEngine::new(quant).expect("hashed config");
    let s = engine.storage();
    println!("\nTable II storage breakdown ({}):", cfg.name);
    println!("  convolution tables:   {:>7} bits", s.conv_tables_bits);
    println!("  precise pooling:      {:>7} bits", s.precise_pooling_bits);
    println!("  sliding pooling:      {:>7} bits", s.sliding_pooling_bits);
    println!("  fully connected:      {:>7} bits", s.fully_connected_bits);
    println!("  total:                {:>7.3} KB", s.total_kb());

    // Streaming + misprediction recovery (Section V-C).
    let mut engine = engine;
    let trace = &traces.test[0];
    let encoded: Vec<u32> =
        trace.iter().filter(|r| r.kind.is_conditional()).map(|r| r.encode(cfg.pc_bits)).collect();
    for &e in &encoded[..1000] {
        engine.update(e);
    }
    let checkpoint = engine.checkpoint();
    let before = engine.predict();
    // Speculate down the wrong path...
    for &e in &encoded[1000..1050] {
        engine.update(e);
    }
    // ...flush and recover.
    engine.restore(&checkpoint);
    assert_eq!(engine.predict(), before, "recovery must be exact");
    println!("\nflush recovery: engine state restored exactly after 50 wrong-path branches");
}
