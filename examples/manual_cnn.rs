//! The paper's Section IV thought experiment, made executable: a
//! *hand-constructed* CNN — no training at all — that predicts the
//! motivating example's branch B with 100% accuracy.
//!
//! Construction (paper Fig. 3): a 1-wide convolution with two filters,
//! channel 0 firing on "branch B, taken" history entries and channel 1
//! on "branch A, not taken"; a sum-pooling layer as wide as the
//! history, so the channels become the occurrence counts `j` and `x`;
//! and one comparison neuron predicting *taken* (stay in the loop)
//! while `j < x`. Previous loop instances cancel exactly: every
//! completed round contributes its `x_r` to both counts.
//!
//! ```text
//! cargo run --release --example manual_cnn
//! ```

use branchnet::tage::{TageScL, TageSclConfig};
use branchnet::trace::run_one_per_branch as evaluate_per_branch;
use branchnet::trace::BranchRecord;
use branchnet::workloads::motivating::{MotivatingConfig, MotivatingWorkload, PC_A, PC_B};

/// The hand-built CNN: two 1-wide filters + full-history sum-pooling +
/// one comparison neuron.
struct ManualCnn {
    /// Sum-pooled channel 0: count of (B, taken) in the history.
    count_b_taken: u64,
    /// Sum-pooled channel 1: count of (A, not-taken) in the history.
    count_a_not_taken: u64,
}

impl ManualCnn {
    fn new() -> Self {
        Self { count_b_taken: 0, count_a_not_taken: 0 }
    }

    /// The final fully-connected neuron: taken (continue looping)
    /// while fewer B-takens than A-not-takens have occurred.
    fn predict(&self) -> bool {
        self.count_b_taken < self.count_a_not_taken
    }

    /// The convolution + pooling update: each retiring branch either
    /// matches one of the two filters (incrementing its pooled count)
    /// or is ignored — this is exactly how the CNN "learns to ignore
    /// uncorrelated noise".
    fn update(&mut self, r: &BranchRecord) {
        if r.pc == PC_B && r.taken {
            self.count_b_taken += 1;
        } else if r.pc == PC_A && !r.taken {
            self.count_a_not_taken += 1;
        }
    }
}

fn main() {
    println!("alpha   N-range   branch-B rate   manual-CNN acc   TAGE-SC-L acc");
    for (alpha, n_min, n_max) in
        [(0.2, 5, 10), (0.5, 5, 10), (0.8, 5, 10), (0.5, 1, 4), (1.0, 5, 10)]
    {
        let w = MotivatingWorkload::new(MotivatingConfig::new(alpha, n_min, n_max, 20));
        let trace = w.generate(42, 60_000);

        // Manual CNN over the full history.
        let mut cnn = ManualCnn::new();
        let mut correct = 0u64;
        let mut total = 0u64;
        let mut taken = 0u64;
        for r in &trace {
            if r.pc == PC_B {
                total += 1;
                taken += u64::from(r.taken);
                if cnn.predict() == r.taken {
                    correct += 1;
                }
            }
            cnn.update(r);
        }
        let cnn_acc = correct as f64 / total as f64;

        // Runtime TAGE-SC-L on the same branch.
        let mut tage = TageScL::new(&TageSclConfig::tage_sc_l_64kb());
        let stats = evaluate_per_branch(&mut tage, &trace);
        let tage_acc = stats.get(PC_B).map_or(0.0, |s| s.accuracy());

        println!(
            "{alpha:>4.1}   {n_min:>2}..{n_max:<3}      {:>5.3}          {cnn_acc:>6.4}          {tage_acc:>6.4}",
            taken as f64 / total as f64
        );
        assert!((cnn_acc - 1.0).abs() < 1e-12, "the hand-built CNN must be exact (got {cnn_acc})");
    }
    println!("\nThe two-filter CNN is perfect at every alpha and N range — with 20 noisy");
    println!("branches per iteration — because it counts only the correlated branches.");
}
