//! Quickstart: train a BranchNet CNN for the paper's Fig. 3
//! hard-to-predict branch and watch it beat a 64 KB TAGE-SC-L.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use branchnet::core::config::BranchNetConfig;
use branchnet::core::dataset::extract;
use branchnet::core::hybrid::{AttachedModel, HybridPredictor};
use branchnet::core::trainer::{train_model, TrainOptions};
use branchnet::tage::{TageScL, TageSclConfig};
use branchnet::trace::{run_one as evaluate, run_one_per_branch as evaluate_per_branch};
use branchnet::workloads::motivating::{MotivatingConfig, MotivatingWorkload, PC_B};

fn main() {
    // 1. Profile the program with two *training* inputs (α = 0.5 and
    //    0.9) — the "coverage" the paper's offline methodology needs.
    let branches = 40_000;
    let mut train_traces = Vec::new();
    for alpha in [0.5, 0.9] {
        let w = MotivatingWorkload::new(MotivatingConfig::new(alpha, 2, 8, 4));
        for seed in [1u64, 2] {
            train_traces.push(w.generate(seed, branches));
        }
    }

    // 2. Train a per-branch CNN for branch B (the second loop's exit,
    //    whose direction is a function of occurrence *counts* deep in
    //    a noisy history — exactly what TAGE cannot express).
    let cfg = BranchNetConfig::mini_2kb();
    let dataset = extract(&train_traces, PC_B, cfg.window_len(), cfg.pc_bits);
    println!(
        "training {} on {} examples of branch B (taken rate {:.2})...",
        cfg.name,
        dataset.len(),
        dataset.taken_rate()
    );
    let (model, report) =
        train_model(&cfg, &dataset, &TrainOptions { epochs: 15, lr: 0.02, ..Default::default() });
    println!("  trained: accuracy {:.3} after {} epochs", report.train_accuracy, report.epochs_run);

    // 3. Evaluate on an *unseen* input (α = 0.6, N ~ 5..10: a data
    //    distribution never profiled).
    let test_trace =
        MotivatingWorkload::new(MotivatingConfig::new(0.6, 5, 10, 4)).generate(99, branches);

    let baseline_cfg = TageSclConfig::tage_sc_l_64kb();
    let mut tage = TageScL::new(&baseline_cfg);
    let tage_stats = evaluate(&mut tage, &test_trace);
    let mut tage2 = TageScL::new(&baseline_cfg);
    let tage_branch = evaluate_per_branch(&mut tage2, &test_trace);

    let mut hybrid = HybridPredictor::new(&baseline_cfg);
    hybrid.attach(PC_B, AttachedModel::Float(model)).expect("float attach");
    let hybrid_stats = evaluate(&mut hybrid, &test_trace);
    let mut hybrid2 = HybridPredictor::new(&baseline_cfg);
    hybrid2
        .attach(PC_B, {
            let ds2 = extract(&train_traces, PC_B, cfg.window_len(), cfg.pc_bits);
            let (m2, _) = train_model(
                &cfg,
                &ds2,
                &TrainOptions { epochs: 15, lr: 0.02, ..Default::default() },
            );
            AttachedModel::Float(m2)
        })
        .expect("float attach");
    let hybrid_branch = evaluate_per_branch(&mut hybrid2, &test_trace);

    println!("\non the unseen test input (alpha = 0.6, N~5..10, never profiled):");
    println!(
        "  branch B accuracy:  TAGE-SC-L {:.3}  ->  BranchNet {:.3}",
        tage_branch.get(PC_B).map_or(0.0, |s| s.accuracy()),
        hybrid_branch.get(PC_B).map_or(0.0, |s| s.accuracy())
    );
    println!(
        "  whole program:      MPKI {:.3}  ->  {:.3}  ({:.1}% reduction from one branch)",
        tage_stats.mpki(),
        hybrid_stats.mpki(),
        100.0 * (tage_stats.mpki() - hybrid_stats.mpki()) / tage_stats.mpki()
    );
}
