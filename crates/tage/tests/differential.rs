//! Differential tests: each new baseline pinned against a transparent
//! reference model on a crafted micro-trace that isolates exactly the
//! mechanism the baseline adds.
//!
//! * [`LoopOnly`] must reach 100% on a fixed-trip-count loop once the
//!   loop table is warm — the mechanism is trip-count capture, and on
//!   this trace nothing else is needed.
//! * [`LocalPerceptron`] must learn a periodic *local* pattern whose
//!   global-history image is destroyed by interleaved noise branches,
//!   which caps [`Gshare`] near the pattern's base rate.
//! * [`OGehl`] must learn a correlation 120 branches back — inside
//!   its longest geometric history, far beyond the 32 bits the
//!   classic [`Perceptron`] sees.

use branchnet_tage::{Gshare, LocalPerceptron, LoopOnly, OGehl, Perceptron, Predictor};
use branchnet_trace::{run_one_per_branch, BranchRecord, Trace};

/// Accuracy of `predictor` on the single static branch `pc` in
/// `trace`.
fn accuracy_on(predictor: &mut dyn Predictor, trace: &Trace, pc: u64) -> f64 {
    run_one_per_branch(predictor, trace)
        .get(pc)
        .unwrap_or_else(|| panic!("branch {pc:#x} missing from trace"))
        .accuracy()
}

/// A deterministic pseudo-random bit stream (LCG high bits).
fn lcg_bits(seed: u64) -> impl FnMut() -> bool {
    let mut state = seed;
    move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 60 > 7
    }
}

/// LoopOnly vs the ground truth: a fixed-trip-count loop is perfectly
/// predictable, and once the loop table is confident LoopOnly must
/// not miss a single branch — body or exit — ever again.
#[test]
fn loop_only_is_perfect_on_fixed_trip_loops_after_warmup() {
    const TRIP: usize = 20;
    const WARMUP_ROUNDS: usize = 8;
    let mut p = LoopOnly::default_config();
    let mut post_warmup_misses = 0u64;
    let mut post_warmup_total = 0u64;
    for round in 0..60 {
        for i in 0..TRIP {
            let record = BranchRecord::conditional(0x1040, i + 1 < TRIP);
            let predicted = p.predict(record.pc);
            if round >= WARMUP_ROUNDS {
                post_warmup_total += 1;
                post_warmup_misses += u64::from(predicted != record.taken);
            }
            p.update(&record, predicted);
        }
    }
    assert_eq!(post_warmup_total, ((60 - WARMUP_ROUNDS) * TRIP) as u64);
    assert_eq!(post_warmup_misses, 0, "a warm loop predictor must be exact on a fixed trip count");
}

/// The same trace through Gshare never reaches 100% after warm-up:
/// its 2-bit counters structurally mispredict each loop exit (the
/// differential half of the loop test).
#[test]
fn gshare_keeps_missing_the_loop_exits_loop_only_captures() {
    const TRIP: usize = 20;
    let trace: Trace = (0..60)
        .flat_map(|_| (0..TRIP).map(|i| BranchRecord::conditional(0x1040, i + 1 < TRIP)))
        .collect();
    // Gshare at the lineup configuration: 12 history bits cannot span
    // a 20-iteration trip, so exits stay surprises.
    let gshare = accuracy_on(&mut Gshare::new(14, 12), &trace, 0x1040);
    let loop_only = accuracy_on(&mut LoopOnly::default_config(), &trace, 0x1040);
    assert!(gshare < 0.99, "gshare unexpectedly solved the loop: {gshare}");
    assert!(loop_only > 0.99, "loop-only must capture the trip count: {loop_only}");
}

/// Builds the local-vs-global workload: branch A at `0x400` follows a
/// period-3 taken/taken/not pattern, with 7 pseudo-random noise
/// branches between consecutive A occurrences wiping the global
/// history window.
fn local_pattern_trace(iterations: usize) -> Trace {
    let mut noise = lcg_bits(0xDECAF);
    let mut trace = Trace::new();
    for i in 0..iterations {
        trace.push(BranchRecord::conditional(0x400, i % 3 != 2));
        for j in 0..7u64 {
            trace.push(BranchRecord::conditional(0x800 + j * 16, noise()));
        }
    }
    trace
}

/// LocalPerceptron vs Gshare on a pattern only local history can see:
/// the per-branch register replays the period-3 pattern exactly, while
/// gshare's global index is dominated by the 7 random bits in between.
#[test]
fn local_perceptron_learns_the_local_pattern_gshare_cannot() {
    let trace = local_pattern_trace(2000);
    let local = accuracy_on(&mut LocalPerceptron::new(10, 16), &trace, 0x400);
    let gshare = accuracy_on(&mut Gshare::new(14, 12), &trace, 0x400);
    assert!(local > 0.95, "local perceptron must learn the period-3 pattern: {local}");
    assert!(
        gshare < 0.8,
        "gshare should stay near the 2/3 base rate under history noise: {gshare}"
    );
    assert!(
        local - gshare > 0.15,
        "the differential must be decisive: local {local} vs gshare {gshare}"
    );
}

/// Builds the long-history workload: branch A at `0x100` flips a
/// pseudo-random coin, 120 fixed-pattern filler branches roll the
/// global history past any short window, then branch B at `0x900`
/// repeats A's outcome — the determining bit sits ~120 positions back.
fn long_history_trace(iterations: usize) -> Trace {
    let mut coin = lcg_bits(0xC0FFEE);
    let mut trace = Trace::new();
    for _ in 0..iterations {
        let k = coin();
        trace.push(BranchRecord::conditional(0x100, k));
        for j in 0..120u64 {
            trace.push(BranchRecord::conditional(0x200 + j * 8, j % 3 == 0));
        }
        trace.push(BranchRecord::conditional(0x900, k));
    }
    trace
}

/// OGehl vs the classic Perceptron on a correlation 120 branches back:
/// O-GEHL's 200-bit geometric table reaches it, the perceptron's
/// 32-bit window cannot.
#[test]
fn ogehl_beats_perceptron_on_long_geometric_history() {
    let trace = long_history_trace(3000);
    let ogehl = accuracy_on(&mut OGehl::default_config(), &trace, 0x900);
    // The lineup perceptron: 32 history bits, far short of 120.
    let perceptron = accuracy_on(&mut Perceptron::new(10, 32), &trace, 0x900);
    assert!(ogehl > 0.8, "o-gehl must reach the bit 120 branches back: {ogehl}");
    assert!(
        perceptron < 0.7,
        "a 32-bit-history perceptron cannot see the correlated bit: {perceptron}"
    );
    assert!(
        ogehl - perceptron > 0.15,
        "the differential must be decisive: o-gehl {ogehl} vs perceptron {perceptron}"
    );
}
