//! Property-based tests for the runtime predictors and the gauntlet
//! evaluator that drives them.
//!
//! Per-predictor contracts (gauntlet==solo, flush==fresh, determinism,
//! storage ceilings) live in the shared conformance suite
//! (`branchnet_trace::conformance`, instantiated in
//! `tests/conformance.rs`); this file keeps the properties that span
//! the whole lineup at once or are specific to TAGE-SC-L.

use branchnet_tage::{baseline_lineup, Predictor, TageScL, TageSclConfig};
use branchnet_trace::conformance::mixed_trace;
use branchnet_trace::{run_one, BranchKind, BranchRecord, Gauntlet, Trace};
use proptest::prelude::*;

/// Every registered baseline, freshly constructed at its experiment
/// configuration.
fn lineup() -> Vec<Box<dyn Predictor>> {
    baseline_lineup().into_iter().map(|e| (e.build)()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every predictor is total: arbitrary PC/direction streams never
    /// panic, and the accounting matches the stream length.
    #[test]
    fn predictors_are_total(
        stream in prop::collection::vec((0u64..1 << 20, any::<bool>()), 1..300)
    ) {
        let trace: Trace =
            stream.iter().map(|&(pc, t)| BranchRecord::conditional(pc << 2, t)).collect();
        for p in &mut lineup() {
            let stats = run_one(p.as_mut(), &trace);
            prop_assert!((stats.predictions() - trace.len() as f64).abs() < 1e-9);
            prop_assert!(stats.accuracy() >= 0.0 && stats.accuracy() <= 1.0);
        }
    }

    /// A perfectly biased branch is learned by every registered
    /// baseline to near-perfection once warm.
    #[test]
    fn all_predictors_learn_constant_direction(taken in any::<bool>(), pc in 1u64..1000) {
        let trace: Trace =
            (0..300).map(|_| BranchRecord::conditional(pc << 3, taken)).collect();
        for p in &mut lineup() {
            let stats = run_one(p.as_mut(), &trace);
            prop_assert!(
                stats.mispredictions() <= 8.0,
                "{} mispredicted a constant branch {} times",
                p.name(),
                stats.mispredictions()
            );
        }
    }

    /// The gauntlet's own `flush` (between traces of a serial set)
    /// keeps accumulating statistics while cold-starting the
    /// predictors — equal to summing independent cold runs.
    #[test]
    fn gauntlet_flush_accumulates_cold_runs(
        first in prop::collection::vec((0u8..6, any::<bool>()), 1..150),
        second in prop::collection::vec((0u8..6, any::<bool>()), 1..150),
    ) {
        let traces = [mixed_trace(&first), mixed_trace(&second)];

        let mut gauntlet = Gauntlet::new();
        for p in lineup() {
            gauntlet.add_boxed(p);
        }
        for t in &traces {
            gauntlet.run(t);
            gauntlet.flush();
        }
        let lanes = gauntlet.finish();

        for (i, mut p) in lineup().into_iter().enumerate() {
            let mut expected = branchnet_trace::PredictionStats::new();
            for t in &traces {
                expected.merge(&run_one(p.as_mut(), t));
                p.flush();
            }
            prop_assert_eq!(&lanes[i].stats, &expected, "lane {} diverged", lanes[i].name);
        }
    }

    /// TAGE-SC-L state stays consistent under interleaved conditional
    /// and unconditional control flow.
    #[test]
    fn tage_scl_handles_mixed_control_flow(
        ops in prop::collection::vec((0u8..6, any::<bool>()), 1..300)
    ) {
        let mut p = TageScL::new(&TageSclConfig::tage_sc_l_64kb());
        for (slot, taken) in ops {
            let pc = 0x4000 + u64::from(slot) * 32;
            if slot % 3 == 0 {
                p.note_unconditional(&BranchRecord::unconditional(
                    pc,
                    pc + 64,
                    BranchKind::Jump,
                ));
            } else {
                let pred = p.predict(pc);
                p.update(&BranchRecord::conditional(pc, taken), pred);
            }
        }
        // Storage accounting never changes at runtime.
        prop_assert_eq!(
            p.storage_bits(),
            TageScL::new(&TageSclConfig::tage_sc_l_64kb()).storage_bits()
        );
    }
}

#[test]
fn storage_ordering_across_configs() {
    let bits = |cfg: &TageSclConfig| TageScL::new(cfg).storage_bits();
    let b56 = bits(&TageSclConfig::tage_sc_l_56kb());
    let b64 = bits(&TageSclConfig::tage_sc_l_64kb());
    let unlimited = bits(&TageSclConfig::mtage_sc_unlimited());
    assert!(b56 < b64 && b64 < unlimited);
    assert!(b64 <= 64 * 1024 * 8);
    assert!(b56 <= 56 * 1024 * 8 + 8 * 1024, "56KB config near budget: {b56} bits");
}

/// `storage_bits` sanity against the paper's budgets (Table II /
/// Section VI): every registered baseline must report a plausible,
/// non-zero hardware cost inside its nominal budget class, and the
/// paper's 64 KB TAGE-SC-L flagship must sit inside — but near — its
/// budget.
#[test]
fn storage_bits_match_nominal_budgets() {
    let kb = |bits: u64| bits as f64 / 8.0 / 1024.0;

    for e in baseline_lineup() {
        let p = (e.build)();
        let got = p.storage_bits();
        assert!(got > 0, "{} reports zero storage", e.name);
        assert!(
            got <= e.nominal_budget_bits,
            "{}: {:.2}KB exceeds its {:.2}KB class",
            e.name,
            kb(got),
            kb(e.nominal_budget_bits)
        );
    }

    let full = TageScL::new(&TageSclConfig::tage_sc_l_64kb()).storage_bits();
    assert!(kb(full) <= 64.0, "64KB baseline: {:.2}KB", kb(full));
    assert!(kb(full) >= 48.0, "64KB baseline suspiciously small: {:.2}KB", kb(full));
    let small = TageScL::new(&TageSclConfig::tage_sc_l_56kb()).storage_bits();
    assert!(small < full);
}
