//! Property-based tests for the runtime predictors.

use branchnet_tage::{
    evaluate, Bimodal, Gshare, HashedPerceptron, Perceptron, Predictor, TageScL, TageSclConfig,
};
use branchnet_trace::{BranchRecord, Trace};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every predictor is total: arbitrary PC/direction streams never
    /// panic, and the accounting matches the stream length.
    #[test]
    fn predictors_are_total(
        stream in prop::collection::vec((0u64..1 << 20, any::<bool>()), 1..300)
    ) {
        let trace: Trace =
            stream.iter().map(|&(pc, t)| BranchRecord::conditional(pc << 2, t)).collect();
        let mut predictors: Vec<Box<dyn Predictor>> = vec![
            Box::new(Bimodal::new(10, 2)),
            Box::new(Gshare::new(10, 8)),
            Box::new(Perceptron::new(6, 12)),
            Box::new(HashedPerceptron::new(8, &[0, 4, 8])),
        ];
        for p in &mut predictors {
            let stats = evaluate(p.as_mut(), &trace);
            prop_assert!((stats.predictions() - trace.len() as f64).abs() < 1e-9);
            prop_assert!(stats.accuracy() >= 0.0 && stats.accuracy() <= 1.0);
        }
    }

    /// A perfectly biased branch is learned by every predictor to
    /// near-perfection once warm.
    #[test]
    fn all_predictors_learn_constant_direction(taken in any::<bool>(), pc in 1u64..1000) {
        let trace: Trace =
            (0..300).map(|_| BranchRecord::conditional(pc << 3, taken)).collect();
        let mut predictors: Vec<Box<dyn Predictor>> = vec![
            Box::new(Bimodal::new(10, 2)),
            Box::new(Gshare::new(10, 8)),
            Box::new(Perceptron::new(6, 12)),
        ];
        for p in &mut predictors {
            let stats = evaluate(p.as_mut(), &trace);
            prop_assert!(
                stats.mispredictions() <= 5.0,
                "{} mispredicted a constant branch {} times",
                p.name(),
                stats.mispredictions()
            );
        }
    }

    /// TAGE-SC-L state stays consistent under interleaved conditional
    /// and unconditional control flow.
    #[test]
    fn tage_scl_handles_mixed_control_flow(
        ops in prop::collection::vec((0u8..6, any::<bool>()), 1..300)
    ) {
        let mut p = TageScL::new(&TageSclConfig::tage_sc_l_64kb());
        for (slot, taken) in ops {
            let pc = 0x4000 + u64::from(slot) * 32;
            if slot % 3 == 0 {
                p.note_unconditional(&BranchRecord::unconditional(
                    pc,
                    pc + 64,
                    branchnet_trace::BranchKind::Jump,
                ));
            } else {
                let pred = p.predict(pc);
                p.update(&BranchRecord::conditional(pc, taken), pred);
            }
        }
        // Storage accounting never changes at runtime.
        prop_assert_eq!(
            p.storage_bits(),
            TageScL::new(&TageSclConfig::tage_sc_l_64kb()).storage_bits()
        );
    }
}

#[test]
fn storage_ordering_across_configs() {
    let bits = |cfg: &TageSclConfig| TageScL::new(cfg).storage_bits();
    let b56 = bits(&TageSclConfig::tage_sc_l_56kb());
    let b64 = bits(&TageSclConfig::tage_sc_l_64kb());
    let unlimited = bits(&TageSclConfig::mtage_sc_unlimited());
    assert!(b56 < b64 && b64 < unlimited);
    assert!(b64 <= 64 * 1024 * 8);
    assert!(b56 <= 56 * 1024 * 8 + 8 * 1024, "56KB config near budget: {b56} bits");
}
