//! Property-based tests for the runtime predictors and the gauntlet
//! evaluator that drives them.

use branchnet_tage::{
    Bimodal, Gshare, HashedPerceptron, Perceptron, Predictor, TageScL, TageSclConfig, TwoLevel,
};
use branchnet_trace::{run_one, BranchKind, BranchRecord, Gauntlet, Trace};
use proptest::prelude::*;

/// Every baseline family, freshly constructed — the lineup both the
/// totality and the gauntlet-equivalence properties run against.
fn baseline_lineup() -> Vec<Box<dyn Predictor>> {
    vec![
        Box::new(Bimodal::new(10, 2)),
        Box::new(Gshare::new(10, 8)),
        Box::new(TwoLevel::new(10, true)),
        Box::new(Perceptron::new(6, 12)),
        Box::new(HashedPerceptron::new(8, &[0, 4, 8])),
        Box::new(TageScL::new(&TageSclConfig::tage_sc_l_64kb())),
    ]
}

/// A mixed conditional/unconditional trace from an arbitrary op
/// stream.
fn mixed_trace(ops: &[(u8, bool)]) -> Trace {
    ops.iter()
        .map(|&(slot, taken)| {
            let pc = 0x4000 + u64::from(slot) * 32;
            if slot % 3 == 0 {
                BranchRecord::unconditional(pc, pc + 64, BranchKind::Jump)
            } else {
                BranchRecord::conditional(pc, taken)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every predictor is total: arbitrary PC/direction streams never
    /// panic, and the accounting matches the stream length.
    #[test]
    fn predictors_are_total(
        stream in prop::collection::vec((0u64..1 << 20, any::<bool>()), 1..300)
    ) {
        let trace: Trace =
            stream.iter().map(|&(pc, t)| BranchRecord::conditional(pc << 2, t)).collect();
        for p in &mut baseline_lineup() {
            let stats = run_one(p.as_mut(), &trace);
            prop_assert!((stats.predictions() - trace.len() as f64).abs() < 1e-9);
            prop_assert!(stats.accuracy() >= 0.0 && stats.accuracy() <= 1.0);
        }
    }

    /// A perfectly biased branch is learned by every predictor to
    /// near-perfection once warm.
    #[test]
    fn all_predictors_learn_constant_direction(taken in any::<bool>(), pc in 1u64..1000) {
        let trace: Trace =
            (0..300).map(|_| BranchRecord::conditional(pc << 3, taken)).collect();
        let mut predictors: Vec<Box<dyn Predictor>> = vec![
            Box::new(Bimodal::new(10, 2)),
            Box::new(Gshare::new(10, 8)),
            Box::new(Perceptron::new(6, 12)),
        ];
        for p in &mut predictors {
            let stats = run_one(p.as_mut(), &trace);
            prop_assert!(
                stats.mispredictions() <= 5.0,
                "{} mispredicted a constant branch {} times",
                p.name(),
                stats.mispredictions()
            );
        }
    }

    /// The tentpole equivalence: one multi-lane gauntlet pass over a
    /// trace produces, per lane, byte-identical statistics to running
    /// each predictor alone — for every baseline family at once, on
    /// arbitrary mixed control flow.
    #[test]
    fn gauntlet_single_pass_matches_sequential_runs(
        ops in prop::collection::vec((0u8..6, any::<bool>()), 1..300)
    ) {
        let trace = mixed_trace(&ops);

        // Sequential reference: one predictor at a time.
        let solo: Vec<_> = baseline_lineup()
            .iter_mut()
            .map(|p| run_one(p.as_mut(), &trace))
            .collect();

        // Single pass: all predictors as lanes of one gauntlet.
        let mut gauntlet = Gauntlet::new();
        for p in baseline_lineup() {
            gauntlet.add_boxed(p);
        }
        gauntlet.run(&trace);
        let lanes = gauntlet.finish();

        prop_assert_eq!(lanes.len(), solo.len());
        for (lane, solo_stats) in lanes.iter().zip(&solo) {
            prop_assert_eq!(&lane.stats, solo_stats, "lane {} diverged", lane.name);
        }
    }

    /// `flush` restores every baseline to exactly its
    /// freshly-constructed behavior: a flushed predictor replaying a
    /// trace matches a brand-new one bit for bit, even after arbitrary
    /// warm-up history.
    #[test]
    fn flush_recovers_cold_start(
        warmup in prop::collection::vec((0u8..6, any::<bool>()), 1..200),
        replay in prop::collection::vec((0u8..6, any::<bool>()), 1..200),
    ) {
        let warmup_trace = mixed_trace(&warmup);
        let replay_trace = mixed_trace(&replay);
        for (mut warmed, mut cold) in baseline_lineup().into_iter().zip(baseline_lineup()) {
            run_one(warmed.as_mut(), &warmup_trace);
            warmed.flush();
            let after_flush = run_one(warmed.as_mut(), &replay_trace);
            let from_new = run_one(cold.as_mut(), &replay_trace);
            prop_assert_eq!(
                &after_flush,
                &from_new,
                "{}: flush must equal fresh construction",
                warmed.name()
            );
        }
    }

    /// The gauntlet's own `flush` (between traces of a serial set)
    /// keeps accumulating statistics while cold-starting the
    /// predictors — equal to summing independent cold runs.
    #[test]
    fn gauntlet_flush_accumulates_cold_runs(
        first in prop::collection::vec((0u8..6, any::<bool>()), 1..150),
        second in prop::collection::vec((0u8..6, any::<bool>()), 1..150),
    ) {
        let traces = [mixed_trace(&first), mixed_trace(&second)];

        let mut gauntlet = Gauntlet::new();
        for p in baseline_lineup() {
            gauntlet.add_boxed(p);
        }
        for t in &traces {
            gauntlet.run(t);
            gauntlet.flush();
        }
        let lanes = gauntlet.finish();

        for (i, mut p) in baseline_lineup().into_iter().enumerate() {
            let mut expected = branchnet_trace::PredictionStats::new();
            for t in &traces {
                expected.merge(&run_one(p.as_mut(), t));
                p.flush();
            }
            prop_assert_eq!(&lanes[i].stats, &expected, "lane {} diverged", lanes[i].name);
        }
    }

    /// TAGE-SC-L state stays consistent under interleaved conditional
    /// and unconditional control flow.
    #[test]
    fn tage_scl_handles_mixed_control_flow(
        ops in prop::collection::vec((0u8..6, any::<bool>()), 1..300)
    ) {
        let mut p = TageScL::new(&TageSclConfig::tage_sc_l_64kb());
        for (slot, taken) in ops {
            let pc = 0x4000 + u64::from(slot) * 32;
            if slot % 3 == 0 {
                p.note_unconditional(&BranchRecord::unconditional(
                    pc,
                    pc + 64,
                    BranchKind::Jump,
                ));
            } else {
                let pred = p.predict(pc);
                p.update(&BranchRecord::conditional(pc, taken), pred);
            }
        }
        // Storage accounting never changes at runtime.
        prop_assert_eq!(
            p.storage_bits(),
            TageScL::new(&TageSclConfig::tage_sc_l_64kb()).storage_bits()
        );
    }
}

#[test]
fn storage_ordering_across_configs() {
    let bits = |cfg: &TageSclConfig| TageScL::new(cfg).storage_bits();
    let b56 = bits(&TageSclConfig::tage_sc_l_56kb());
    let b64 = bits(&TageSclConfig::tage_sc_l_64kb());
    let unlimited = bits(&TageSclConfig::mtage_sc_unlimited());
    assert!(b56 < b64 && b64 < unlimited);
    assert!(b64 <= 64 * 1024 * 8);
    assert!(b56 <= 56 * 1024 * 8 + 8 * 1024, "56KB config near budget: {b56} bits");
}

/// `storage_bits` sanity against the paper's budgets (Table II /
/// Section VI): every baseline must report a plausible, non-zero
/// hardware cost that sits inside its nominal budget class.
#[test]
fn storage_bits_match_nominal_budgets() {
    let kb = |bits: u64| bits as f64 / 8.0 / 1024.0;

    // Named small baselines: (predictor, nominal KB ceiling).
    let cases: Vec<(Box<dyn Predictor>, f64)> = vec![
        (Box::new(Bimodal::new(15, 2)), 8.0),
        (Box::new(Gshare::new(14, 12)), 4.1),
        (Box::new(TwoLevel::new(16, true)), 17.0),
        (Box::new(Perceptron::new(10, 32)), 33.1),
        (Box::new(HashedPerceptron::default_config()), 32.1),
    ];
    for (p, ceiling_kb) in cases {
        let got = kb(p.storage_bits());
        assert!(got > 0.0, "{} reports zero storage", p.name());
        assert!(got <= ceiling_kb, "{}: {got:.2}KB exceeds its {ceiling_kb}KB class", p.name());
    }

    // The paper's baseline: 64 KB TAGE-SC-L within budget, and its
    // 56 KB iso-storage sibling strictly smaller.
    let full = TageScL::new(&TageSclConfig::tage_sc_l_64kb()).storage_bits();
    assert!(kb(full) <= 64.0, "64KB baseline: {:.2}KB", kb(full));
    assert!(kb(full) >= 48.0, "64KB baseline suspiciously small: {:.2}KB", kb(full));
    let small = TageScL::new(&TageSclConfig::tage_sc_l_56kb()).storage_bits();
    assert!(small < full);
}
