//! Conformance-suite instantiations for every runtime baseline in
//! [`baseline_lineup`], at the exact configurations the experiments
//! run. A predictor that joins the lineup without a
//! `predictor_conformance!` module here trips
//! [`every_lineup_entry_has_a_conformance_module`], which is the
//! failure the dedicated conformance CI step exists to surface.

use branchnet_tage::{baseline_lineup, lineup_entry, LineupEntry};
use branchnet_trace::conformance::{
    assert_deterministic_replay, assert_flush_recovers_cold_start, assert_gauntlet_matches_solo,
    assert_storage_within, mixed_trace,
};
use branchnet_trace::predictor_conformance;

/// The lineup entry for `name`, or a panic naming the missing entry.
fn entry(name: &str) -> LineupEntry {
    lineup_entry(name).unwrap_or_else(|| panic!("{name} is not in baseline_lineup()"))
}

predictor_conformance!(bimodal, entry("bimodal").nominal_budget_bits, entry("bimodal").build);
predictor_conformance!(gshare, entry("gshare").nominal_budget_bits, entry("gshare").build);
predictor_conformance!(two_level, entry("two-level").nominal_budget_bits, entry("two-level").build);
predictor_conformance!(loop_only, entry("loop-only").nominal_budget_bits, entry("loop-only").build);
predictor_conformance!(
    perceptron,
    entry("perceptron").nominal_budget_bits,
    entry("perceptron").build
);
predictor_conformance!(
    local_perceptron,
    entry("local-perceptron").nominal_budget_bits,
    entry("local-perceptron").build
);
predictor_conformance!(
    hashed_perceptron,
    entry("hashed-perceptron").nominal_budget_bits,
    entry("hashed-perceptron").build
);
predictor_conformance!(o_gehl, entry("o-gehl").nominal_budget_bits, entry("o-gehl").build);
predictor_conformance!(
    tage_sc_l_64kb,
    entry("tage-sc-l-64kb").nominal_budget_bits,
    entry("tage-sc-l-64kb").build
);

/// Pins the lineup roster to the instantiations above: growing (or
/// renaming) the lineup without extending this file fails here with an
/// actionable message instead of silently skipping conformance.
#[test]
fn every_lineup_entry_has_a_conformance_module() {
    let covered = [
        "bimodal",
        "gshare",
        "two-level",
        "loop-only",
        "perceptron",
        "local-perceptron",
        "hashed-perceptron",
        "o-gehl",
        "tage-sc-l-64kb",
    ];
    let lineup: Vec<&str> = baseline_lineup().iter().map(|e| e.name).collect();
    assert_eq!(
        lineup, covered,
        "baseline_lineup() and the predictor_conformance! instantiations in \
         crates/tage/tests/conformance.rs are out of sync — add or remove a module"
    );
}

/// Belt-and-braces sweep driven by the registry itself: even if an
/// instantiation above were deleted, every registered entry still gets
/// one deterministic pass over each contract.
#[test]
fn whole_lineup_passes_contracts_on_a_deterministic_trace() {
    let ops: Vec<(u8, bool)> =
        (0..180u32).map(|i| ((i % 6) as u8, i.wrapping_mul(2654435761) % 7 < 3)).collect();
    let warmup = mixed_trace(&ops[..90]);
    let trace = mixed_trace(&ops);
    for e in baseline_lineup() {
        assert_gauntlet_matches_solo(&e.build, &trace);
        assert_flush_recovers_cold_start(&e.build, &warmup, &trace);
        assert_deterministic_replay(&e.build, &trace);
        assert_storage_within(&e.build, e.nominal_budget_bits);
        let built = (e.build)();
        assert!(built.storage_bits() > 0, "{}: a lineup baseline must model storage", e.name);
    }
}
