//! Jiménez & Lin's original local-history perceptron: per-branch
//! history shift registers feeding per-branch weight vectors.
//!
//! Where [`crate::Perceptron`] correlates against *global* history,
//! this variant keeps a private outcome register per branch, so it
//! learns self-correlated patterns (parity, short periodic sequences)
//! even when interleaved branches pollute the global history — the
//! workload family that motivates BranchNet's per-branch CNNs in the
//! first place.

use crate::predictor::Predictor;
use branchnet_trace::BranchRecord;

/// Perceptron predictor over per-branch local history
/// (Jiménez & Lin, HPCA 2001, the original table-indexed variant).
#[derive(Debug, Clone)]
pub struct LocalPerceptron {
    /// Per-row local outcome shift registers (bit 0 = most recent).
    histories: Vec<u64>,
    /// `weights[row][i]` correlates with history bit `i`; the last
    /// element is the bias weight.
    weights: Vec<Vec<i16>>,
    history_bits: u32,
    log_size: u32,
    threshold: i32,
    /// Adder-tree sum stashed by `predict` for the matching `update`.
    last_sum: i32,
}

impl LocalPerceptron {
    /// Creates a local perceptron with `2^log_size` rows and
    /// `history_bits` of per-branch history.
    ///
    /// # Panics
    ///
    /// Panics if `log_size` is not in `1..=24` or `history_bits` not
    /// in `1..=63`.
    #[must_use]
    pub fn new(log_size: u32, history_bits: u32) -> Self {
        assert!((1..=24).contains(&log_size), "log_size out of range: {log_size}");
        assert!((1..=63).contains(&history_bits), "history_bits out of range: {history_bits}");
        let rows = 1usize << log_size;
        // Jiménez's empirically best threshold for history length h.
        let threshold = (1.93 * f64::from(history_bits) + 14.0) as i32;
        Self {
            histories: vec![0; rows],
            weights: vec![vec![0; history_bits as usize + 1]; rows],
            history_bits,
            log_size,
            threshold,
            last_sum: 0,
        }
    }

    fn row(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << self.log_size) - 1)) as usize
    }

    fn sum(&self, row: usize) -> i32 {
        let history = self.histories[row];
        let weights = &self.weights[row];
        let mut sum = i32::from(weights[self.history_bits as usize]);
        for (i, &w) in weights[..self.history_bits as usize].iter().enumerate() {
            if history >> i & 1 == 1 {
                sum += i32::from(w);
            } else {
                sum -= i32::from(w);
            }
        }
        sum
    }
}

impl Predictor for LocalPerceptron {
    fn predict(&mut self, pc: u64) -> bool {
        self.last_sum = self.sum(self.row(pc));
        self.last_sum >= 0
    }

    fn update(&mut self, record: &BranchRecord, predicted: bool) {
        let row = self.row(record.pc);
        let taken = record.taken;
        if predicted != taken || self.last_sum.abs() <= self.threshold {
            let history = self.histories[row];
            let weights = &mut self.weights[row];
            let step: i16 = if taken { 1 } else { -1 };
            let h = self.history_bits as usize;
            weights[h] = (weights[h] + step).clamp(-128, 127);
            for (i, w) in weights[..h].iter_mut().enumerate() {
                let agree = (history >> i & 1 == 1) == taken;
                let delta: i16 = if agree { 1 } else { -1 };
                *w = (*w + delta).clamp(-128, 127);
            }
        }
        self.histories[row] =
            (self.histories[row] << 1 | u64::from(taken)) & ((1 << self.history_bits) - 1);
    }

    fn flush(&mut self) {
        *self = Self::new(self.log_size, self.history_bits);
    }

    fn name(&self) -> &'static str {
        "local-perceptron"
    }

    fn storage_bits(&self) -> u64 {
        let rows = 1u64 << self.log_size;
        let history = rows * u64::from(self.history_bits);
        let weights = rows * (u64::from(self.history_bits) + 1) * 8;
        history + weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchnet_trace::{run_one, Trace};

    #[test]
    fn learns_a_local_periodic_pattern() {
        // T T N repeating: each outcome is a linear function of the
        // two previous *local* outcomes; a perceptron nails it.
        let trace: Trace = (0..600).map(|i| BranchRecord::conditional(0x400, i % 3 != 2)).collect();
        let stats = run_one(&mut LocalPerceptron::new(8, 12), &trace);
        assert!(stats.accuracy() > 0.95, "accuracy {}", stats.accuracy());
    }

    #[test]
    fn history_bit_zero_is_most_recent_outcome() {
        // Alternating T/N is exactly "predict the opposite of the last
        // outcome" — learnable with a single history bit.
        let trace: Trace = (0..400).map(|i| BranchRecord::conditional(0x80, i % 2 == 0)).collect();
        let stats = run_one(&mut LocalPerceptron::new(4, 1), &trace);
        assert!(stats.accuracy() > 0.9, "accuracy {}", stats.accuracy());
    }

    #[test]
    fn interleaved_branches_use_separate_rows() {
        // Two branches with opposite periodic patterns; private
        // histories mean neither disturbs the other.
        let mut trace = Trace::new();
        for i in 0..500 {
            trace.push(BranchRecord::conditional(0x100, i % 3 != 2));
            trace.push(BranchRecord::conditional(0x200, i % 3 == 2));
        }
        let stats = run_one(&mut LocalPerceptron::new(8, 12), &trace);
        assert!(stats.accuracy() > 0.95, "accuracy {}", stats.accuracy());
    }

    #[test]
    fn storage_accounts_history_and_weights() {
        let p = LocalPerceptron::new(10, 16);
        assert_eq!(p.storage_bits(), 1024 * 16 + 1024 * 17 * 8);
    }
}
