//! O-GEHL: the Optimized GEometric History Length predictor (Seznec,
//! CBP-1 / ISCA 2005) — the geometric-history ancestor of TAGE's
//! statistical corrector. Several small counter tables, each indexed
//! by a hash of the PC and a *geometrically growing* slice of global
//! history, vote through an adder tree; training is gated by an
//! adaptive confidence threshold.
//!
//! Next to [`crate::HashedPerceptron`] this is the
//! narrower-counter, adaptive-threshold original: 5-bit saturating
//! counters instead of bytes, and a dynamically tuned θ instead of
//! the fixed Jiménez formula.

use crate::predictor::Predictor;
use branchnet_trace::{BranchRecord, GlobalHistory};

/// Saturation bound for the 5-bit signed counters (`[-16, 15]`).
const COUNTER_MAX: i32 = 15;
const COUNTER_MIN: i32 = -16;
/// Saturation bound for the adaptive-threshold counter.
const TC_SAT: i32 = 32;

/// O-GEHL predictor with an adder tree over geometric history lengths
/// and Seznec's adaptive update threshold.
#[derive(Debug, Clone)]
pub struct OGehl {
    tables: Vec<Vec<i8>>, // one 5-bit counter table per history length
    lengths: Vec<usize>,
    history: GlobalHistory,
    threshold: i32,
    tc: i32, // adaptive-threshold counter
    log_table: u32,
    last_sum: i32,
}

impl OGehl {
    /// Creates an O-GEHL predictor with one `2^log_table`-entry counter
    /// table per entry of `lengths` (geometric history lengths; a
    /// length of 0 is the bias table).
    ///
    /// # Panics
    ///
    /// Panics if `lengths` is empty or `log_table` not in `1..=24`.
    #[must_use]
    pub fn new(log_table: u32, lengths: &[usize]) -> Self {
        assert!(!lengths.is_empty());
        assert!((1..=24).contains(&log_table));
        let max_len = lengths.iter().copied().max().unwrap_or(1).max(1);
        Self {
            tables: vec![vec![0i8; 1 << log_table]; lengths.len()],
            lengths: lengths.to_vec(),
            history: GlobalHistory::new(max_len),
            // Seznec initializes θ near the table count; the adaptive
            // loop takes it from there.
            threshold: lengths.len() as i32,
            tc: 0,
            log_table,
            last_sum: 0,
        }
    }

    /// The CBP-flavored 8-table geometric configuration used by
    /// experiments: lengths 0..200 with ratio ≈ 2.
    #[must_use]
    pub fn default_config() -> Self {
        Self::new(11, &[0, 3, 6, 12, 25, 50, 100, 200])
    }

    fn index(&self, pc: u64, len: usize) -> usize {
        // Distinct mixer from HashedPerceptron so the two baselines
        // don't alias on the same pathological traces.
        let mut h = (pc >> 2).wrapping_mul(0x2545_F491_4F6C_DD1D);
        let mut i = 0;
        while i < len {
            let chunk = len.min(i + 64) - i;
            let mut bits = 0u64;
            for j in 0..chunk {
                bits = (bits << 1) | u64::from(self.history.bit(i + j));
            }
            h ^= bits.wrapping_mul(0x94D0_49BB_1331_11EB).rotate_left((i % 61) as u32 + 1);
            i += 64;
        }
        (h >> 13) as usize & ((1 << self.log_table) - 1)
    }

    fn adder_tree(&self, pc: u64) -> i32 {
        self.tables
            .iter()
            .zip(&self.lengths)
            .map(|(t, &len)| i32::from(t[self.index(pc, len)]))
            .sum()
    }
}

impl Predictor for OGehl {
    fn predict(&mut self, pc: u64) -> bool {
        self.last_sum = self.adder_tree(pc);
        self.last_sum >= 0
    }

    fn update(&mut self, record: &BranchRecord, predicted: bool) {
        let mispredicted = predicted != record.taken;
        if mispredicted || self.last_sum.abs() <= self.threshold {
            let step = if record.taken { 1i32 } else { -1 };
            let idxs: Vec<usize> =
                self.lengths.iter().map(|&len| self.index(record.pc, len)).collect();
            for (table, idx) in self.tables.iter_mut().zip(idxs) {
                table[idx] = (i32::from(table[idx]) + step).clamp(COUNTER_MIN, COUNTER_MAX) as i8;
            }
            // Adaptive threshold fitting (Seznec): mispredictions push
            // θ up, low-confidence-but-correct updates pull it down,
            // dynamically balancing the two update populations.
            if mispredicted {
                self.tc += 1;
                if self.tc >= TC_SAT {
                    self.threshold += 1;
                    self.tc = 0;
                }
            } else {
                self.tc -= 1;
                if self.tc <= -TC_SAT {
                    self.threshold = (self.threshold - 1).max(1);
                    self.tc = 0;
                }
            }
        }
        self.history.push(record.taken);
    }

    fn flush(&mut self) {
        // Reconstruct to also reset θ and its counter.
        *self = Self::new(self.log_table, &std::mem::take(&mut self.lengths));
    }

    fn name(&self) -> &'static str {
        "o-gehl"
    }

    fn storage_bits(&self) -> u64 {
        self.tables.iter().map(|t| t.len() as u64 * 5).sum::<u64>() + self.history.capacity() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchnet_trace::{run_one as evaluate, Trace};

    #[test]
    fn learns_a_biased_branch_immediately() {
        let trace: Trace = (0..500).map(|_| BranchRecord::conditional(0x44, true)).collect();
        let stats = evaluate(&mut OGehl::default_config(), &trace);
        assert!(stats.mispredictions() <= 2.0);
    }

    #[test]
    fn learns_short_global_correlation() {
        // Branch 0x900 repeats the direction of 0x100 four branches
        // earlier — well inside every non-bias table's reach.
        let mut seed = 7u64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            seed >> 60 > 7
        };
        let mut trace = Trace::new();
        for _ in 0..2000 {
            let k = rng();
            trace.push(BranchRecord::conditional(0x100, k));
            for j in 0..3u64 {
                trace.push(BranchRecord::conditional(0x200 + j * 8, j == 0));
            }
            trace.push(BranchRecord::conditional(0x900, k));
        }
        let stats = evaluate(&mut OGehl::default_config(), &trace);
        // 0x100 is a coin flip and 1 of 5 branches, so the ceiling is
        // ~0.9; clearing 0.88 means the other four are near-perfect.
        assert!(stats.accuracy() > 0.88, "accuracy {}", stats.accuracy());
    }

    #[test]
    fn threshold_adapts_but_stays_positive() {
        let mut p = OGehl::new(8, &[0, 2, 4]);
        let mut seed = 3u64;
        for i in 0..5000u64 {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let r = BranchRecord::conditional(0x40 + (i % 7) * 4, seed >> 63 == 1);
            let predicted = p.predict(r.pc);
            p.update(&r, predicted);
        }
        assert!(p.threshold >= 1);
    }

    #[test]
    fn index_is_deterministic_and_in_range() {
        let p = OGehl::new(9, &[0, 8, 16]);
        for pc in [0u64, 4, 0xFFFF_FF00, u64::MAX] {
            for &len in &[0usize, 8, 16] {
                let a = p.index(pc, len);
                assert_eq!(a, p.index(pc, len));
                assert!(a < 512);
            }
        }
    }

    #[test]
    fn storage_counts_five_bit_counters() {
        let p = OGehl::new(10, &[0, 8, 16, 32]);
        assert_eq!(p.storage_bits(), 4 * 1024 * 5 + 32);
    }
}
