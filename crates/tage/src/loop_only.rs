//! A standalone loop-predictor baseline: the TAGE-SC-L loop component
//! promoted to the *whole* predictor, with a bimodal fallback for
//! non-loop branches.
//!
//! Lin & Tarsa's "Branch Prediction Is Not a Solved Problem" argues
//! that knowing *where* TAGE-SC-L's accuracy comes from matters when
//! interpreting H2P headroom; this lane isolates how much of the win
//! on loop-heavy workloads (xz, exchange2) is pure trip-count capture
//! rather than tagged-history correlation.

use crate::bimodal::Bimodal;
use crate::loop_pred::LoopPredictor;
use crate::predictor::Predictor;
use branchnet_trace::BranchRecord;

/// Loop predictor + bimodal fallback, and nothing else.
///
/// Prediction: a confident loop-table hit overrides; every other
/// branch rides the bimodal table. Training mirrors the CBP TAGE-SC-L
/// allocation policy with the *final* prediction standing in for the
/// main predictor: loop entries are only allocated for branches the
/// predictor as a whole just mispredicted (a loop branch's exit).
#[derive(Debug, Clone)]
pub struct LoopOnly {
    loops: LoopPredictor,
    fallback: Bimodal,
    loop_log_size: u32,
    fallback_log_size: u32,
}

impl LoopOnly {
    /// Creates a loop-only predictor with `2^loop_log_size` loop
    /// entries and `2^fallback_log_size` bimodal counters.
    ///
    /// # Panics
    ///
    /// Panics if `loop_log_size` is not in `1..=16` or
    /// `fallback_log_size` not in `1..=30` (the component limits).
    #[must_use]
    pub fn new(loop_log_size: u32, fallback_log_size: u32) -> Self {
        Self {
            loops: LoopPredictor::new(loop_log_size),
            fallback: Bimodal::new(fallback_log_size, 2),
            loop_log_size,
            fallback_log_size,
        }
    }

    /// The standard experiment configuration: 256 loop entries plus a
    /// 1 KB bimodal fallback (~2.7 KB total).
    #[must_use]
    pub fn default_config() -> Self {
        Self::new(8, 12)
    }
}

impl Predictor for LoopOnly {
    fn predict(&mut self, pc: u64) -> bool {
        let lp = self.loops.lookup(pc);
        if lp.hit && lp.confident {
            lp.taken
        } else {
            self.fallback.lookup(pc)
        }
    }

    fn update(&mut self, record: &BranchRecord, predicted: bool) {
        // The loop table allocates on a misprediction of the predictor
        // as a whole — for a loop branch that is its exit, so the
        // entry's body direction is the opposite of the resolved one.
        self.loops.train(record.pc, record.taken, predicted != record.taken);
        self.fallback.train(record.pc, record.taken);
    }

    fn flush(&mut self) {
        *self = Self::new(self.loop_log_size, self.fallback_log_size);
    }

    fn name(&self) -> &'static str {
        "loop-only"
    }

    fn storage_bits(&self) -> u64 {
        self.loops.storage_bits() + self.fallback.storage_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchnet_trace::{run_one, Trace};

    fn loop_trace(trip: usize, rounds: usize) -> Trace {
        (0..rounds)
            .flat_map(|_| (0..trip).map(|i| BranchRecord::conditional(0x1040, i + 1 < trip)))
            .collect()
    }

    #[test]
    fn captures_constant_trip_count() {
        // 2-bit bimodal alone mispredicts every exit (~96%); the loop
        // table predicts the exits exactly once confident.
        let stats = run_one(&mut LoopOnly::default_config(), &loop_trace(25, 60));
        assert!(stats.accuracy() > 0.99, "accuracy {}", stats.accuracy());
    }

    #[test]
    fn non_loop_branches_ride_the_bimodal_fallback() {
        let trace: Trace = (0..200).map(|_| BranchRecord::conditional(0x44, true)).collect();
        let stats = run_one(&mut LoopOnly::default_config(), &trace);
        assert!(stats.mispredictions() <= 1.0);
    }

    #[test]
    fn varying_trip_counts_fall_back_gracefully() {
        // 5,6,7,5,6,7... never reaches loop confidence; accuracy
        // matches what bimodal alone would get, not worse.
        let mut trace = Trace::new();
        for round in 0..60 {
            let trip = 5 + (round % 3);
            for i in 0..trip {
                trace.push(BranchRecord::conditional(0x2080, i + 1 < trip));
            }
        }
        let loop_only = run_one(&mut LoopOnly::default_config(), &trace);
        let bimodal = run_one(&mut Bimodal::new(12, 2), &trace);
        assert!(loop_only.accuracy() >= bimodal.accuracy() - 1e-9);
    }

    #[test]
    fn storage_is_loop_plus_fallback() {
        let p = LoopOnly::new(6, 10);
        let expected = LoopPredictor::new(6).storage_bits() + Bimodal::new(10, 2).storage_bits();
        assert_eq!(p.storage_bits(), expected);
    }
}
