//! Perceptron branch predictors (Jiménez & Lin) and the hashed
//! perceptron variant (Tarjan & Skadron), discussed in Section II-A of
//! the paper as the other family of state-of-the-art runtime
//! predictors.

use crate::predictor::Predictor;
use branchnet_trace::{BranchRecord, GlobalHistory};

/// The classic global-history perceptron: one weight per history bit
/// position, per PC-indexed table row.
#[derive(Debug, Clone)]
pub struct Perceptron {
    weights: Vec<Vec<i16>>, // [row][history position + bias]
    history: GlobalHistory,
    history_bits: usize,
    threshold: i32,
    weight_max: i16,
    mask: u64,
    last_sum: i32,
}

impl Perceptron {
    /// Creates a perceptron predictor with `2^log_rows` weight rows
    /// over `history_bits` of global history.
    ///
    /// # Panics
    ///
    /// Panics if `log_rows` is not in `1..=24` or `history_bits == 0`.
    #[must_use]
    pub fn new(log_rows: u32, history_bits: usize) -> Self {
        assert!((1..=24).contains(&log_rows));
        assert!(history_bits > 0);
        let rows = 1usize << log_rows;
        // Jiménez's empirically-derived training threshold.
        let threshold = (1.93 * history_bits as f64 + 14.0) as i32;
        Self {
            weights: vec![vec![0i16; history_bits + 1]; rows],
            history: GlobalHistory::new(history_bits),
            history_bits,
            threshold,
            weight_max: 127,
            mask: (rows - 1) as u64,
            last_sum: 0,
        }
    }

    fn row(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    fn dot(&self, pc: u64) -> i32 {
        let w = &self.weights[self.row(pc)];
        let mut sum = i32::from(w[0]); // bias weight
        for i in 0..self.history_bits {
            let x = if self.history.bit(i) { 1 } else { -1 };
            sum += i32::from(w[i + 1]) * x;
        }
        sum
    }

    fn clamp(&self, v: i32) -> i16 {
        v.clamp(-i32::from(self.weight_max) - 1, i32::from(self.weight_max)) as i16
    }
}

impl Predictor for Perceptron {
    fn predict(&mut self, pc: u64) -> bool {
        self.last_sum = self.dot(pc);
        self.last_sum >= 0
    }

    fn update(&mut self, record: &BranchRecord, predicted: bool) {
        let t = if record.taken { 1i32 } else { -1 };
        if predicted != record.taken || self.last_sum.abs() <= self.threshold {
            let row = self.row(record.pc);
            let bits: Vec<i32> =
                (0..self.history_bits).map(|i| if self.history.bit(i) { 1 } else { -1 }).collect();
            let w0 = self.clamp(i32::from(self.weights[row][0]) + t);
            self.weights[row][0] = w0;
            for (i, x) in bits.iter().enumerate() {
                let wi = self.clamp(i32::from(self.weights[row][i + 1]) + t * x);
                self.weights[row][i + 1] = wi;
            }
        }
        self.history.push(record.taken);
    }

    fn flush(&mut self) {
        *self = Self::new(self.weights.len().trailing_zeros(), self.history_bits);
    }

    fn name(&self) -> &'static str {
        "perceptron"
    }

    fn storage_bits(&self) -> u64 {
        (self.weights.len() * (self.history_bits + 1) * 8) as u64 + self.history_bits as u64
    }
}

/// Hashed perceptron: weights are indexed by hashes of (PC, history
/// segment) for several geometric history lengths, mitigating the
/// positional fragility of the classic perceptron (Section II-A).
#[derive(Debug, Clone)]
pub struct HashedPerceptron {
    tables: Vec<Vec<i16>>, // one weight table per history length
    lengths: Vec<usize>,
    history: GlobalHistory,
    threshold: i32,
    tc: i32, // adaptive-threshold counter
    weight_max: i16,
    log_table: u32,
    last_sum: i32,
}

impl HashedPerceptron {
    /// Creates a hashed perceptron with one `2^log_table`-entry weight
    /// table per entry of `lengths` (geometric history lengths; a
    /// length of 0 is the bias table).
    ///
    /// # Panics
    ///
    /// Panics if `lengths` is empty or `log_table` not in `1..=24`.
    #[must_use]
    pub fn new(log_table: u32, lengths: &[usize]) -> Self {
        assert!(!lengths.is_empty());
        assert!((1..=24).contains(&log_table));
        let max_len = lengths.iter().copied().max().unwrap_or(1).max(1);
        Self {
            tables: vec![vec![0i16; 1 << log_table]; lengths.len()],
            lengths: lengths.to_vec(),
            history: GlobalHistory::new(max_len),
            threshold: (1.93 * lengths.len() as f64 * 8.0 + 14.0) as i32,
            tc: 0,
            weight_max: 127,
            log_table,
            last_sum: 0,
        }
    }

    /// Default geometric configuration used by experiments.
    #[must_use]
    pub fn default_config() -> Self {
        Self::new(12, &[0, 4, 8, 16, 32, 64, 128, 256])
    }

    fn hash(&self, pc: u64, len: usize) -> usize {
        let mut h = (pc >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // Fold `len` history bits into the hash, 64 at a time.
        let mut i = 0;
        while i < len {
            let chunk = len.min(i + 64) - i;
            let mut bits = 0u64;
            for j in 0..chunk {
                bits = (bits << 1) | u64::from(self.history.bit(i + j));
            }
            h ^= bits.wrapping_mul(0xBF58_476D_1CE4_E5B9).rotate_left((i % 63) as u32);
            i += 64;
        }
        (h >> 16) as usize & ((1 << self.log_table) - 1)
    }

    fn dot(&self, pc: u64) -> i32 {
        self.tables
            .iter()
            .zip(&self.lengths)
            .map(|(t, &len)| i32::from(t[self.hash(pc, len)]))
            .sum()
    }
}

impl Predictor for HashedPerceptron {
    fn predict(&mut self, pc: u64) -> bool {
        self.last_sum = self.dot(pc);
        self.last_sum >= 0
    }

    fn update(&mut self, record: &BranchRecord, predicted: bool) {
        let mispredicted = predicted != record.taken;
        if mispredicted || self.last_sum.abs() <= self.threshold {
            let t = if record.taken { 1i32 } else { -1 };
            let idxs: Vec<usize> =
                self.lengths.iter().map(|&len| self.hash(record.pc, len)).collect();
            for (table, idx) in self.tables.iter_mut().zip(idxs) {
                table[idx] = {
                    let v = i32::from(table[idx]) + t;
                    v.clamp(-i32::from(self.weight_max) - 1, i32::from(self.weight_max)) as i16
                };
            }
            // Seznec-style adaptive threshold.
            if mispredicted {
                self.tc += 1;
                if self.tc >= 32 {
                    self.threshold += 1;
                    self.tc = 0;
                }
            } else {
                self.tc -= 1;
                if self.tc <= -32 {
                    self.threshold = (self.threshold - 1).max(4);
                    self.tc = 0;
                }
            }
        }
        self.history.push(record.taken);
    }

    fn flush(&mut self) {
        // Reconstructing also resets the adaptive threshold and its
        // counter, which plain table-zeroing would miss.
        *self = Self::new(self.log_table, &std::mem::take(&mut self.lengths));
    }

    fn name(&self) -> &'static str {
        "hashed-perceptron"
    }

    fn storage_bits(&self) -> u64 {
        self.tables.iter().map(|t| t.len() as u64 * 8).sum::<u64>() + self.history.capacity() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchnet_trace::{run_one as evaluate, Trace};

    fn correlated_trace(n: usize, gap: usize) -> Trace {
        // Branch at 0x900 repeats the direction of branch 0x100 `gap`
        // branches earlier; positions are deterministic.
        let mut seed = 99u64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33).is_multiple_of(2)
        };
        let mut trace = Trace::new();
        let mut keys = std::collections::VecDeque::new();
        for _ in 0..n {
            let k = rng();
            keys.push_back(k);
            trace.push(BranchRecord::conditional(0x100, k));
            for j in 0..gap {
                trace.push(BranchRecord::conditional(0x200 + j as u64 * 8, j % 2 == 0));
            }
            if keys.len() > 1 {
                trace.push(BranchRecord::conditional(0x900, keys.pop_front().unwrap()));
            }
        }
        trace
    }

    #[test]
    fn perceptron_learns_positional_correlation() {
        let trace = correlated_trace(2000, 4);
        let stats = evaluate(&mut Perceptron::new(10, 24), &trace);
        assert!(stats.accuracy() > 0.9, "accuracy {}", stats.accuracy());
    }

    #[test]
    fn hashed_perceptron_handles_multiple_lengths() {
        let trace = correlated_trace(2000, 4);
        let stats = evaluate(&mut HashedPerceptron::default_config(), &trace);
        assert!(stats.accuracy() > 0.85, "accuracy {}", stats.accuracy());
    }

    #[test]
    fn perceptron_learns_biased_branch_immediately() {
        let trace: Trace = (0..500).map(|_| BranchRecord::conditional(0x44, true)).collect();
        let stats = evaluate(&mut Perceptron::new(8, 16), &trace);
        assert!(stats.mispredictions() <= 2.0);
    }

    #[test]
    fn hash_is_deterministic_and_in_range() {
        let hp = HashedPerceptron::new(10, &[0, 8, 16]);
        for pc in [0u64, 4, 0xFFFF_FF00, u64::MAX] {
            for &len in &[0usize, 8, 16] {
                let a = hp.hash(pc, len);
                let b = hp.hash(pc, len);
                assert_eq!(a, b);
                assert!(a < 1024);
            }
        }
    }
}
