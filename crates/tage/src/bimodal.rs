//! A PC-indexed table of 2-bit counters — the simplest dynamic
//! predictor, and TAGE's base component.

use crate::counters::SaturatingCounter;
use crate::predictor::Predictor;
use branchnet_trace::BranchRecord;

/// Bimodal predictor: `2^log_size` two-bit saturating counters indexed
/// by the branch PC.
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<SaturatingCounter>,
    mask: u64,
    counter_bits: u32,
}

impl Bimodal {
    /// Creates a bimodal table with `2^log_size` counters of
    /// `counter_bits` precision.
    ///
    /// # Panics
    ///
    /// Panics if `log_size` is not in `1..=30`.
    #[must_use]
    pub fn new(log_size: u32, counter_bits: u32) -> Self {
        assert!((1..=30).contains(&log_size));
        let size = 1usize << log_size;
        Self {
            table: vec![SaturatingCounter::new(counter_bits); size],
            mask: (size - 1) as u64,
            counter_bits,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// Direct table read without the [`Predictor`] trait — used by
    /// TAGE as its base prediction.
    #[must_use]
    pub fn lookup(&self, pc: u64) -> bool {
        self.table[self.index(pc)].is_taken()
    }

    /// Whether the entry backing `pc` is at a weak value.
    #[must_use]
    pub fn is_weak(&self, pc: u64) -> bool {
        self.table[self.index(pc)].is_weak()
    }

    /// Trains the entry backing `pc` toward `taken`.
    pub fn train(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        self.table[idx].update(taken);
    }
}

impl Predictor for Bimodal {
    fn predict(&mut self, pc: u64) -> bool {
        self.lookup(pc)
    }

    fn update(&mut self, record: &BranchRecord, _predicted: bool) {
        self.train(record.pc, record.taken);
    }

    fn flush(&mut self) {
        *self = Self::new(self.table.len().trailing_zeros(), self.counter_bits);
    }

    fn name(&self) -> &'static str {
        "bimodal"
    }

    fn storage_bits(&self) -> u64 {
        self.table.len() as u64 * u64::from(self.counter_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchnet_trace::{run_one as evaluate, Trace};

    #[test]
    fn learns_a_biased_branch() {
        let trace: Trace = (0..100).map(|_| BranchRecord::conditional(0x40, true)).collect();
        let stats = evaluate(&mut Bimodal::new(10, 2), &trace);
        // Only possible mistakes are during the first warm-up updates.
        assert!(stats.mispredictions() <= 1.0);
    }

    #[test]
    fn loop_exit_mispredicts_once_per_iteration_set() {
        // 10-iteration loop: 2-bit counter mispredicts the single
        // not-taken exit each time but stays taken-biased.
        let trace: Trace = (0..200).map(|i| BranchRecord::conditional(0x40, i % 10 != 9)).collect();
        let stats = evaluate(&mut Bimodal::new(10, 2), &trace);
        assert!(stats.accuracy() >= 0.89 && stats.accuracy() <= 0.91);
    }

    #[test]
    fn distinct_pcs_map_to_distinct_entries() {
        let mut b = Bimodal::new(10, 2);
        for _ in 0..4 {
            b.train(0x100, true);
            b.train(0x200, false);
        }
        assert!(b.lookup(0x100));
        assert!(!b.lookup(0x200));
    }

    #[test]
    fn storage_accounting() {
        let b = Bimodal::new(12, 2);
        assert_eq!(b.storage_bits(), 4096 * 2);
    }
}
