//! The canonical baseline lineup: every runtime predictor the
//! experiments compare against, with its nominal storage budget and
//! the kind of history it consumes.
//!
//! This registry is the single source of truth shared by the Table 4
//! ladder, the fig13 budget sweep, and the predictor-conformance
//! suite — a baseline that exists but is not listed here is invisible
//! to all three, which is exactly the failure mode the conformance CI
//! step is designed to catch.

use crate::bimodal::Bimodal;
use crate::gshare::Gshare;
use crate::local_perceptron::LocalPerceptron;
use crate::loop_only::LoopOnly;
use crate::ogehl::OGehl;
use crate::perceptron::{HashedPerceptron, Perceptron};
use crate::predictor::Predictor;
use crate::tagescl::{TageScL, TageSclConfig};
use crate::twolevel::TwoLevel;

/// What a predictor correlates against — useful when reading the
/// ladder: global-history predictors fail together on local patterns
/// and vice versa.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoryKind {
    /// Per-PC state only (no history register).
    None,
    /// A single global outcome register.
    Global,
    /// Per-branch outcome registers.
    Local,
    /// Global history consumed at several geometric lengths.
    Geometric,
    /// Global + local + loop state (the TAGE-SC-L family).
    Hybrid,
}

impl HistoryKind {
    /// Stable lowercase label used in docs and reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::None => "none",
            Self::Global => "global",
            Self::Local => "local",
            Self::Geometric => "geometric",
            Self::Hybrid => "hybrid",
        }
    }
}

/// One registered baseline: a stable name, its history class, the
/// storage budget its configuration targets, and a factory.
#[derive(Clone, Copy)]
pub struct LineupEntry {
    /// Stable identifier; matches [`Predictor::name`] of the built
    /// instance.
    pub name: &'static str,
    /// History class (see [`HistoryKind`]).
    pub history: HistoryKind,
    /// Nominal budget ceiling in bits; `storage_bits()` of the built
    /// instance must not exceed this.
    pub nominal_budget_bits: u64,
    /// Builds a fresh instance at the lineup configuration.
    pub build: fn() -> Box<dyn Predictor>,
}

impl std::fmt::Debug for LineupEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LineupEntry")
            .field("name", &self.name)
            .field("history", &self.history)
            .field("nominal_budget_bits", &self.nominal_budget_bits)
            .finish_non_exhaustive()
    }
}

/// The full baseline ladder, simplest first. Order is stable: report
/// rows and conformance output follow it.
#[must_use]
pub fn baseline_lineup() -> Vec<LineupEntry> {
    vec![
        LineupEntry {
            name: "bimodal",
            history: HistoryKind::None,
            nominal_budget_bits: 64 * 1024 * 8,
            build: || Box::new(Bimodal::new(15, 2)),
        },
        LineupEntry {
            name: "gshare",
            history: HistoryKind::Global,
            nominal_budget_bits: 64 * 1024 * 8,
            build: || Box::new(Gshare::new(14, 12)),
        },
        LineupEntry {
            name: "two-level",
            history: HistoryKind::Global,
            nominal_budget_bits: 144 * 1024 * 8,
            build: || Box::new(TwoLevel::new(16, true)),
        },
        LineupEntry {
            name: "loop-only",
            history: HistoryKind::None,
            nominal_budget_bits: 4 * 1024 * 8,
            build: || Box::new(LoopOnly::default_config()),
        },
        LineupEntry {
            name: "perceptron",
            history: HistoryKind::Global,
            nominal_budget_bits: 34 * 1024 * 8,
            build: || Box::new(Perceptron::new(10, 32)),
        },
        LineupEntry {
            name: "local-perceptron",
            history: HistoryKind::Local,
            nominal_budget_bits: 20 * 1024 * 8,
            build: || Box::new(LocalPerceptron::new(10, 16)),
        },
        LineupEntry {
            name: "hashed-perceptron",
            history: HistoryKind::Geometric,
            nominal_budget_bits: 33 * 1024 * 8,
            build: || Box::new(HashedPerceptron::default_config()),
        },
        LineupEntry {
            name: "o-gehl",
            history: HistoryKind::Geometric,
            nominal_budget_bits: 16 * 1024 * 8,
            build: || Box::new(OGehl::default_config()),
        },
        LineupEntry {
            name: "tage-sc-l-64kb",
            history: HistoryKind::Hybrid,
            nominal_budget_bits: 64 * 1024 * 8,
            build: || Box::new(TageScL::new(&TageSclConfig::tage_sc_l_64kb())),
        },
    ]
}

/// Looks up one lineup entry by its stable name.
#[must_use]
pub fn lineup_entry(name: &str) -> Option<LineupEntry> {
    baseline_lineup().into_iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn built_names_match_registry_names() {
        for entry in baseline_lineup() {
            let built = (entry.build)();
            assert_eq!(built.name(), entry.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let lineup = baseline_lineup();
        let mut names: Vec<_> = lineup.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), lineup.len());
    }

    #[test]
    fn storage_fits_the_nominal_budget() {
        for entry in baseline_lineup() {
            let built = (entry.build)();
            assert!(
                built.storage_bits() <= entry.nominal_budget_bits,
                "{}: {} bits exceeds budget {}",
                entry.name,
                built.storage_bits(),
                entry.nominal_budget_bits
            );
        }
    }

    #[test]
    fn lookup_by_name_round_trips() {
        for entry in baseline_lineup() {
            assert_eq!(lineup_entry(entry.name).map(|e| e.name), Some(entry.name));
        }
        assert!(lineup_entry("no-such-predictor").is_none());
    }
}
