//! Global two-level adaptive predictor (Yeh & Patt / GAg-style).
//!
//! Section II-A of the paper notes that a long-history TAGE table
//! degenerates to a global 2-level predictor needing `O(2^n)` entries;
//! this implementation makes that comparison concrete in experiments.

use crate::counters::SaturatingCounter;
use crate::predictor::Predictor;
use branchnet_trace::{BranchRecord, GlobalHistory};

/// GAg two-level predictor: a pattern-history table of 2-bit counters
/// indexed directly by the newest `history_bits` of global history
/// (optionally XOR-mixed with the PC when `mix_pc` is set).
#[derive(Debug, Clone)]
pub struct TwoLevel {
    pht: Vec<SaturatingCounter>,
    history: GlobalHistory,
    history_bits: usize,
    mix_pc: bool,
    mask: u64,
}

impl TwoLevel {
    /// Creates a two-level predictor with a `2^history_bits`-entry PHT.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is not in `1..=26`.
    #[must_use]
    pub fn new(history_bits: usize, mix_pc: bool) -> Self {
        assert!((1..=26).contains(&history_bits), "PHT of 2^{history_bits} entries is impractical");
        let size = 1usize << history_bits;
        Self {
            pht: vec![SaturatingCounter::new(2); size],
            history: GlobalHistory::new(history_bits),
            history_bits,
            mix_pc,
            mask: (size - 1) as u64,
        }
    }

    fn index(&self, pc: u64) -> usize {
        let h = self.history.low_bits(self.history_bits);
        let v = if self.mix_pc { h ^ (pc >> 2) } else { h };
        (v & self.mask) as usize
    }
}

impl Predictor for TwoLevel {
    fn predict(&mut self, pc: u64) -> bool {
        self.pht[self.index(pc)].is_taken()
    }

    fn update(&mut self, record: &BranchRecord, _predicted: bool) {
        let idx = self.index(record.pc);
        self.pht[idx].update(record.taken);
        self.history.push(record.taken);
    }

    fn flush(&mut self) {
        *self = Self::new(self.history_bits, self.mix_pc);
    }

    fn name(&self) -> &'static str {
        "two-level"
    }

    fn storage_bits(&self) -> u64 {
        self.pht.len() as u64 * 2 + self.history_bits as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchnet_trace::{run_one as evaluate, Trace};

    #[test]
    fn perfect_on_deterministic_pattern() {
        // Period-6 pattern fits easily into 8 bits of history.
        let pattern = [true, true, false, true, false, false];
        let trace: Trace =
            (0..600).map(|i| BranchRecord::conditional(0x40, pattern[i % 6])).collect();
        let stats = evaluate(&mut TwoLevel::new(8, false), &trace);
        assert!(stats.accuracy() > 0.97, "accuracy {}", stats.accuracy());
    }

    #[test]
    fn noisy_history_defeats_small_pht() {
        // A correlated branch 12 positions back with 12 noisy branches in
        // between needs 2^13 PHT entries; an 6-bit-history PHT aliases.
        let mut seed = 0x12345u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let mut trace = Trace::new();
        let mut pending = std::collections::VecDeque::new();
        for _ in 0..4000 {
            let key = rng() % 2 == 0;
            trace.push(BranchRecord::conditional(0x100, key));
            pending.push_back(key);
            for n in 0..6 {
                trace.push(BranchRecord::conditional(0x200 + n * 8, rng() % 2 == 0));
            }
            if pending.len() > 1 {
                let correlated = pending.pop_front().unwrap();
                trace.push(BranchRecord::conditional(0x900, correlated));
            }
        }
        let small = evaluate(&mut TwoLevel::new(6, false), &trace);
        let large = evaluate(&mut TwoLevel::new(16, false), &trace);
        assert!(large.accuracy() > small.accuracy());
    }

    #[test]
    fn storage_grows_exponentially_with_history() {
        assert_eq!(TwoLevel::new(10, false).storage_bits(), 2048 + 10);
        assert_eq!(TwoLevel::new(20, false).storage_bits(), 2 * (1 << 20) + 20);
    }
}
