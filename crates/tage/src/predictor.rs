//! The [`Predictor`] trait and trace-driven evaluation helpers.

use branchnet_trace::{BranchRecord, BranchStats, PredictionStats, Trace};

/// A runtime conditional-branch predictor.
///
/// Predictors are driven in trace order: for every conditional branch,
/// [`predict`](Predictor::predict) is called first, then
/// [`update`](Predictor::update) with the resolved record. Predictors
/// may stash lookup state between the two calls (the usual
/// championship-simulator contract). Non-conditional control flow is
/// reported through [`note_unconditional`](Predictor::note_unconditional)
/// so history registers stay realistic.
pub trait Predictor {
    /// Predicts the direction of the conditional branch at `pc`.
    fn predict(&mut self, pc: u64) -> bool;

    /// Trains on the resolved branch. `predicted` must be the value
    /// this predictor returned from the immediately preceding
    /// [`predict`](Predictor::predict) call for the same branch.
    fn update(&mut self, record: &BranchRecord, predicted: bool);

    /// Observes a non-conditional control-flow instruction (shifts
    /// path/target histories in predictors that keep them).
    fn note_unconditional(&mut self, record: &BranchRecord) {
        let _ = record;
    }

    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Modeled hardware budget in bits (0 when not meaningful, e.g.
    /// for oracle or unlimited predictors).
    fn storage_bits(&self) -> u64 {
        0
    }
}

/// A trivial predictor that always predicts taken. Useful as a floor
/// in tests and as the "static bias" strawman of Section II-B.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysTaken;

impl Predictor for AlwaysTaken {
    fn predict(&mut self, _pc: u64) -> bool {
        true
    }
    fn update(&mut self, _record: &BranchRecord, _predicted: bool) {}
    fn name(&self) -> &'static str {
        "always-taken"
    }
}

/// A profile-derived static-bias predictor: predicts each static
/// branch's majority direction as measured on a profiling trace
/// (Section II-B's "static branch biases" offline technique).
#[derive(Debug, Clone, Default)]
pub struct StaticBias {
    bias: std::collections::HashMap<u64, bool>,
}

impl StaticBias {
    /// Profiles `trace` and records each branch's majority direction.
    #[must_use]
    pub fn from_profile(trace: &Trace) -> Self {
        let mut counts: std::collections::HashMap<u64, (u64, u64)> =
            std::collections::HashMap::new();
        for r in trace.iter().filter(|r| r.kind.is_conditional()) {
            let e = counts.entry(r.pc).or_default();
            if r.taken {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
        Self { bias: counts.into_iter().map(|(pc, (t, n))| (pc, t >= n)).collect() }
    }
}

impl Predictor for StaticBias {
    fn predict(&mut self, pc: u64) -> bool {
        self.bias.get(&pc).copied().unwrap_or(true)
    }
    fn update(&mut self, _record: &BranchRecord, _predicted: bool) {}
    fn name(&self) -> &'static str {
        "static-bias"
    }
}

/// Runs `predictor` over `trace` and returns aggregate statistics.
///
/// ```
/// use branchnet_tage::{evaluate, AlwaysTaken};
/// use branchnet_trace::{BranchRecord, Trace};
///
/// let trace: Trace = (0..10).map(|i| BranchRecord::conditional(4, i % 2 == 0)).collect();
/// let stats = evaluate(&mut AlwaysTaken, &trace);
/// assert!((stats.accuracy() - 0.5).abs() < 1e-9);
/// ```
pub fn evaluate(predictor: &mut dyn Predictor, trace: &Trace) -> PredictionStats {
    let mut stats = PredictionStats::new();
    for record in trace {
        if record.kind.is_conditional() {
            let predicted = predictor.predict(record.pc);
            stats.record(predicted == record.taken, record.inst_gap);
            predictor.update(record, predicted);
        } else {
            stats.record_instructions(1 + u64::from(record.inst_gap));
            predictor.note_unconditional(record);
        }
    }
    stats
}

/// Like [`evaluate`] but also returns per-static-branch statistics,
/// which the offline pipeline uses to rank hard-to-predict branches.
pub fn evaluate_per_branch(predictor: &mut dyn Predictor, trace: &Trace) -> BranchStats {
    let mut stats = BranchStats::new();
    for record in trace {
        if record.kind.is_conditional() {
            let predicted = predictor.predict(record.pc);
            stats.record(record.pc, predicted == record.taken, record.inst_gap);
            predictor.update(record, predicted);
        } else {
            predictor.note_unconditional(record);
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchnet_trace::BranchKind;

    fn alternating(n: usize) -> Trace {
        (0..n).map(|i| BranchRecord::conditional(0x10, i % 2 == 0)).collect()
    }

    #[test]
    fn always_taken_gets_half_of_alternating() {
        let stats = evaluate(&mut AlwaysTaken, &alternating(100));
        assert!((stats.accuracy() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn static_bias_learns_majority_direction() {
        let mut t = Trace::new();
        for i in 0..100 {
            t.push(BranchRecord::conditional(0x10, i % 10 != 0)); // 90% taken
            t.push(BranchRecord::conditional(0x20, i % 10 == 0)); // 10% taken
        }
        let mut sb = StaticBias::from_profile(&t);
        assert!(sb.predict(0x10));
        assert!(!sb.predict(0x20));
        assert!(sb.predict(0x999), "unseen branches default to taken");
        let stats = evaluate(&mut StaticBias::from_profile(&t), &t);
        assert!((stats.accuracy() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn evaluate_counts_unconditional_instructions() {
        let mut t = Trace::new();
        t.push(BranchRecord::conditional(0x10, true));
        t.push(BranchRecord::unconditional(0x20, 0x80, BranchKind::Jump));
        let stats = evaluate(&mut AlwaysTaken, &t);
        assert!((stats.predictions() - 1.0).abs() < f64::EPSILON);
        assert!((stats.instructions() - 10.0).abs() < f64::EPSILON);
    }

    #[test]
    fn evaluate_per_branch_separates_pcs() {
        let mut t = Trace::new();
        for i in 0..10 {
            t.push(BranchRecord::conditional(0x10, true));
            t.push(BranchRecord::conditional(0x20, i % 2 == 0));
        }
        let bs = evaluate_per_branch(&mut AlwaysTaken, &t);
        assert!((bs.get(0x10).unwrap().accuracy() - 1.0).abs() < 1e-9);
        assert!((bs.get(0x20).unwrap().accuracy() - 0.5).abs() < 1e-9);
    }
}
