//! Re-exports of the shared prediction layer plus deprecated
//! evaluation shims.
//!
//! The [`Predictor`] trait and the trace-driven evaluation loop now
//! live in `branchnet-trace` (see `branchnet_trace::predict` and
//! `branchnet_trace::gauntlet`), where every crate — runtime
//! baselines, CNN hybrids, the timing model — can implement and
//! consume them. This module keeps the historical `branchnet_tage`
//! paths alive: the trait re-export is permanent; the free-function
//! evaluators are deprecated shims over the single-lane gauntlet.

pub use branchnet_trace::{AlwaysTaken, Predictor, StaticBias};

use branchnet_trace::{BranchStats, PredictionStats, Trace};

/// Runs `predictor` over `trace` and returns aggregate statistics.
///
/// Deprecated: call [`branchnet_trace::run_one`] directly instead —
/// it is the same single-lane loop without the extra crate hop.
///
/// ```
/// use branchnet_trace::{run_one, AlwaysTaken, BranchRecord, Trace};
///
/// let trace: Trace = (0..8).map(|_| BranchRecord::conditional(0x10, true)).collect();
/// let stats = run_one(&mut AlwaysTaken, &trace);
/// assert_eq!(stats.mispredictions(), 0.0);
/// ```
#[deprecated(note = "use branchnet_trace::run_one, or a branchnet_trace::Gauntlet \
                     to evaluate several predictors in one pass")]
pub fn evaluate(predictor: &mut dyn Predictor, trace: &Trace) -> PredictionStats {
    branchnet_trace::run_one(predictor, trace)
}

/// Like [`evaluate`] but also returns per-static-branch statistics.
///
/// Deprecated: call [`branchnet_trace::run_one_per_branch`] directly
/// instead, or add the predictor as a tracked `Gauntlet` lane.
///
/// ```
/// use branchnet_trace::{run_one_per_branch, AlwaysTaken, BranchRecord, Trace};
///
/// let trace: Trace = (0..8).map(|i| BranchRecord::conditional(0x10, i % 2 == 0)).collect();
/// let per_branch = run_one_per_branch(&mut AlwaysTaken, &trace);
/// assert_eq!(per_branch.get(0x10).unwrap().mispredictions(), 4.0);
/// ```
#[deprecated(note = "use branchnet_trace::run_one_per_branch, or a tracked \
                     branchnet_trace::Gauntlet lane")]
pub fn evaluate_per_branch(predictor: &mut dyn Predictor, trace: &Trace) -> BranchStats {
    branchnet_trace::run_one_per_branch(predictor, trace)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use branchnet_trace::{run_one, run_one_per_branch, BranchRecord};

    fn alternating(n: usize) -> Trace {
        (0..n).map(|i| BranchRecord::conditional(0x10, i % 2 == 0)).collect()
    }

    #[test]
    fn evaluate_shim_matches_gauntlet() {
        let trace = alternating(100);
        let shim = evaluate(&mut AlwaysTaken, &trace);
        let direct = run_one(&mut AlwaysTaken, &trace);
        assert_eq!(shim, direct);
        assert!((shim.accuracy() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn evaluate_per_branch_shim_matches_gauntlet() {
        let mut t = Trace::new();
        for i in 0..10 {
            t.push(BranchRecord::conditional(0x10, true));
            t.push(BranchRecord::conditional(0x20, i % 2 == 0));
        }
        let shim = evaluate_per_branch(&mut AlwaysTaken, &t);
        let direct = run_one_per_branch(&mut AlwaysTaken, &t);
        assert_eq!(shim.get(0x10), direct.get(0x10));
        assert_eq!(shim.get(0x20), direct.get(0x20));
        assert!((shim.get(0x20).unwrap().accuracy() - 0.5).abs() < 1e-9);
    }
}
