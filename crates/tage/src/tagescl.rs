//! TAGE-SC-L: the composed state-of-the-art runtime predictor
//! (Seznec, CBP2016 winner) used as the paper's baseline, plus the
//! MTAGE-SC-style unlimited configuration for headroom studies.

use crate::loop_pred::LoopPredictor;
use crate::predictor::Predictor;
use crate::sc::{ScConfig, StatisticalCorrector};
use crate::tage::{Tage, TageConfig, TagePrediction};
use branchnet_trace::BranchRecord;
use serde::{Deserialize, Serialize};

/// Full TAGE-SC-L configuration: TAGE geometry, SC sizing, loop
/// predictor, and the ablation toggles used by Fig. 9 / Fig. 11.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TageSclConfig {
    /// TAGE component geometry.
    pub tage: TageConfig,
    /// Statistical-corrector sizing.
    pub sc: ScConfig,
    /// Enable the statistical corrector at all.
    pub enable_sc: bool,
    /// Enable the loop predictor.
    pub enable_loop: bool,
    /// log2 entries of the loop predictor table.
    pub loop_log_size: u32,
    /// Display name for reports.
    pub name: &'static str,
}

impl TageSclConfig {
    /// The paper's practical baseline: 64 KB TAGE-SC-L. Following the
    /// paper's Fig. 11 methodology, local SC components stay enabled
    /// only in the MTAGE configs; here the SC keeps its local component
    /// (the Fig. 9 baseline) — use [`Self::without_sc_local`] for the
    /// Fig. 11 variant.
    #[must_use]
    pub fn tage_sc_l_64kb() -> Self {
        Self {
            tage: TageConfig::budget_64kb(),
            sc: ScConfig::budget_8kb(),
            enable_sc: true,
            enable_loop: true,
            loop_log_size: 6,
            name: "tage-sc-l-64kb",
        }
    }

    /// The 56 KB baseline paired with 8 KB of Mini-BranchNet in the
    /// iso-storage setting of Fig. 11.
    #[must_use]
    pub fn tage_sc_l_56kb() -> Self {
        Self {
            tage: TageConfig::budget_56kb(),
            sc: ScConfig::budget_8kb(),
            enable_sc: true,
            enable_loop: true,
            loop_log_size: 6,
            name: "tage-sc-l-56kb",
        }
    }

    /// MTAGE-SC stand-in: a very large TAGE + large SC, approximating
    /// the unlimited-storage CBP2016 winner used in Fig. 9.
    #[must_use]
    pub fn mtage_sc_unlimited() -> Self {
        Self {
            tage: TageConfig::unlimited(),
            sc: ScConfig::unlimited(),
            enable_sc: true,
            enable_loop: true,
            loop_log_size: 10,
            name: "mtage-sc",
        }
    }

    /// Returns this config with the SC's local-history component
    /// disabled (Fig. 11: "We disable the local history components of
    /// the Statistical Corrector").
    #[must_use]
    pub fn without_sc_local(mut self) -> Self {
        self.sc.enable_local = false;
        self
    }

    /// Returns this config with the whole statistical corrector
    /// disabled (Fig. 9 ablation).
    #[must_use]
    pub fn without_sc(mut self) -> Self {
        self.enable_sc = false;
        self
    }

    /// Returns this config with the loop predictor disabled.
    #[must_use]
    pub fn without_loop(mut self) -> Self {
        self.enable_loop = false;
        self
    }

    /// Returns this config reduced to the global-history TAGE alone
    /// (the "GTAGE" bar of Fig. 9).
    #[must_use]
    pub fn gtage_only(mut self) -> Self {
        self.enable_sc = false;
        self.enable_loop = false;
        self.name = "gtage";
        self
    }
}

/// Composed TAGE-SC-L predictor.
#[derive(Debug, Clone)]
pub struct TageScL {
    config: TageSclConfig,
    tage: Tage,
    sc: StatisticalCorrector,
    loop_pred: LoopPredictor,
    last: Option<LookupState>,
    stats: ComponentStats,
}

#[derive(Debug, Clone)]
struct LookupState {
    pc: u64,
    tage_pred: TagePrediction,
    final_taken: bool,
    loop_used: bool,
}

/// Per-component usage counters, useful for diagnosing which component
/// provides predictions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComponentStats {
    /// Predictions taken from the loop predictor.
    pub loop_overrides: u64,
    /// Predictions where the SC reverted TAGE.
    pub sc_reverts: u64,
    /// Total predictions.
    pub predictions: u64,
}

impl TageScL {
    /// Builds a TAGE-SC-L from `config`.
    #[must_use]
    pub fn new(config: &TageSclConfig) -> Self {
        Self {
            tage: Tage::new(&config.tage),
            sc: StatisticalCorrector::new(&config.sc),
            loop_pred: LoopPredictor::new(config.loop_log_size),
            last: None,
            stats: ComponentStats::default(),
            config: config.clone(),
        }
    }

    /// The configuration this predictor was built from.
    #[must_use]
    pub fn config(&self) -> &TageSclConfig {
        &self.config
    }

    /// Component-usage counters accumulated so far.
    #[must_use]
    pub fn component_stats(&self) -> ComponentStats {
        self.stats
    }

    fn lookup(&mut self, pc: u64) -> LookupState {
        let tage_pred = self.tage.lookup(pc);
        let mut taken = tage_pred.taken;
        let mut loop_used = false;
        if self.config.enable_loop {
            let lp = self.loop_pred.lookup(pc);
            if lp.hit && lp.confident {
                taken = lp.taken;
                loop_used = true;
            }
        }
        if self.config.enable_sc && !loop_used {
            let d = self.sc.decide(pc, &tage_pred, self.tage.global_history());
            taken = d.taken;
        }
        LookupState { pc, tage_pred, final_taken: taken, loop_used }
    }
}

impl Predictor for TageScL {
    fn predict(&mut self, pc: u64) -> bool {
        let state = self.lookup(pc);
        let taken = state.final_taken;
        self.last = Some(state);
        taken
    }

    fn update(&mut self, record: &BranchRecord, _predicted: bool) {
        let state = match self.last.take() {
            Some(s) if s.pc == record.pc => s,
            _ => self.lookup(record.pc),
        };
        self.stats.predictions += 1;
        if state.loop_used {
            self.stats.loop_overrides += 1;
        }
        if self.config.enable_sc {
            let d = self.sc.decide(record.pc, &state.tage_pred, self.tage.global_history());
            if d.reverted {
                self.stats.sc_reverts += 1;
            }
            self.sc.train(record, &state.tage_pred, &d, self.tage.global_history());
        }
        if self.config.enable_loop {
            let tage_mispredicted = state.tage_pred.taken != record.taken;
            self.loop_pred.train(record.pc, record.taken, tage_mispredicted);
        }
        // TAGE trains last: `train` shifts the histories that the SC
        // indices above depend on.
        self.tage.train(record, &state.tage_pred);
    }

    fn note_unconditional(&mut self, record: &BranchRecord) {
        self.tage.note_control_flow(record);
    }

    fn flush(&mut self) {
        let config = self.config.clone();
        *self = Self::new(&config);
    }

    fn name(&self) -> &'static str {
        self.config.name
    }

    fn storage_bits(&self) -> u64 {
        let mut bits = self.tage.storage_bits_internal();
        if self.config.enable_sc {
            bits += self.sc.storage_bits();
        }
        if self.config.enable_loop {
            bits += self.loop_pred.storage_bits();
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchnet_trace::{run_one as evaluate, Trace};

    #[test]
    fn baseline_fits_its_64kb_budget() {
        let p = TageScL::new(&TageSclConfig::tage_sc_l_64kb());
        let bits = p.storage_bits();
        assert!(bits <= 64 * 1024 * 8, "{bits} bits > 64KB");
        assert!(bits >= 48 * 1024 * 8, "{bits} bits suspiciously small for a 64KB config");
    }

    #[test]
    fn fifty_six_kb_variant_is_smaller() {
        let a = TageScL::new(&TageSclConfig::tage_sc_l_64kb()).storage_bits();
        let b = TageScL::new(&TageSclConfig::tage_sc_l_56kb()).storage_bits();
        assert!(b < a);
    }

    #[test]
    fn loop_predictor_perfects_constant_loops() {
        // 37-iteration loop, beyond bimodal/gshare reach, with noise in
        // between to stress TAGE allocation.
        let mut trace = Trace::new();
        let mut seed = 5u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..300 {
            for i in 0..37 {
                let mut r = BranchRecord::conditional(0x4000, i != 36);
                r.target = 0x3F00; // backward loop branch
                trace.push(r);
                trace.push(BranchRecord::conditional(0x5000 + (rng() % 4) * 8, rng() % 2 == 0));
            }
        }
        let mut p = TageScL::new(&TageSclConfig::tage_sc_l_64kb());
        let stats = evaluate(&mut p, &trace);
        let loop_branch_share = 0.5;
        // The loop branch itself should be near-perfect once warm.
        assert!(
            stats.accuracy() > loop_branch_share * 0.99 + 0.5 * 0.45,
            "accuracy {}",
            stats.accuracy()
        );
    }

    #[test]
    fn ablations_reduce_storage_monotonically() {
        let full = TageScL::new(&TageSclConfig::tage_sc_l_64kb()).storage_bits();
        let no_sc = TageScL::new(&TageSclConfig::tage_sc_l_64kb().without_sc()).storage_bits();
        let gtage = TageScL::new(&TageSclConfig::tage_sc_l_64kb().gtage_only()).storage_bits();
        assert!(no_sc < full);
        assert!(gtage <= no_sc);
    }

    #[test]
    fn mtage_is_much_larger_than_64kb() {
        let m = TageScL::new(&TageSclConfig::mtage_sc_unlimited());
        assert!(m.storage_bits() > 10 * 64 * 1024 * 8);
    }

    #[test]
    fn without_sc_local_drops_local_tables() {
        let cfg = TageSclConfig::tage_sc_l_64kb().without_sc_local();
        assert!(!cfg.sc.enable_local);
        let a = TageScL::new(&TageSclConfig::tage_sc_l_64kb()).storage_bits();
        let b = TageScL::new(&cfg).storage_bits();
        assert!(b < a);
    }

    #[test]
    fn predicts_reasonably_on_mixed_workload() {
        // Mixed biased + patterned branches; sanity floor on accuracy.
        let mut trace = Trace::new();
        for i in 0..20_000usize {
            trace.push(BranchRecord::conditional(0x100, i % 2 == 0));
            trace.push(BranchRecord::conditional(0x200, i % 10 != 9));
            trace.push(BranchRecord::conditional(0x300, true));
        }
        let mut p = TageScL::new(&TageSclConfig::tage_sc_l_64kb());
        let stats = evaluate(&mut p, &trace);
        assert!(stats.accuracy() > 0.95, "accuracy {}", stats.accuracy());
    }
}
