//! Runtime (online-trained) branch predictors.
//!
//! This crate reimplements, from scratch, the conventional predictors
//! the BranchNet paper evaluates against:
//!
//! * [`TageScL`] — TAGE + loop predictor + statistical corrector, the
//!   CBP2016 winner used as the paper's practical baseline, with 64 KB
//!   and 56 KB budget presets plus an MTAGE-SC-style "unlimited"
//!   preset ([`TageSclConfig::mtage_sc_unlimited`]) for headroom
//!   studies (Fig. 9), and ablation toggles (no SC / no local / no
//!   loop) used in the paper's Fig. 9 decomposition.
//! * [`Tage`] — the parametric tagged-geometric-history core.
//! * Simpler classics used as light-weight predictors or comparison
//!   points: [`Bimodal`], [`Gshare`], [`TwoLevel`], [`Perceptron`],
//!   [`HashedPerceptron`], [`LocalPerceptron`] (Jiménez & Lin's
//!   per-branch-history original), [`LoopOnly`] (the loop component
//!   standing alone), and [`OGehl`] (Seznec's geometric-history
//!   adder-tree design).
//!
//! The canonical experiment ladder over all of these is
//! [`baseline_lineup`].
//!
//! All predictors implement the shared
//! [`branchnet_trace::Predictor`] trait and are evaluated with the
//! [`branchnet_trace::Gauntlet`] (single- or multi-lane, one trace
//! pass either way).
//!
//! # Example
//!
//! ```
//! use branchnet_tage::{Gshare, Predictor, TageScL, TageSclConfig};
//! use branchnet_trace::{BranchRecord, Gauntlet, Trace};
//!
//! // A loop branch: taken 9 times, then not taken, repeatedly.
//! let trace: Trace =
//!     (0..2000).map(|i| BranchRecord::conditional(0x40, i % 10 != 9)).collect();
//! // Both predictors share one pass over the trace.
//! let mut gauntlet = Gauntlet::new();
//! let tage = gauntlet.add(TageScL::new(&TageSclConfig::tage_sc_l_64kb()));
//! let gshare = gauntlet.add(Gshare::new(12, 12));
//! gauntlet.run(&trace);
//! assert!(gauntlet.stats(tage).accuracy() > 0.95);
//! assert!(gauntlet.stats(gshare).accuracy() > 0.9);
//! ```

pub mod bimodal;
pub mod counters;
pub mod gshare;
pub mod lineup;
pub mod local_perceptron;
pub mod loop_only;
pub mod loop_pred;
pub mod ogehl;
pub mod perceptron;
pub mod predictor;
pub mod sc;
pub mod tage;
pub mod tagescl;
pub mod twolevel;

pub use bimodal::Bimodal;
pub use counters::{SaturatingCounter, UnsignedCounter};
pub use gshare::Gshare;
pub use lineup::{baseline_lineup, lineup_entry, HistoryKind, LineupEntry};
pub use local_perceptron::LocalPerceptron;
pub use loop_only::LoopOnly;
pub use loop_pred::LoopPredictor;
pub use ogehl::OGehl;
pub use perceptron::{HashedPerceptron, Perceptron};
#[allow(deprecated)]
pub use predictor::{evaluate, evaluate_per_branch};
pub use predictor::{AlwaysTaken, Predictor, StaticBias};
pub use sc::{ScConfig, StatisticalCorrector};
pub use tage::{Tage, TageConfig};
pub use tagescl::{TageScL, TageSclConfig};
pub use twolevel::TwoLevel;
