//! The loop predictor component of TAGE-SC-L: recognizes branches with
//! a constant iteration count and predicts their exit exactly.

use serde::{Deserialize, Serialize};

/// One loop-table entry tracking a candidate loop branch.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct LoopEntry {
    tag: u16,
    /// Trip count observed on the last two consistent executions.
    past_iter: u16,
    /// Iterations seen in the current execution of the loop.
    current_iter: u16,
    /// Confidence that `past_iter` is stable.
    confidence: u8,
    /// Replacement age.
    age: u8,
    /// Body direction of the loop branch (almost always taken).
    dir: bool,
    valid: bool,
}

/// Direct-mapped loop predictor with `2^log_size` entries.
///
/// Predicts `dir` for `past_iter` consecutive executions and `!dir` on
/// the trip-count boundary, once confidence saturates.
#[derive(Debug, Clone)]
pub struct LoopPredictor {
    entries: Vec<LoopEntry>,
    mask: u64,
    confidence_max: u8,
    iter_max: u16,
}

/// A loop predictor's opinion about a branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopPrediction {
    /// The predicted direction.
    pub taken: bool,
    /// Whether the entry is confident enough to override TAGE.
    pub confident: bool,
    /// Whether any valid entry matched at all.
    pub hit: bool,
}

impl LoopPredictor {
    /// Creates a loop predictor with `2^log_size` entries.
    ///
    /// # Panics
    ///
    /// Panics if `log_size` is not in `1..=16`.
    #[must_use]
    pub fn new(log_size: u32) -> Self {
        assert!((1..=16).contains(&log_size));
        Self {
            entries: vec![LoopEntry::default(); 1 << log_size],
            mask: ((1u64 << log_size) - 1),
            confidence_max: 3,
            iter_max: u16::MAX - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    fn tag(&self, pc: u64) -> u16 {
        (((pc >> 2) ^ (pc >> 12)) & 0x3FF) as u16
    }

    /// Looks up the loop opinion for `pc`.
    #[must_use]
    pub fn lookup(&self, pc: u64) -> LoopPrediction {
        let e = &self.entries[self.index(pc)];
        if !e.valid || e.tag != self.tag(pc) {
            return LoopPrediction { taken: false, confident: false, hit: false };
        }
        let exiting = e.current_iter + 1 >= e.past_iter && e.past_iter > 0;
        LoopPrediction {
            taken: if exiting { !e.dir } else { e.dir },
            confident: e.confidence >= self.confidence_max,
            hit: true,
        }
    }

    /// Trains on a resolved branch. `tage_mispredicted` gates
    /// allocation: only branches the main predictor struggles with get
    /// loop entries (as in CBP TAGE-SC-L).
    pub fn train(&mut self, pc: u64, taken: bool, tage_mispredicted: bool) {
        let tag = self.tag(pc);
        let idx = self.index(pc);
        let confidence_max = self.confidence_max;
        let iter_max = self.iter_max;
        let e = &mut self.entries[idx];
        if e.valid && e.tag == tag {
            if taken == e.dir {
                // Still inside the loop body.
                if e.current_iter < iter_max {
                    e.current_iter += 1;
                } else {
                    // Overflow: abandon the entry.
                    *e = LoopEntry::default();
                }
            } else {
                // Loop exit observed.
                let trip = e.current_iter + 1;
                if trip == e.past_iter {
                    if e.confidence < confidence_max {
                        e.confidence += 1;
                    }
                    e.age = e.age.saturating_add(1);
                } else {
                    if e.past_iter != 0 {
                        e.confidence = 0;
                    }
                    e.past_iter = trip;
                }
                e.current_iter = 0;
            }
        } else if tage_mispredicted {
            // Allocate with simple age-based replacement.
            if !e.valid || e.age == 0 {
                // Allocation is triggered by a misprediction, which for
                // a loop branch happens at the *exit*: the loop-body
                // direction is therefore the opposite of `taken`.
                *e = LoopEntry {
                    tag,
                    past_iter: 0,
                    current_iter: 0,
                    confidence: 0,
                    age: 16,
                    dir: !taken,
                    valid: true,
                };
            } else {
                e.age -= 1;
            }
        }
    }

    /// Modeled storage in bits: tag(10) + past(16) + current(16) +
    /// confidence(2) + age(8) + dir(1) + valid(1) per entry.
    #[must_use]
    pub fn storage_bits(&self) -> u64 {
        self.entries.len() as u64 * (10 + 16 + 16 + 2 + 8 + 1 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a fixed-trip-count loop and returns accuracy once warm.
    fn run_loop(trip: usize, rounds: usize) -> f64 {
        let mut lp = LoopPredictor::new(6);
        let pc = 0x1040;
        let mut correct = 0usize;
        let mut total = 0usize;
        for round in 0..rounds {
            for i in 0..trip {
                let taken = i + 1 < trip; // body taken, exit not-taken
                let pred = lp.lookup(pc);
                if round >= 8 {
                    total += 1;
                    let guess = if pred.confident { pred.taken } else { true };
                    if guess == taken {
                        correct += 1;
                    }
                }
                // Pretend TAGE mispredicts exits so allocation happens.
                lp.train(pc, taken, !taken);
            }
        }
        correct as f64 / total.max(1) as f64
    }

    #[test]
    fn perfectly_predicts_constant_trip_count() {
        let acc = run_loop(10, 50);
        assert!(acc > 0.999, "accuracy {acc}");
    }

    #[test]
    fn long_loops_also_work() {
        let acc = run_loop(100, 20);
        assert!(acc > 0.999, "accuracy {acc}");
    }

    #[test]
    fn varying_trip_count_never_reaches_confidence() {
        let mut lp = LoopPredictor::new(6);
        let pc = 0x2080;
        for round in 0..40 {
            let trip = 5 + (round % 3); // 5,6,7,5,6,7...
            for i in 0..trip {
                let taken = i + 1 < trip;
                lp.train(pc, taken, !taken);
            }
        }
        assert!(!lp.lookup(pc).confident);
    }

    #[test]
    fn no_allocation_without_misprediction() {
        let mut lp = LoopPredictor::new(6);
        lp.train(0x30, true, false);
        assert!(!lp.lookup(0x30).hit);
    }

    #[test]
    fn storage_is_small() {
        // TAGE-SC-L's loop predictor is on the order of 1-2 KB.
        assert!(LoopPredictor::new(6).storage_bits() <= 2 * 1024 * 8);
    }
}
