//! Saturating counters — the storage primitive of table-based
//! predictors.

use serde::{Deserialize, Serialize};

/// A signed saturating counter with `bits` of precision, ranging over
/// `[-(2^(bits-1)), 2^(bits-1) - 1]`. Positive (≥ 0) means taken.
///
/// ```
/// use branchnet_tage::counters::SaturatingCounter;
/// let mut c = SaturatingCounter::new(3); // range [-4, 3]
/// for _ in 0..10 { c.increment(); }
/// assert_eq!(c.value(), 3);
/// assert!(c.is_taken());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SaturatingCounter {
    value: i8,
    min: i8,
    max: i8,
}

impl SaturatingCounter {
    /// Creates a counter of `bits` precision initialized to 0 (weakly
    /// taken).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `1..=7`.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!((1..=7).contains(&bits), "counter bits must be in 1..=7");
        let max = (1i8 << (bits - 1)) - 1;
        Self { value: 0, min: -max - 1, max }
    }

    /// Creates a counter seeded from an initial direction: weakly taken
    /// (0) or weakly not-taken (-1).
    #[must_use]
    pub fn with_direction(bits: u32, taken: bool) -> Self {
        let mut c = Self::new(bits);
        c.value = if taken { 0 } else { -1 };
        c
    }

    /// Saturating increment.
    pub fn increment(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Saturating decrement.
    pub fn decrement(&mut self) {
        if self.value > self.min {
            self.value -= 1;
        }
    }

    /// Moves toward taken (`true`) or not-taken (`false`).
    pub fn update(&mut self, taken: bool) {
        if taken {
            self.increment();
        } else {
            self.decrement();
        }
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> i8 {
        self.value
    }

    /// Predicted direction: taken when the counter is non-negative.
    #[must_use]
    pub fn is_taken(&self) -> bool {
        self.value >= 0
    }

    /// Whether the counter sits at one of its weak values (0 or -1) —
    /// TAGE's "newly allocated / not confident" test.
    #[must_use]
    pub fn is_weak(&self) -> bool {
        self.value == 0 || self.value == -1
    }

    /// Distance from the weak boundary; larger means more confident.
    #[must_use]
    pub fn confidence(&self) -> i8 {
        if self.value >= 0 {
            self.value
        } else {
            -self.value - 1
        }
    }

    /// Lower bound of the range.
    #[must_use]
    pub fn min(&self) -> i8 {
        self.min
    }

    /// Upper bound of the range.
    #[must_use]
    pub fn max(&self) -> i8 {
        self.max
    }

    /// Resets to the weak value for `taken`.
    pub fn reset(&mut self, taken: bool) {
        self.value = if taken { 0 } else { -1 };
    }
}

/// An unsigned saturating counter (e.g. TAGE "useful" bits, loop
/// confidence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct UnsignedCounter {
    value: u8,
    max: u8,
}

impl UnsignedCounter {
    /// Creates a zeroed counter of `bits` precision.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `1..=8`.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!((1..=8).contains(&bits), "counter bits must be in 1..=8");
        Self { value: 0, max: ((1u16 << bits) - 1) as u8 }
    }

    /// Saturating increment.
    pub fn increment(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Saturating decrement.
    pub fn decrement(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> u8 {
        self.value
    }

    /// Whether the counter is at zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.value == 0
    }

    /// Whether the counter is saturated at its maximum.
    #[must_use]
    pub fn is_max(&self) -> bool {
        self.value == self.max
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Halves the value (TAGE's useful-bit aging).
    pub fn age(&mut self) {
        self.value >>= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_counter_saturates_both_ends() {
        let mut c = SaturatingCounter::new(3);
        for _ in 0..20 {
            c.increment();
        }
        assert_eq!(c.value(), 3);
        for _ in 0..20 {
            c.decrement();
        }
        assert_eq!(c.value(), -4);
    }

    #[test]
    fn signed_counter_direction_and_weakness() {
        let mut c = SaturatingCounter::new(2); // range [-2, 1]
        assert!(c.is_taken());
        assert!(c.is_weak());
        c.update(false);
        assert!(!c.is_taken());
        assert!(c.is_weak());
        c.update(false);
        assert!(!c.is_weak());
        assert_eq!(c.confidence(), 1);
    }

    #[test]
    fn with_direction_seeds_weak_values() {
        assert_eq!(SaturatingCounter::with_direction(3, true).value(), 0);
        assert_eq!(SaturatingCounter::with_direction(3, false).value(), -1);
    }

    #[test]
    #[should_panic(expected = "counter bits")]
    fn signed_counter_rejects_zero_bits() {
        let _ = SaturatingCounter::new(0);
    }

    #[test]
    fn unsigned_counter_saturates_and_ages() {
        let mut u = UnsignedCounter::new(2);
        for _ in 0..10 {
            u.increment();
        }
        assert_eq!(u.value(), 3);
        assert!(u.is_max());
        u.age();
        assert_eq!(u.value(), 1);
        u.decrement();
        u.decrement();
        assert!(u.is_zero());
    }

    #[test]
    fn unsigned_counter_never_underflows() {
        let mut u = UnsignedCounter::new(4);
        u.decrement();
        assert_eq!(u.value(), 0);
    }
}
