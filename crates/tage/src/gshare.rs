//! gshare: global-history-XOR-PC indexed counters (McFarling).
//!
//! Used in this workspace both as a comparison point and as the
//! single-cycle *early* predictor of the two-tier frontend the paper
//! simulates (Section VI-A: "a 4KB gshare predictor as the single-cycle
//! lightweight predictor").

use crate::counters::SaturatingCounter;
use crate::predictor::Predictor;
use branchnet_trace::{BranchRecord, GlobalHistory};

/// gshare predictor with `2^log_size` 2-bit counters and
/// `history_bits` of global history.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<SaturatingCounter>,
    history: GlobalHistory,
    history_bits: usize,
    mask: u64,
}

impl Gshare {
    /// Creates a gshare with `2^log_size` counters XOR-indexed with
    /// `history_bits` bits of global history.
    ///
    /// # Panics
    ///
    /// Panics if `log_size` is not in `1..=30` or `history_bits > 64`.
    #[must_use]
    pub fn new(log_size: u32, history_bits: usize) -> Self {
        assert!((1..=30).contains(&log_size));
        assert!(history_bits <= 64);
        let size = 1usize << log_size;
        Self {
            table: vec![SaturatingCounter::new(2); size],
            history: GlobalHistory::new(history_bits.max(1)),
            history_bits,
            mask: (size - 1) as u64,
        }
    }

    fn index(&self, pc: u64) -> usize {
        let h = self.history.low_bits(self.history_bits);
        (((pc >> 2) ^ h) & self.mask) as usize
    }
}

impl Predictor for Gshare {
    fn predict(&mut self, pc: u64) -> bool {
        self.table[self.index(pc)].is_taken()
    }

    fn update(&mut self, record: &BranchRecord, _predicted: bool) {
        let idx = self.index(record.pc);
        self.table[idx].update(record.taken);
        self.history.push(record.taken);
    }

    fn flush(&mut self) {
        *self = Self::new(self.table.len().trailing_zeros(), self.history_bits);
    }

    fn name(&self) -> &'static str {
        "gshare"
    }

    fn storage_bits(&self) -> u64 {
        self.table.len() as u64 * 2 + self.history_bits as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bimodal::Bimodal;
    use branchnet_trace::{run_one as evaluate, Trace};

    /// gshare learns short-period patterns that bimodal cannot.
    #[test]
    fn beats_bimodal_on_alternating_branch() {
        let trace: Trace = (0..400).map(|i| BranchRecord::conditional(0x40, i % 2 == 0)).collect();
        let gshare = evaluate(&mut Gshare::new(12, 8), &trace);
        let bimodal = evaluate(&mut Bimodal::new(12, 2), &trace);
        assert!(gshare.accuracy() > 0.95);
        assert!(bimodal.accuracy() < 0.7);
    }

    #[test]
    fn learns_short_loop_exits() {
        let trace: Trace = (0..1000).map(|i| BranchRecord::conditional(0x40, i % 5 != 4)).collect();
        let stats = evaluate(&mut Gshare::new(12, 10), &trace);
        assert!(stats.accuracy() > 0.95, "accuracy {}", stats.accuracy());
    }

    #[test]
    fn four_kb_budget_config() {
        // The paper's early predictor: 4 KB => 2^14 two-bit counters.
        let g = Gshare::new(14, 12);
        assert!(g.storage_bits() <= 4 * 1024 * 8 + 64);
    }
}
