//! The statistical corrector (SC) of TAGE-SC-L.
//!
//! The SC is a GEHL-style adder tree: several tables of small signed
//! counters, indexed by hashes of the PC with different information
//! sources (global history prefixes, per-PC local histories, and the
//! IMLI counter). Their sum, seeded with the TAGE prediction and its
//! confidence, *statistically corrects* TAGE on branches that are
//! biased in ways TAGE's tagged matching cannot see. The paper ablates
//! the SC's global/local components in Fig. 9, which is why every
//! component here is individually toggleable.

use crate::counters::SaturatingCounter;
use crate::tage::TagePrediction;
use branchnet_trace::{BranchRecord, GlobalHistory};
use serde::{Deserialize, Serialize};

/// Statistical-corrector sizing and component toggles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScConfig {
    /// log2 entries of every counter table.
    pub log_table: u32,
    /// Counter precision in bits (6 in CBP configs).
    pub counter_bits: u32,
    /// Global-history prefix lengths (one GEHL table each).
    pub global_lengths: Vec<usize>,
    /// Enable the per-PC local-history component. Fig. 11 disables it:
    /// "realistic processors avoid maintaining speculative local
    /// histories".
    pub enable_local: bool,
    /// Bits of local history kept per tracked PC.
    pub local_bits: usize,
    /// log2 rows of the local-history table.
    pub log_local_rows: u32,
    /// Enable the IMLI (inner-most-loop iteration) component.
    pub enable_imli: bool,
}

impl ScConfig {
    /// SC sizing used inside the 64 KB TAGE-SC-L preset.
    #[must_use]
    pub fn budget_8kb() -> Self {
        Self {
            log_table: 10,
            counter_bits: 6,
            global_lengths: vec![0, 4, 10, 16, 27, 44],
            enable_local: true,
            local_bits: 11,
            log_local_rows: 8,
            enable_imli: true,
        }
    }

    /// A large SC for the MTAGE-SC headroom configuration.
    #[must_use]
    pub fn unlimited() -> Self {
        Self {
            log_table: 14,
            counter_bits: 6,
            global_lengths: vec![0, 4, 8, 12, 18, 27, 40, 60, 90, 130],
            enable_local: true,
            local_bits: 16,
            log_local_rows: 12,
            enable_imli: true,
        }
    }

    fn num_tables(&self) -> usize {
        self.global_lengths.len()
            + if self.enable_local { 2 } else { 0 }
            + usize::from(self.enable_imli)
    }
}

/// The statistical corrector.
#[derive(Debug, Clone)]
pub struct StatisticalCorrector {
    config: ScConfig,
    /// One table per global length, then (optionally) 2 local tables,
    /// then (optionally) the IMLI table.
    tables: Vec<Vec<SaturatingCounter>>,
    local_histories: Vec<u64>,
    imli_count: u32,
    threshold: i32,
    threshold_counter: i32,
}

/// The SC's decision for one branch.
#[derive(Debug, Clone, Copy)]
pub struct ScDecision {
    /// Final direction after statistical correction.
    pub taken: bool,
    /// Whether the SC overrode the TAGE direction.
    pub reverted: bool,
    /// The adder-tree sum (for diagnostics).
    pub sum: i32,
}

impl StatisticalCorrector {
    /// Builds an SC from `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.global_lengths` is empty.
    #[must_use]
    pub fn new(config: &ScConfig) -> Self {
        assert!(!config.global_lengths.is_empty());
        let n = config.num_tables();
        Self {
            tables: vec![
                vec![SaturatingCounter::new(config.counter_bits); 1 << config.log_table];
                n
            ],
            local_histories: vec![0; 1 << config.log_local_rows],
            imli_count: 0,
            threshold: 6,
            threshold_counter: 0,
            config: config.clone(),
        }
    }

    fn mix(pc: u64, salt: u64, data: u64) -> u64 {
        let mut h = (pc >> 2).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ salt.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        h ^= data.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 29;
        h
    }

    fn table_index(&self, table: usize, pc: u64, data: u64) -> usize {
        (Self::mix(pc, table as u64 + 1, data) & ((1 << self.config.log_table) - 1)) as usize
    }

    fn local_row(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << self.config.log_local_rows) - 1)) as usize
    }

    /// Enumerates `(table, index)` pairs participating for this branch.
    fn active_indices(&self, pc: u64, history: &GlobalHistory) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.config.num_tables());
        for (t, &len) in self.config.global_lengths.iter().enumerate() {
            let data = history.low_bits(len.min(64));
            out.push((t, self.table_index(t, pc, data)));
        }
        let mut t = self.config.global_lengths.len();
        if self.config.enable_local {
            let local = self.local_histories[self.local_row(pc)];
            let lmask = (1u64 << self.config.local_bits) - 1;
            out.push((t, self.table_index(t, pc, local & lmask)));
            out.push((
                t + 1,
                self.table_index(t + 1, pc, (local & lmask) >> (self.config.local_bits / 2)),
            ));
            t += 2;
        }
        if self.config.enable_imli {
            out.push((t, self.table_index(t, pc, u64::from(self.imli_count))));
        }
        out
    }

    /// Computes the corrected prediction given TAGE's lookup result.
    #[must_use]
    pub fn decide(&self, pc: u64, tage: &TagePrediction, history: &GlobalHistory) -> ScDecision {
        let mut sum: i32 = 0;
        for (t, idx) in self.active_indices(pc, history) {
            sum += 2 * i32::from(self.tables[t][idx].value()) + 1;
        }
        // Seed with TAGE's direction, weighted by its confidence, so the
        // SC only reverts when the statistical signal is strong.
        let conf_weight = 2 + 2 * i32::from(tage.confidence());
        sum += if tage.taken { conf_weight } else { -conf_weight };
        let sc_taken = sum >= 0;
        if sc_taken == tage.taken || sum.abs() < self.threshold {
            ScDecision { taken: tage.taken, reverted: false, sum }
        } else {
            ScDecision { taken: sc_taken, reverted: true, sum }
        }
    }

    /// Trains the SC on a resolved branch and advances local/IMLI
    /// state.
    pub fn train(
        &mut self,
        record: &BranchRecord,
        tage: &TagePrediction,
        decision: &ScDecision,
        history: &GlobalHistory,
    ) {
        let taken = record.taken;
        // Train counters when the correction was consulted in anger:
        // wrong final answer, or sum within threshold margin.
        if decision.taken != taken || decision.sum.abs() < self.threshold * 4 {
            for (t, idx) in self.active_indices(record.pc, history) {
                self.tables[t][idx].update(taken);
            }
        }
        // Adaptive reverting threshold (Seznec's TC scheme): tighten
        // when reverts hurt, relax when they help.
        if decision.reverted {
            if decision.taken == taken {
                self.threshold_counter -= 1;
                if self.threshold_counter <= -8 {
                    self.threshold = (self.threshold - 1).max(4);
                    self.threshold_counter = 0;
                }
            } else {
                self.threshold_counter += 1;
                if self.threshold_counter >= 8 {
                    self.threshold = (self.threshold + 1).min(120);
                    self.threshold_counter = 0;
                }
            }
        }
        let _ = tage;
        // Local history update.
        if self.config.enable_local {
            let row = self.local_row(record.pc);
            self.local_histories[row] = (self.local_histories[row] << 1) | u64::from(taken);
        }
        // IMLI: count consecutive taken backward branches (loop
        // iterations of the innermost loop).
        if self.config.enable_imli && record.target < record.pc {
            if taken {
                self.imli_count = self.imli_count.saturating_add(1);
            } else {
                self.imli_count = 0;
            }
        }
    }

    /// Modeled storage in bits.
    #[must_use]
    pub fn storage_bits(&self) -> u64 {
        let counters = self.tables.len() as u64
            * (1u64 << self.config.log_table)
            * u64::from(self.config.counter_bits);
        let local = if self.config.enable_local {
            (1u64 << self.config.log_local_rows) * self.config.local_bits as u64
        } else {
            0
        };
        counters + local + 32 + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tage::{Tage, TageConfig};
    use branchnet_trace::Trace;

    fn tiny_tage() -> Tage {
        Tage::new(&TageConfig {
            min_history: 4,
            max_history: 64,
            log_entries: vec![7, 7, 7, 7],
            tag_bits: vec![8, 9, 10, 11],
            counter_bits: 3,
            useful_bits: 2,
            base_log_size: 9,
            reset_period: 1 << 14,
        })
    }

    /// A statistically-biased branch that flips 25% of the time with no
    /// pattern: TAGE alone chases noise; SC should stabilize it.
    #[test]
    fn sc_improves_statistically_biased_branch() {
        let mut seed = 0xDEAD_BEEFu64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed % 100
        };
        let trace: Trace =
            (0..8000).map(|_| BranchRecord::conditional(0x500, rng() < 75)).collect();

        // TAGE alone.
        let mut tage_alone = tiny_tage();
        let mut wrong_alone = 0;
        for r in &trace {
            let p = tage_alone.lookup(r.pc);
            if p.taken != r.taken {
                wrong_alone += 1;
            }
            tage_alone.train(r, &p);
        }

        // TAGE + SC.
        let mut tage = tiny_tage();
        let mut sc = StatisticalCorrector::new(&ScConfig::budget_8kb());
        let mut wrong_sc = 0;
        for r in &trace {
            let p = tage.lookup(r.pc);
            let d = sc.decide(r.pc, &p, tage.global_history());
            if d.taken != r.taken {
                wrong_sc += 1;
            }
            sc.train(r, &p, &d, tage.global_history());
            tage.train(r, &p);
        }
        assert!(
            wrong_sc <= wrong_alone,
            "SC should not hurt a biased-noise branch: {wrong_sc} vs {wrong_alone}"
        );
    }

    #[test]
    fn disabling_components_shrinks_storage() {
        let full = StatisticalCorrector::new(&ScConfig::budget_8kb());
        let mut cfg = ScConfig::budget_8kb();
        cfg.enable_local = false;
        cfg.enable_imli = false;
        let slim = StatisticalCorrector::new(&cfg);
        assert!(slim.storage_bits() < full.storage_bits());
    }

    #[test]
    fn budget_fits_8kb() {
        let sc = StatisticalCorrector::new(&ScConfig::budget_8kb());
        assert!(sc.storage_bits() <= 8 * 1024 * 8, "{} bits", sc.storage_bits());
    }

    #[test]
    fn imli_counts_loop_iterations() {
        let mut sc = StatisticalCorrector::new(&ScConfig::budget_8kb());
        let tage = tiny_tage();
        let mut backward = BranchRecord::conditional(0x1000, true);
        backward.target = 0x800; // backward branch
        let p = tage.lookup(backward.pc);
        let d = sc.decide(backward.pc, &p, tage.global_history());
        for _ in 0..5 {
            sc.train(&backward, &p, &d, tage.global_history());
        }
        assert_eq!(sc.imli_count, 5);
        backward.taken = false;
        sc.train(&backward, &p, &d, tage.global_history());
        assert_eq!(sc.imli_count, 0);
    }
}
