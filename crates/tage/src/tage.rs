//! The parametric TAGE predictor core (Seznec & Michaud).
//!
//! TAGE maintains a base bimodal table plus `N` *tagged* tables, each
//! associated with a geometrically growing global-history length. A
//! prediction comes from the longest-history table whose tag matches
//! (the *provider*); allocation on mispredictions steals entries in
//! longer tables whose *useful* counters are zero. Indices and tags are
//! computed from incrementally folded histories
//! ([`branchnet_trace::FoldedHistory`]), exactly the structure whose
//! exponential-capacity weakness under noisy histories the BranchNet
//! paper targets (Section II-A).

use crate::bimodal::Bimodal;
use crate::counters::{SaturatingCounter, UnsignedCounter};
use crate::predictor::Predictor;
use branchnet_trace::{BranchRecord, FoldedHistory, GlobalHistory, PathHistory};
use serde::{Deserialize, Serialize};

/// Geometry and sizing knobs of a TAGE predictor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TageConfig {
    /// Shortest tagged-table history length.
    pub min_history: usize,
    /// Longest tagged-table history length.
    pub max_history: usize,
    /// Per-table log2 entry counts (also sets the number of tables).
    pub log_entries: Vec<u32>,
    /// Per-table tag widths in bits.
    pub tag_bits: Vec<u32>,
    /// Prediction-counter precision (3 in CBP configs).
    pub counter_bits: u32,
    /// Useful-counter precision (2 in CBP configs).
    pub useful_bits: u32,
    /// log2 entries of the bimodal base table.
    pub base_log_size: u32,
    /// Updates between useful-counter aging events.
    pub reset_period: u64,
}

impl TageConfig {
    /// The tagged-table geometry of a ~64 KB TAGE (the TAGE component
    /// of the paper's TAGE-SC-L baseline).
    #[must_use]
    pub fn budget_64kb() -> Self {
        Self {
            min_history: 8,
            max_history: 2000,
            log_entries: vec![11, 11, 11, 11, 11, 11, 11, 11, 10, 10, 10, 10],
            tag_bits: vec![8, 9, 10, 10, 11, 11, 12, 12, 13, 13, 14, 15],
            counter_bits: 3,
            useful_bits: 2,
            base_log_size: 13,
            reset_period: 1 << 18,
        }
    }

    /// A shrunken geometry for the 56 KB iso-storage baseline; the
    /// paper builds it "by decreasing the number of table entries and
    /// tag bits of TAGE" (footnote 6).
    #[must_use]
    pub fn budget_56kb() -> Self {
        Self {
            log_entries: vec![11, 11, 11, 11, 11, 10, 10, 10, 10, 10, 10, 10],
            tag_bits: vec![7, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 14],
            base_log_size: 13,
            ..Self::budget_64kb()
        }
    }

    /// A very large geometry standing in for the unlimited-storage
    /// MTAGE used in the paper's headroom study (Fig. 9).
    #[must_use]
    pub fn unlimited() -> Self {
        Self {
            min_history: 4,
            max_history: 3000,
            log_entries: vec![17; 18],
            tag_bits: vec![16; 18],
            counter_bits: 3,
            useful_bits: 2,
            base_log_size: 17,
            reset_period: 1 << 20,
        }
    }

    /// The geometric history length of tagged table `i`
    /// (`0 ≤ i < num_tables`), longest last.
    #[must_use]
    pub fn history_length(&self, i: usize) -> usize {
        let n = self.num_tables();
        if n == 1 {
            return self.min_history;
        }
        let ratio = (self.max_history as f64 / self.min_history as f64).powf(1.0 / (n - 1) as f64);
        let len = self.min_history as f64 * ratio.powi(i as i32);
        (len.round() as usize).max(self.min_history + i)
    }

    /// Number of tagged tables.
    #[must_use]
    pub fn num_tables(&self) -> usize {
        self.log_entries.len()
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics when table arrays disagree in length or lengths are
    /// non-geometric (max ≤ min).
    pub fn validate(&self) {
        assert_eq!(self.log_entries.len(), self.tag_bits.len());
        assert!(!self.log_entries.is_empty());
        assert!(self.max_history > self.min_history);
        assert!(self.min_history >= 2);
        assert!((1..=7).contains(&self.counter_bits));
    }
}

/// One tagged-table entry.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct TageEntry {
    tag: u16,
    ctr: SaturatingCounter,
    useful: UnsignedCounter,
}

/// Everything a TAGE lookup produces; passed back to
/// [`Tage::train`] so no hidden state links the two calls.
#[derive(Debug, Clone, Copy)]
pub struct TagePrediction {
    /// Final TAGE direction (after the alt-on-weak policy).
    pub taken: bool,
    /// Direction from the provider component alone.
    pub provider_taken: bool,
    /// Alternate prediction (next-longest match, or base).
    pub alt_taken: bool,
    /// Index of the providing tagged table; `None` = base bimodal.
    pub provider: Option<usize>,
    /// Provider counter value (bimodal ±1 when provider is base).
    pub provider_ctr: i8,
    /// Whether the provider entry was weak (low confidence).
    pub weak: bool,
    /// Per-table indices computed at lookup time.
    indices: [u32; Tage::MAX_TABLES],
    /// Per-table tags computed at lookup time.
    tags: [u16; Tage::MAX_TABLES],
}

impl TagePrediction {
    /// A confidence proxy in `[0, 3]`: the absolute provider counter
    /// distance from its weak boundary, clamped.
    #[must_use]
    pub fn confidence(&self) -> u8 {
        let c = if self.provider_ctr >= 0 { self.provider_ctr } else { -self.provider_ctr - 1 };
        c.clamp(0, 3) as u8
    }
}

/// The TAGE predictor.
#[derive(Debug, Clone)]
pub struct Tage {
    config: TageConfig,
    base: Bimodal,
    tables: Vec<Vec<TageEntry>>,
    hist_lens: Vec<usize>,
    history: GlobalHistory,
    path: PathHistory,
    folded_index: Vec<FoldedHistory>,
    folded_tag: [Vec<FoldedHistory>; 2],
    use_alt_on_weak: SaturatingCounter,
    updates: u64,
    aging_flip: bool,
    lfsr: u32,
}

impl Tage {
    /// Upper bound on tagged tables supported by the fixed-size lookup
    /// scratch in [`TagePrediction`].
    pub const MAX_TABLES: usize = 24;

    /// Builds a TAGE predictor from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`TageConfig::validate`]) or has more than
    /// [`Self::MAX_TABLES`] tables.
    #[must_use]
    pub fn new(config: &TageConfig) -> Self {
        config.validate();
        assert!(config.num_tables() <= Self::MAX_TABLES);
        let n = config.num_tables();
        let hist_lens: Vec<usize> = (0..n).map(|i| config.history_length(i)).collect();
        let tables = (0..n)
            .map(|i| {
                vec![
                    TageEntry {
                        tag: 0,
                        ctr: SaturatingCounter::new(config.counter_bits),
                        useful: UnsignedCounter::new(config.useful_bits),
                    };
                    1 << config.log_entries[i]
                ]
            })
            .collect();
        let folded_index = (0..n)
            .map(|i| FoldedHistory::new(hist_lens[i], config.log_entries[i] as usize))
            .collect();
        let folded_tag = [
            (0..n).map(|i| FoldedHistory::new(hist_lens[i], config.tag_bits[i] as usize)).collect(),
            (0..n)
                .map(|i| FoldedHistory::new(hist_lens[i], (config.tag_bits[i] as usize - 1).max(1)))
                .collect(),
        ];
        Self {
            base: Bimodal::new(config.base_log_size, 2),
            tables,
            hist_lens,
            history: GlobalHistory::new(config.max_history + 1),
            path: PathHistory::new(),
            folded_index,
            folded_tag,
            use_alt_on_weak: SaturatingCounter::new(4),
            updates: 0,
            aging_flip: false,
            lfsr: 0xACE1,
            config: config.clone(),
        }
    }

    /// The configured geometric history lengths, shortest first.
    #[must_use]
    pub fn history_lengths(&self) -> &[usize] {
        &self.hist_lens
    }

    fn index(&self, pc: u64, table: usize) -> u32 {
        let log = self.config.log_entries[table];
        let fold = self.folded_index[table].value();
        let path = self.path.low_bits(log.min(16));
        let v = (pc >> 2) ^ (pc >> (log as u64 + 2)) ^ fold ^ (path << 1) ^ (path >> 2);
        (v & ((1u64 << log) - 1)) as u32
    }

    fn tag(&self, pc: u64, table: usize) -> u16 {
        let bits = self.config.tag_bits[table];
        let v = (pc >> 2)
            ^ self.folded_tag[0][table].value()
            ^ (self.folded_tag[1][table].value() << 1);
        (v & ((1u64 << bits) - 1)) as u16
    }

    fn lfsr_next(&mut self) -> u32 {
        // 16-bit Galois LFSR for allocation randomization.
        let lsb = self.lfsr & 1;
        self.lfsr >>= 1;
        if lsb != 0 {
            self.lfsr ^= 0xB400;
        }
        self.lfsr
    }

    /// Looks up a prediction for the branch at `pc`. The returned
    /// [`TagePrediction`] must be passed to [`train`](Self::train)
    /// before any other lookup is trained for correct index reuse.
    #[must_use]
    pub fn lookup(&self, pc: u64) -> TagePrediction {
        let n = self.config.num_tables();
        let mut indices = [0u32; Self::MAX_TABLES];
        let mut tags = [0u16; Self::MAX_TABLES];
        for t in 0..n {
            indices[t] = self.index(pc, t);
            tags[t] = self.tag(pc, t);
        }
        // Find the two longest matches.
        let mut provider = None;
        let mut alt = None;
        for t in (0..n).rev() {
            if self.tables[t][indices[t] as usize].tag == tags[t] {
                if provider.is_none() {
                    provider = Some(t);
                } else {
                    alt = Some(t);
                    break;
                }
            }
        }
        let base_taken = self.base.lookup(pc);
        let (provider_taken, provider_ctr, weak) = match provider {
            Some(t) => {
                let e = &self.tables[t][indices[t] as usize];
                (e.ctr.is_taken(), e.ctr.value(), e.ctr.is_weak())
            }
            None => (base_taken, if base_taken { 1 } else { -1 }, self.base.is_weak(pc)),
        };
        let alt_taken = match alt {
            Some(t) => self.tables[t][indices[t] as usize].ctr.is_taken(),
            None => base_taken,
        };
        // Newly-allocated (weak) providers are often wrong; a global
        // counter decides whether to trust the alternate instead.
        let use_alt = provider.is_some() && weak && self.use_alt_on_weak.is_taken();
        let taken = if use_alt { alt_taken } else { provider_taken };
        TagePrediction {
            taken,
            provider_taken,
            alt_taken,
            provider,
            provider_ctr,
            weak,
            indices,
            tags,
        }
    }

    /// Trains TAGE on a resolved branch given the lookup it predicted
    /// with, then advances all histories.
    pub fn train(&mut self, record: &BranchRecord, pred: &TagePrediction) {
        let taken = record.taken;
        let n = self.config.num_tables();

        // --- allocation on misprediction ---
        if pred.taken != taken {
            let start = pred.provider.map_or(0, |p| p + 1);
            if start < n {
                // Choose up to one new entry among tables with u == 0,
                // starting from a randomized offset (Seznec's trick to
                // spread allocations).
                let span = n - start;
                let mut offset = 0usize;
                if span > 1 {
                    let r = self.lfsr_next() as usize;
                    // Bias toward the shortest eligible table.
                    offset = if r.is_multiple_of(4) {
                        1.min(span - 1)
                    } else if r % 16 == 1 {
                        2.min(span - 1)
                    } else {
                        0
                    };
                }
                let mut allocated = false;
                for t in (start + offset)..n {
                    let idx = pred.indices[t] as usize;
                    if self.tables[t][idx].useful.is_zero() {
                        self.tables[t][idx].tag = pred.tags[t];
                        self.tables[t][idx].ctr.reset(taken);
                        allocated = true;
                        break;
                    }
                }
                if !allocated {
                    // Decay resistance: make room next time.
                    for t in start..n {
                        let idx = pred.indices[t] as usize;
                        self.tables[t][idx].useful.decrement();
                    }
                }
            }
        }

        // --- provider / alt / base counter updates ---
        match pred.provider {
            Some(t) => {
                let idx = pred.indices[t] as usize;
                // The use-alt-on-weak policy counter trains whenever the
                // provider was weak and provider/alt disagreed.
                if pred.weak && pred.provider_taken != pred.alt_taken {
                    self.use_alt_on_weak.update(pred.alt_taken == taken);
                }
                self.tables[t][idx].ctr.update(taken);
                // Update the alternate provider too when the provider
                // entry is still unconfident (helps warm-up).
                if pred.weak {
                    match self.alt_table_of(pred, t) {
                        Some(at) => {
                            let aidx = pred.indices[at] as usize;
                            self.tables[at][aidx].ctr.update(taken);
                        }
                        None => self.base.train(record.pc, taken),
                    }
                }
                // Useful-bit update when provider and alt disagree.
                if pred.provider_taken != pred.alt_taken {
                    if pred.provider_taken == taken {
                        self.tables[t][idx].useful.increment();
                    } else {
                        self.tables[t][idx].useful.decrement();
                    }
                }
            }
            None => {
                self.base.train(record.pc, taken);
            }
        }

        // --- periodic useful aging ---
        self.updates += 1;
        if self.updates.is_multiple_of(self.config.reset_period) {
            self.aging_flip = !self.aging_flip;
            for table in &mut self.tables {
                for e in table.iter_mut() {
                    e.useful.age();
                }
            }
        }

        self.shift_histories(record);
    }

    /// Finds the alternate-provider table index recorded in `pred`
    /// below provider `t`, if any tagged table matched.
    fn alt_table_of(&self, pred: &TagePrediction, t: usize) -> Option<usize> {
        (0..t).rev().find(|&a| self.tables[a][pred.indices[a] as usize].tag == pred.tags[a])
    }

    /// Advances direction, path, and folded histories by one branch.
    fn shift_histories(&mut self, record: &BranchRecord) {
        let taken = record.taken;
        let n = self.config.num_tables();
        for t in 0..n {
            let len = self.hist_lens[t];
            let outgoing =
                if self.history.len() >= len { self.history.bit(len - 1) } else { false };
            self.folded_index[t].update(taken, outgoing);
            self.folded_tag[0][t].update(taken, outgoing);
            self.folded_tag[1][t].update(taken, outgoing);
        }
        self.history.push(taken);
        self.path.push(record.pc >> 2);
    }

    /// Advances path history for non-conditional control flow.
    pub fn note_control_flow(&mut self, record: &BranchRecord) {
        self.path.push(record.pc >> 2);
    }

    /// Read access to the direction history (used by SC components).
    #[must_use]
    pub fn global_history(&self) -> &GlobalHistory {
        &self.history
    }

    /// Modeled storage in bits.
    #[must_use]
    pub fn storage_bits_internal(&self) -> u64 {
        let mut bits = self.base.storage_bits();
        for (t, table) in self.tables.iter().enumerate() {
            let entry_bits = u64::from(
                self.config.tag_bits[t] + self.config.counter_bits + self.config.useful_bits,
            );
            bits += table.len() as u64 * entry_bits;
        }
        bits + self.config.max_history as u64 + 4 + 16
    }
}

/// Standalone-TAGE trait adapter. Stashes the last lookup internally;
/// [`TageScL`](crate::tagescl::TageScL) uses [`Tage::lookup`] /
/// [`Tage::train`] directly instead.
#[derive(Debug, Clone)]
pub struct TageStandalone {
    tage: Tage,
    last: Option<TagePrediction>,
}

impl TageStandalone {
    /// Wraps a [`Tage`] for [`Predictor`]-trait use.
    #[must_use]
    pub fn new(config: &TageConfig) -> Self {
        Self { tage: Tage::new(config), last: None }
    }
}

impl Predictor for TageStandalone {
    fn predict(&mut self, pc: u64) -> bool {
        let p = self.tage.lookup(pc);
        let taken = p.taken;
        self.last = Some(p);
        taken
    }

    fn update(&mut self, record: &BranchRecord, _predicted: bool) {
        let pred = self.last.take().unwrap_or_else(|| self.tage.lookup(record.pc));
        self.tage.train(record, &pred);
    }

    fn note_unconditional(&mut self, record: &BranchRecord) {
        self.tage.note_control_flow(record);
    }

    fn flush(&mut self) {
        self.tage.flush();
        self.last = None;
    }

    fn name(&self) -> &'static str {
        "tage"
    }

    fn storage_bits(&self) -> u64 {
        self.tage.storage_bits_internal()
    }
}

impl Predictor for Tage {
    fn predict(&mut self, pc: u64) -> bool {
        self.lookup(pc).taken
    }

    fn update(&mut self, record: &BranchRecord, _predicted: bool) {
        let pred = self.lookup(record.pc);
        self.train(record, &pred);
    }

    fn note_unconditional(&mut self, record: &BranchRecord) {
        self.note_control_flow(record);
    }

    fn flush(&mut self) {
        let config = self.config.clone();
        *self = Self::new(&config);
    }

    fn name(&self) -> &'static str {
        "tage-core"
    }

    fn storage_bits(&self) -> u64 {
        self.storage_bits_internal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::Predictor;
    use branchnet_trace::{run_one as evaluate, Trace};

    fn small_config() -> TageConfig {
        TageConfig {
            min_history: 4,
            max_history: 128,
            log_entries: vec![8, 8, 8, 8, 8, 8],
            tag_bits: vec![8, 9, 9, 10, 10, 11],
            counter_bits: 3,
            useful_bits: 2,
            base_log_size: 10,
            reset_period: 1 << 14,
        }
    }

    #[test]
    fn history_lengths_are_geometric_and_increasing() {
        let cfg = TageConfig::budget_64kb();
        let lens: Vec<usize> = (0..cfg.num_tables()).map(|i| cfg.history_length(i)).collect();
        assert_eq!(lens[0], cfg.min_history);
        assert!(lens.windows(2).all(|w| w[0] < w[1]), "{lens:?}");
        assert_eq!(*lens.last().unwrap(), cfg.max_history);
    }

    #[test]
    fn learns_pattern_beyond_bimodal() {
        let pattern = [true, true, true, false, false, true, false, false];
        let trace: Trace =
            (0..4000).map(|i| BranchRecord::conditional(0x40, pattern[i % 8])).collect();
        let stats = evaluate(&mut TageStandalone::new(&small_config()), &trace);
        assert!(stats.accuracy() > 0.95, "accuracy {}", stats.accuracy());
    }

    #[test]
    fn learns_correlated_branch_in_short_clean_history() {
        // Branch 0x900 copies branch 0x100's direction 3 branches back.
        let mut seed = 7u64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 40).is_multiple_of(2)
        };
        let mut trace = Trace::new();
        for _ in 0..6000 {
            let k = rng();
            trace.push(BranchRecord::conditional(0x100, k));
            trace.push(BranchRecord::conditional(0x200, true));
            trace.push(BranchRecord::conditional(0x300, false));
            trace.push(BranchRecord::conditional(0x900, k));
        }
        let stats = evaluate(&mut TageStandalone::new(&small_config()), &trace);
        // 0x100 is unpredictable (50%), the rest should be ~perfect:
        // overall accuracy approaches 7/8 plus warm-up noise.
        assert!(stats.accuracy() > 0.82, "accuracy {}", stats.accuracy());
    }

    #[test]
    fn budget_64kb_fits_64_kilobytes() {
        let t = TageStandalone::new(&TageConfig::budget_64kb());
        let bits = t.storage_bits();
        assert!(bits <= 64 * 1024 * 8, "TAGE alone must fit in 64KB, got {} bits", bits);
        // And it should be a substantial predictor, not a toy.
        assert!(bits >= 40 * 1024 * 8);
    }

    #[test]
    fn budget_56kb_is_smaller_than_64kb() {
        let a = TageStandalone::new(&TageConfig::budget_64kb()).storage_bits();
        let b = TageStandalone::new(&TageConfig::budget_56kb()).storage_bits();
        assert!(b < a);
    }

    #[test]
    fn lookup_is_pure() {
        let t = Tage::new(&small_config());
        let a = t.lookup(0x1234);
        let b = t.lookup(0x1234);
        assert_eq!(a.taken, b.taken);
        assert_eq!(a.provider, b.provider);
        assert_eq!(a.indices[..3], b.indices[..3]);
    }

    #[test]
    fn trains_without_prior_lookup_state() {
        // The Predictor impl must tolerate update-after-predict pairs
        // arbitrarily interleaved across PCs per the trait contract.
        let mut t = Tage::new(&small_config());
        for i in 0..100u64 {
            let r = BranchRecord::conditional(0x40 + (i % 4) * 8, i % 3 == 0);
            let p = t.predict(r.pc);
            t.update(&r, p);
        }
    }

    #[test]
    #[should_panic(expected = "assertion")]
    fn invalid_config_rejected() {
        let mut cfg = small_config();
        cfg.tag_bits.pop();
        let _ = Tage::new(&cfg);
    }
}
