//! Processor configuration (paper Section VI-A's Scarab setup).

use serde::{Deserialize, Serialize};

/// First-order core model parameters. Defaults mirror the paper's
/// simulated machine: 6-wide fetch, 512-entry ROB, 10-stage frontend,
/// 4 KB single-cycle gshare early predictor, 4-cycle late predictor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Sustainable issue/retire width (ROB-limited steady state).
    pub issue_width: usize,
    /// Frontend pipeline depth in cycles (flush refill cost).
    pub frontend_stages: u64,
    /// Late-predictor latency; also the early/late re-steer bubble.
    pub late_predictor_cycles: u64,
    /// log2 entries of the early gshare predictor (4 KB ⇒ 2¹⁴ 2-bit
    /// counters).
    pub early_gshare_log_size: u32,
    /// Global-history bits of the early gshare.
    pub early_gshare_history: usize,
    /// Average branch-resolution delay beyond the frontend (execution
    /// latency of the mispredicted branch's dependence chain).
    pub resolve_delay: u64,
    /// Extra resolution delay for memory-dependent branches.
    pub memory_resolve_delay: u64,
    /// Fraction (per mille) of branches treated as memory-dependent.
    pub memory_branch_per_mille: u32,
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self {
            fetch_width: 6,
            issue_width: 6,
            frontend_stages: 10,
            late_predictor_cycles: 4,
            early_gshare_log_size: 14,
            early_gshare_history: 12,
            resolve_delay: 12,
            memory_resolve_delay: 120,
            memory_branch_per_mille: 30,
        }
    }
}

impl CpuConfig {
    /// The paper's high-performance configuration (the default).
    #[must_use]
    pub fn skylake_like() -> Self {
        Self::default()
    }

    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics on zero widths or a per-mille value above 1000.
    pub fn validate(&self) {
        assert!(self.fetch_width > 0 && self.issue_width > 0);
        assert!(self.memory_branch_per_mille <= 1000);
        assert!(self.frontend_stages > 0);
    }

    /// Full misprediction penalty for a non-memory branch.
    #[must_use]
    pub fn flush_penalty(&self) -> u64 {
        self.frontend_stages + self.resolve_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_machine() {
        let c = CpuConfig::default();
        assert_eq!(c.fetch_width, 6);
        assert_eq!(c.frontend_stages, 10);
        assert_eq!(c.late_predictor_cycles, 4);
        // 2^14 two-bit counters = 4 KB.
        assert_eq!((1u64 << c.early_gshare_log_size) * 2, 4 * 1024 * 8);
    }

    #[test]
    fn flush_penalty_combines_frontend_and_resolve() {
        let c = CpuConfig::default();
        assert_eq!(c.flush_penalty(), 22);
    }

    #[test]
    #[should_panic]
    fn zero_width_rejected() {
        let c = CpuConfig { fetch_width: 0, ..CpuConfig::default() };
        c.validate();
    }
}
