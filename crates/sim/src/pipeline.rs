//! The timing model itself.

use crate::config::CpuConfig;
use branchnet_tage::{Gshare, Predictor};
use branchnet_trace::{BranchRecord, Trace};
use serde::{Deserialize, Serialize};

/// Where the late prediction comes from: a real predictor or the
/// oracle (for perfect-prediction upper bounds).
pub trait DirectionSource {
    /// Predicts the record's direction (may use everything except the
    /// record's own outcome).
    fn predict_record(&mut self, record: &BranchRecord) -> bool;
    /// Trains on the resolved record.
    fn update_record(&mut self, record: &BranchRecord, predicted: bool);
    /// Observes non-conditional control flow.
    fn note_record(&mut self, record: &BranchRecord) {
        let _ = record;
    }
}

impl<P: Predictor + ?Sized> DirectionSource for P {
    fn predict_record(&mut self, record: &BranchRecord) -> bool {
        self.predict(record.pc)
    }
    fn update_record(&mut self, record: &BranchRecord, predicted: bool) {
        self.update(record, predicted);
    }
    fn note_record(&mut self, record: &BranchRecord) {
        self.note_unconditional(record);
    }
}

/// A perfect late predictor (IPC upper bound).
#[derive(Debug, Clone, Copy, Default)]
pub struct Oracle;

impl DirectionSource for Oracle {
    fn predict_record(&mut self, record: &BranchRecord) -> bool {
        record.taken
    }
    fn update_record(&mut self, _record: &BranchRecord, _predicted: bool) {}
}

/// Timing outcome of one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Total cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Conditional branches simulated.
    pub branches: u64,
    /// Final (late-predictor) mispredictions — full flushes.
    pub mispredictions: u64,
    /// Early/late disagreements where the late predictor was right —
    /// re-steer bubbles.
    pub resteers: u64,
}

impl SimResult {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Mispredictions per kilo-instruction.
    #[must_use]
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            1000.0 * self.mispredictions as f64 / self.instructions as f64
        }
    }
}

/// Simulates `trace` once for each late predictor in `lates`, all
/// behind one shared early gshare, under `config`.
///
/// The early predictor and the dynamic-branch counter evolve
/// identically no matter which late predictor sits behind them (both
/// are pure functions of the record stream), so a single decode pass
/// can score every lane at once. Each lane's [`SimResult`] is
/// byte-identical to what a solo [`simulate`] call would produce.
///
/// # Panics
///
/// Panics if `config` fails validation.
pub fn simulate_many(
    trace: &Trace,
    lates: &mut [&mut dyn DirectionSource],
    config: &CpuConfig,
) -> Vec<SimResult> {
    config.validate();
    let mut early = Gshare::new(config.early_gshare_log_size, config.early_gshare_history);
    let width = config.fetch_width.min(config.issue_width) as u64;
    let mut instructions = 0u64;
    let mut branches = 0u64;
    let mut mispredictions = vec![0u64; lates.len()];
    let mut resteers = vec![0u64; lates.len()];
    let mut penalty_cycles = vec![0u64; lates.len()];
    for record in trace {
        instructions += 1 + u64::from(record.inst_gap);
        if !record.kind.is_conditional() {
            early.note_unconditional(record);
            for late in lates.iter_mut() {
                late.note_record(record);
            }
            continue;
        }
        branches += 1;
        let early_pred = early.predict(record.pc);
        for (lane, late) in lates.iter_mut().enumerate() {
            let late_pred = late.predict_record(record);
            if late_pred != record.taken {
                // Full flush: refill the frontend and wait for the
                // branch to resolve. Memory-dependent branches (chosen
                // deterministically by PC/occurrence hash) resolve
                // late.
                let slow = is_memory_dependent(record.pc, branches, config.memory_branch_per_mille);
                let resolve = if slow { config.memory_resolve_delay } else { config.resolve_delay };
                penalty_cycles[lane] += config.frontend_stages + resolve;
                mispredictions[lane] += 1;
            } else if early_pred != late_pred {
                // Correct late prediction overriding the early one:
                // the frontend refetches from the corrected target.
                penalty_cycles[lane] += config.late_predictor_cycles;
                resteers[lane] += 1;
            }
            late.update_record(record, late_pred);
        }
        early.update(record, early_pred);
    }
    let base_cycles = instructions.div_ceil(width);
    (0..lates.len())
        .map(|lane| SimResult {
            cycles: base_cycles + penalty_cycles[lane],
            instructions,
            branches,
            mispredictions: mispredictions[lane],
            resteers: resteers[lane],
        })
        .collect()
}

/// Simulates `trace` with `late` as the heavy-weight predictor behind
/// a fresh early gshare, under `config`.
///
/// # Panics
///
/// Panics if `config` fails validation.
pub fn simulate(trace: &Trace, late: &mut dyn DirectionSource, config: &CpuConfig) -> SimResult {
    simulate_many(trace, &mut [late], config).pop().expect("one lane in, one result out")
}

/// Simulates with the oracle late predictor (perfect prediction).
#[must_use]
pub fn simulate_with_oracle(trace: &Trace, config: &CpuConfig) -> SimResult {
    simulate(trace, &mut Oracle, config)
}

/// Deterministic pseudo-random tagging of memory-dependent branches.
fn is_memory_dependent(pc: u64, occurrence: u64, per_mille: u32) -> bool {
    let h =
        (pc ^ occurrence.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    (h >> 33) % 1000 < u64::from(per_mille)
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchnet_tage::{AlwaysTaken, TageScL, TageSclConfig};

    fn loopy_trace(n: usize) -> Trace {
        (0..n).map(|i| BranchRecord::conditional(0x40, i % 8 != 7)).collect()
    }

    #[test]
    fn oracle_gives_the_best_ipc() {
        let trace = loopy_trace(20_000);
        let cfg = CpuConfig::default();
        let oracle = simulate_with_oracle(&trace, &cfg);
        let mut bad = AlwaysTaken;
        let always = simulate(&trace, &mut bad, &cfg);
        let mut tage = TageScL::new(&TageSclConfig::tage_sc_l_64kb());
        let tage_res = simulate(&trace, &mut tage, &cfg);
        assert!(oracle.ipc() >= tage_res.ipc());
        assert!(tage_res.ipc() > always.ipc());
        assert_eq!(oracle.mispredictions, 0);
    }

    #[test]
    fn ipc_bounded_by_machine_width() {
        let trace = loopy_trace(10_000);
        let cfg = CpuConfig::default();
        let r = simulate_with_oracle(&trace, &cfg);
        assert!(r.ipc() <= cfg.fetch_width as f64 + 1e-9);
        // Oracle on a gshare-predictable loop: only early resteers at
        // warm-up, so IPC should approach the width.
        assert!(r.ipc() > cfg.fetch_width as f64 * 0.8, "ipc {}", r.ipc());
    }

    #[test]
    fn mpki_matches_trace_evaluation() {
        let trace = loopy_trace(20_000);
        let cfg = CpuConfig::default();
        let mut tage = TageScL::new(&TageSclConfig::tage_sc_l_64kb());
        let sim = simulate(&trace, &mut tage, &cfg);
        let mut tage2 = TageScL::new(&TageSclConfig::tage_sc_l_64kb());
        let eval = branchnet_trace::run_one(&mut tage2, &trace);
        assert!((sim.mpki() - eval.mpki()).abs() < 1e-9);
    }

    #[test]
    fn simulate_many_matches_solo_runs() {
        let trace = loopy_trace(20_000);
        let cfg = CpuConfig::default();
        let mut a = TageScL::new(&TageSclConfig::tage_sc_l_64kb());
        let mut b = AlwaysTaken;
        let solo_a = simulate(&trace, &mut TageScL::new(&TageSclConfig::tage_sc_l_64kb()), &cfg);
        let solo_b = simulate(&trace, &mut AlwaysTaken, &cfg);
        let many = simulate_many(&trace, &mut [&mut a, &mut b, &mut Oracle], &cfg);
        assert_eq!(many.len(), 3);
        assert_eq!(many[0], solo_a);
        assert_eq!(many[1], solo_b);
        assert_eq!(many[2], simulate_with_oracle(&trace, &cfg));
    }

    #[test]
    fn lower_mpki_means_higher_ipc() {
        // Alternating branch: gshare-friendly, bimodal-hostile.
        let trace: Trace =
            (0..30_000).map(|i| BranchRecord::conditional(0x44, i % 2 == 0)).collect();
        let cfg = CpuConfig::default();
        let mut good = TageScL::new(&TageSclConfig::tage_sc_l_64kb());
        let mut bad = AlwaysTaken;
        let g = simulate(&trace, &mut good, &cfg);
        let b = simulate(&trace, &mut bad, &cfg);
        assert!(g.mpki() < b.mpki());
        assert!(g.ipc() > b.ipc());
    }

    #[test]
    fn resteers_cost_less_than_flushes() {
        let trace = loopy_trace(10_000);
        let cfg = CpuConfig { memory_branch_per_mille: 0, ..Default::default() };
        let mut bad = AlwaysTaken;
        let r = simulate(&trace, &mut bad, &cfg);
        // Every 8th branch mispredicts: check penalty accounting.
        let expected_flush_cycles = r.mispredictions * cfg.flush_penalty();
        let base = r.instructions.div_ceil(cfg.fetch_width as u64);
        assert!(r.cycles >= base + expected_flush_cycles);
    }

    #[test]
    fn memory_dependent_tagging_is_deterministic_and_bounded() {
        let mut hits = 0;
        for i in 0..10_000u64 {
            if is_memory_dependent(0x1234, i, 30) {
                hits += 1;
            }
            assert_eq!(is_memory_dependent(0x1234, i, 30), is_memory_dependent(0x1234, i, 30));
        }
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.03).abs() < 0.01, "rate {rate}");
    }
}
