//! Trace-driven, cycle-approximate pipeline timing model.
//!
//! The paper evaluates IPC with Scarab, an execution-driven x86
//! simulator with a two-tier branch predictor frontend (Section VI-A):
//! a single-cycle 4 KB gshare gives an early prediction, and the
//! 4-cycle late predictor (TAGE-SC-L or TAGE-SC-L + BranchNet)
//! re-steers the frontend when it disagrees. This crate models the
//! same mechanics at trace granularity:
//!
//! * steady-state fetch/issue throughput bounds,
//! * an **early/late disagreement bubble** (the frontend refetches
//!   from the late prediction, costing the late predictor's latency),
//! * a **full flush** on a final misprediction, costing the frontend
//!   depth plus a branch-resolution delay.
//!
//! Absolute IPC is not the point (the paper's testbed is a detailed
//! microarchitecture); the *relative* IPC effect of MPKI changes is,
//! and that is governed by exactly these penalty terms.

pub mod config;
pub mod pipeline;

pub use config::CpuConfig;
pub use pipeline::{
    simulate, simulate_many, simulate_with_oracle, DirectionSource, Oracle, SimResult,
};
