//! Property-based tests for the neural-network substrate.

use branchnet_nn::layers::{Activation, BatchNorm1d, Conv1d, Dense, SumPool1d};
use branchnet_nn::loss::bce_with_logits;
use branchnet_nn::tensor::Tensor;
use proptest::prelude::*;

fn finite_vec(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-8.0f32..8.0, n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sum-pooling is linear: pool(a + λb) = pool(a) + λ·pool(b).
    #[test]
    fn sum_pool_linearity(
        a in finite_vec(24),
        b in finite_vec(24),
        lambda in -3.0f32..3.0,
        width in prop::sample::select(vec![1usize, 2, 3, 4, 6, 8, 12, 24]),
    ) {
        let ta = Tensor::from_vec(a, &[1, 2, 12]);
        let tb = Tensor::from_vec(b, &[1, 2, 12]);
        prop_assume!(12 % width == 0);
        let mut pool = SumPool1d::new(width);
        let mut combo = ta.clone();
        combo.add_scaled(&tb, lambda);
        let lhs = pool.forward(&combo);
        let mut rhs = pool.forward(&ta);
        rhs.add_scaled(&pool.forward(&tb), lambda);
        for (l, r) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((l - r).abs() < 1e-3, "{l} vs {r}");
        }
    }

    /// Convolution is linear in its input for fixed weights.
    #[test]
    fn conv_linearity_in_input(a in finite_vec(30), b in finite_vec(30), lambda in -2.0f32..2.0) {
        let mut conv = Conv1d::new(2, 3, 3, 99);
        let ta = Tensor::from_vec(a, &[1, 2, 15]);
        let tb = Tensor::from_vec(b, &[1, 2, 15]);
        let mut combo = ta.clone();
        combo.add_scaled(&tb, lambda);
        // Zero the bias so the map is strictly linear.
        conv.visit_params_zero_bias();
        let lhs = conv.forward(&combo);
        let mut rhs = conv.forward(&ta);
        rhs.add_scaled(&conv.forward(&tb), lambda);
        for (l, r) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((l - r).abs() < 1e-2, "{l} vs {r}");
        }
    }

    /// Training-mode batch norm output always has (near) zero mean and
    /// unit variance per channel.
    #[test]
    fn batchnorm_standardizes(x in finite_vec(32)) {
        // Guard against degenerate all-equal channels.
        let spread = x.iter().cloned().fold(f32::MIN, f32::max)
            - x.iter().cloned().fold(f32::MAX, f32::min);
        prop_assume!(spread > 0.5);
        let t = Tensor::from_vec(x, &[4, 2, 4]);
        let mut bn = BatchNorm1d::new(2);
        let y = bn.forward(&t, true);
        for c in 0..2 {
            let vals: Vec<f32> = (0..4)
                .flat_map(|b| (0..4).map(move |s| (b, s)))
                .map(|(b, s)| y.data()[(b * 2 + c) * 4 + s])
                .collect();
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            prop_assert!(mean.abs() < 1e-3, "channel {c} mean {mean}");
        }
    }

    /// Dense layers satisfy f(x) - f(0) being linear in x.
    #[test]
    fn dense_affine_property(a in finite_vec(6), b in finite_vec(6)) {
        let mut d = Dense::new(3, 4, 5);
        let zero = Tensor::zeros(&[2, 3]);
        let f0 = d.forward(&zero);
        let ta = Tensor::from_vec(a, &[2, 3]);
        let tb = Tensor::from_vec(b, &[2, 3]);
        let mut sum = ta.clone();
        sum.add_scaled(&tb, 1.0);
        let fs = d.forward(&sum);
        let fa = d.forward(&ta);
        let fb = d.forward(&tb);
        for i in 0..fs.len() {
            let lhs = fs.data()[i] - f0.data()[i];
            let rhs = (fa.data()[i] - f0.data()[i]) + (fb.data()[i] - f0.data()[i]);
            prop_assert!((lhs - rhs).abs() < 1e-3);
        }
    }

    /// BCE loss is non-negative and its gradient is bounded by 1/batch.
    #[test]
    fn bce_bounds(logits in finite_vec(8), labels in prop::collection::vec(0u8..2, 8)) {
        let t = Tensor::from_vec(logits, &[8, 1]);
        let l: Vec<f32> = labels.iter().map(|&v| f32::from(v)).collect();
        let (loss, grad) = bce_with_logits(&t, &l);
        prop_assert!(loss >= 0.0);
        for g in grad.data() {
            prop_assert!(g.abs() <= 1.0 / 8.0 + 1e-6);
        }
    }

    /// Activations are monotone non-decreasing element-wise.
    #[test]
    fn activations_are_monotone(x in -6.0f32..6.0, dx in 0.0f32..4.0) {
        for mut act in [Activation::relu(), Activation::tanh(), Activation::sigmoid(), Activation::binary_ste()] {
            let lo = act.forward(&Tensor::from_vec(vec![x], &[1]));
            let hi = act.forward(&Tensor::from_vec(vec![x + dx], &[1]));
            prop_assert!(hi.data()[0] >= lo.data()[0] - 1e-6);
        }
    }
}

/// Helper extension used by the conv linearity test: zero the bias via
/// the public visitor.
trait ZeroBias {
    fn visit_params_zero_bias(&mut self);
}

impl ZeroBias for Conv1d {
    fn visit_params_zero_bias(&mut self) {
        use branchnet_nn::optim::ParamVisitor;
        self.visit_params(&mut |w, _| {
            if w.shape().len() == 1 {
                w.fill(0.0);
            }
        });
    }
}
