//! Optimizers driving stochastic gradient descent.

use crate::tensor::Tensor;

/// Implemented by anything owning trainable parameters. The visitor
/// must enumerate `(value, gradient)` pairs in a stable order — the
/// optimizers key their per-parameter state by visit index.
pub trait ParamVisitor {
    /// Calls `f` once per parameter tensor with its gradient buffer.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor));

    /// Zeroes every gradient buffer.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| g.fill(0.0));
    }

    /// Total trainable scalar count.
    fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |w, _| n += w.len());
        n
    }
}

/// Stochastic gradient descent with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates SGD with learning rate `lr` and momentum 0.9.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    #[must_use]
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.9)
    }

    /// Creates SGD with an explicit momentum coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `lr` ≤ 0 or `momentum` ∉ [0, 1).
    #[must_use]
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        Self { lr, momentum, velocity: Vec::new() }
    }

    /// Applies one update step from accumulated gradients.
    pub fn step(&mut self, model: &mut dyn ParamVisitor) {
        let mut idx = 0;
        let lr = self.lr;
        let momentum = self.momentum;
        let velocity = &mut self.velocity;
        model.visit_params(&mut |w, g| {
            if velocity.len() <= idx {
                velocity.push(vec![0.0; w.len()]);
            }
            let v = &mut velocity[idx];
            assert_eq!(v.len(), w.len(), "parameter shape changed between steps");
            for ((wi, gi), vi) in w.data_mut().iter_mut().zip(g.data()).zip(v.iter_mut()) {
                *vi = momentum * *vi + gi;
                *wi -= lr * *vi;
            }
            idx += 1;
        });
    }

    /// Updates the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr.is_finite() && lr > 0.0);
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba) — the workhorse for BranchNet
/// training.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with standard betas (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    #[must_use]
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Applies one Adam step from accumulated gradients.
    pub fn step(&mut self, model: &mut dyn ParamVisitor) {
        self.t += 1;
        let (b1, b2) = (self.beta1, self.beta2);
        let bias1 = 1.0 - b1.powi(self.t);
        let bias2 = 1.0 - b2.powi(self.t);
        let lr = self.lr;
        let eps = self.eps;
        let mut idx = 0;
        let (ms, vs) = (&mut self.m, &mut self.v);
        model.visit_params(&mut |w, g| {
            if ms.len() <= idx {
                ms.push(vec![0.0; w.len()]);
                vs.push(vec![0.0; w.len()]);
            }
            let m = &mut ms[idx];
            let v = &mut vs[idx];
            assert_eq!(m.len(), w.len(), "parameter shape changed between steps");
            for (((wi, gi), mi), vi) in
                w.data_mut().iter_mut().zip(g.data()).zip(m.iter_mut()).zip(v.iter_mut())
            {
                *mi = b1 * *mi + (1.0 - b1) * gi;
                *vi = b2 * *vi + (1.0 - b2) * gi * gi;
                let mhat = *mi / bias1;
                let vhat = *vi / bias2;
                *wi -= lr * mhat / (vhat.sqrt() + eps);
            }
            idx += 1;
        });
    }

    /// Updates the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr.is_finite() && lr > 0.0);
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1-parameter quadratic bowl: L(w) = (w - 3)^2 / 2.
    struct Bowl {
        w: Tensor,
        g: Tensor,
    }

    impl Bowl {
        fn new() -> Self {
            Self { w: Tensor::zeros(&[1]), g: Tensor::zeros(&[1]) }
        }
        fn compute_grad(&mut self) -> f32 {
            let w = self.w.data()[0];
            self.g.data_mut()[0] = w - 3.0;
            (w - 3.0) * (w - 3.0) / 2.0
        }
    }

    impl ParamVisitor for Bowl {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
            f(&mut self.w, &mut self.g);
        }
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut bowl = Bowl::new();
        let mut opt = Sgd::with_momentum(0.1, 0.0);
        for _ in 0..200 {
            bowl.compute_grad();
            opt.step(&mut bowl);
            bowl.zero_grad();
        }
        assert!((bowl.w.data()[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let run = |momentum: f32| {
            let mut bowl = Bowl::new();
            let mut opt = Sgd::with_momentum(0.01, momentum);
            for _ in 0..100 {
                bowl.compute_grad();
                opt.step(&mut bowl);
                bowl.zero_grad();
            }
            (bowl.w.data()[0] - 3.0).abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut bowl = Bowl::new();
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            bowl.compute_grad();
            opt.step(&mut bowl);
            bowl.zero_grad();
        }
        assert!((bowl.w.data()[0] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn zero_grad_clears_buffers() {
        let mut bowl = Bowl::new();
        bowl.compute_grad();
        bowl.zero_grad();
        assert_eq!(bowl.g.data()[0], 0.0);
    }

    #[test]
    fn num_params_counts_scalars() {
        let mut bowl = Bowl::new();
        assert_eq!(bowl.num_params(), 1);
    }
}
