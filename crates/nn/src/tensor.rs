//! A flat `f32` tensor with a shape — the only numeric container the
//! library needs.

use serde::{Deserialize, Serialize};

/// A dense row-major `f32` tensor.
///
/// ```
/// use branchnet_nn::tensor::Tensor;
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    #[must_use]
    pub fn zeros(shape: &[usize]) -> Self {
        let n = Self::checked_len(shape);
        Self { data: vec![0.0; n], shape: shape.to_vec() }
    }

    /// A tensor filled with `value`.
    #[must_use]
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n = Self::checked_len(shape);
        Self { data: vec![value; n], shape: shape.to_vec() }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    #[must_use]
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(data.len(), Self::checked_len(shape), "data length must match shape");
        Self { data, shape: shape.to_vec() }
    }

    fn checked_len(shape: &[usize]) -> usize {
        assert!(!shape.is_empty(), "shape must have at least one dimension");
        assert!(shape.iter().all(|&d| d > 0), "zero-sized dimensions are not allowed");
        shape.iter().product()
    }

    /// The shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true by
    /// construction, kept for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing buffer.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at a 2-D index (row-major).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or the index is out of range.
    #[must_use]
    pub fn at2(&self, i: usize, j: usize) -> f32 {
        assert_eq!(self.shape.len(), 2);
        self.data[i * self.shape[1] + j]
    }

    /// Sets all elements to `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Element-wise `self += other * scale`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_scaled");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b * scale;
        }
    }

    /// Reinterprets the buffer with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    #[must_use]
    pub fn reshaped(&self, shape: &[usize]) -> Tensor {
        assert_eq!(self.len(), Self::checked_len(shape), "reshape must preserve element count");
        Tensor { data: self.data.clone(), shape: shape.to_vec() }
    }

    /// Largest absolute element (0.0 for all-zero tensors).
    #[must_use]
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(&[3, 2]);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let f = Tensor::full(&[4], 2.5);
        assert!(f.data().iter().all(|&x| (x - 2.5).abs() < f32::EPSILON));
    }

    #[test]
    #[should_panic(expected = "data length must match shape")]
    fn from_vec_checks_length() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    #[should_panic(expected = "zero-sized dimensions")]
    fn zero_dim_rejected() {
        let _ = Tensor::zeros(&[2, 0]);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Tensor::full(&[3], 1.0);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = a.reshaped(&[3, 2]);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.data(), a.data());
    }

    #[test]
    fn at2_is_row_major() {
        let a = Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        assert_eq!(a.at2(0, 2), 3.0);
        assert_eq!(a.at2(1, 0), 4.0);
    }

    #[test]
    fn max_abs_finds_extreme() {
        let a = Tensor::from_vec(vec![-5.0, 2.0, 4.5], &[3]);
        assert!((a.max_abs() - 5.0).abs() < f32::EPSILON);
    }
}
