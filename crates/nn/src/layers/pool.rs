//! Sum-pooling — BranchNet's key compression layer.
//!
//! Sum-pooling converts "where did each feature fire" into "how many
//! times did each feature fire per window", which is exactly the
//! occurrence-count information the paper's hard-to-predict branches
//! correlate with (Section IV), while discarding the fine-grained
//! positions that make noisy histories intractable for TAGE.

use crate::tensor::Tensor;

/// Sum-pooling over the sequence axis with equal width and stride,
/// mapping `[batch, channels, seq]` to `[batch, channels, seq / width]`.
#[derive(Debug, Clone)]
pub struct SumPool1d {
    width: usize,
    cached_shape: Option<Vec<usize>>,
}

impl SumPool1d {
    /// Creates a sum-pool of the given window `width` (= stride).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "pool width must be positive");
        Self { width, cached_shape: None }
    }

    /// Pools `input`; the sequence length must be a multiple of the
    /// pool width (BranchNet picks `H` divisible by `P` by
    /// construction).
    ///
    /// # Panics
    ///
    /// Panics if `seq % width != 0` or the input is not 3-D.
    #[must_use]
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let &[batch, channels, seq] = input.shape() else {
            panic!("SumPool1d expects [batch, channels, seq], got {:?}", input.shape())
        };
        assert_eq!(
            seq % self.width,
            0,
            "sequence length {seq} not divisible by pool width {}",
            self.width
        );
        let out_seq = seq / self.width;
        let mut out = Tensor::zeros(&[batch, channels, out_seq]);
        let x = input.data();
        {
            let o = out.data_mut();
            for bc in 0..batch * channels {
                for w in 0..out_seq {
                    let mut acc = 0.0f32;
                    for t in 0..self.width {
                        acc += x[bc * seq + w * self.width + t];
                    }
                    o[bc * out_seq + w] = acc;
                }
            }
        }
        self.cached_shape = Some(input.shape().to_vec());
        out
    }

    /// Broadcasts the output gradient back across each window.
    ///
    /// # Panics
    ///
    /// Panics if called before [`forward`](Self::forward).
    #[must_use]
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self.cached_shape.as_ref().expect("backward before forward");
        let &[batch, channels, seq] = &shape[..] else { unreachable!() };
        let out_seq = seq / self.width;
        assert_eq!(grad_out.shape(), &[batch, channels, out_seq]);
        let mut gin = Tensor::zeros(&[batch, channels, seq]);
        let go = grad_out.data();
        {
            let gi = gin.data_mut();
            for bc in 0..batch * channels {
                for w in 0..out_seq {
                    let g = go[bc * out_seq + w];
                    for t in 0..self.width {
                        gi[bc * seq + w * self.width + t] = g;
                    }
                }
            }
        }
        gin
    }

    /// The pooling width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_sums_windows() {
        let mut p = SumPool1d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[1, 1, 6]);
        let y = p.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 3]);
        assert_eq!(y.data(), &[3.0, 7.0, 11.0]);
    }

    #[test]
    fn full_history_pool_counts_occurrences() {
        // The Fig. 3 construction: pooling as wide as the history turns
        // a binary "feature fired" channel into an occurrence count.
        let mut p = SumPool1d::new(8);
        let x = Tensor::from_vec(vec![0., 1., 0., 1., 1., 0., 0., 1.], &[1, 1, 8]);
        let y = p.forward(&x);
        assert_eq!(y.data(), &[4.0]);
    }

    #[test]
    fn backward_broadcasts_gradient() {
        let mut p = SumPool1d::new(3);
        let x = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[1, 1, 6]);
        let _ = p.forward(&x);
        let g = p.backward(&Tensor::from_vec(vec![2.0, -1.0], &[1, 1, 2]));
        assert_eq!(g.data(), &[2.0, 2.0, 2.0, -1.0, -1.0, -1.0]);
    }

    #[test]
    fn sum_pool_is_linear() {
        // pool(a + b) == pool(a) + pool(b)
        let mut p = SumPool1d::new(2);
        let a = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], &[1, 1, 4]);
        let b = Tensor::from_vec(vec![0.25, 1.0, -1.5, 2.0], &[1, 1, 4]);
        let mut sum = a.clone();
        sum.add_scaled(&b, 1.0);
        let lhs = p.forward(&sum);
        let mut rhs = p.forward(&a);
        rhs.add_scaled(&p.forward(&b), 1.0);
        for (l, r) in lhs.data().iter().zip(rhs.data()) {
            assert!((l - r).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_length_rejected() {
        let mut p = SumPool1d::new(4);
        let _ = p.forward(&Tensor::zeros(&[1, 1, 6]));
    }
}
