//! Fully-connected layer.

use crate::init::xavier_uniform;
use crate::optim::ParamVisitor;
use crate::tensor::Tensor;

/// Affine layer mapping `[batch, in]` to `[batch, out]`.
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Tensor, // [out, in]
    bias: Tensor,   // [out]
    wgrad: Tensor,
    bgrad: Tensor,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a Xavier-initialized dense layer.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        assert!(in_features > 0 && out_features > 0);
        Self {
            weight: xavier_uniform(&[out_features, in_features], in_features, out_features, seed),
            bias: Tensor::zeros(&[out_features]),
            wgrad: Tensor::zeros(&[out_features, in_features]),
            bgrad: Tensor::zeros(&[out_features]),
            in_features,
            out_features,
            cached_input: None,
        }
    }

    /// Computes `x · Wᵀ + b`.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not `[batch, in_features]`.
    #[must_use]
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let &[batch, fin] = input.shape() else {
            panic!("Dense expects [batch, in], got {:?}", input.shape())
        };
        assert_eq!(fin, self.in_features);
        let mut out = Tensor::zeros(&[batch, self.out_features]);
        let x = input.data();
        let w = self.weight.data();
        {
            let o = out.data_mut();
            for b in 0..batch {
                for j in 0..self.out_features {
                    let mut acc = self.bias.data()[j];
                    let wrow = &w[j * fin..(j + 1) * fin];
                    let xrow = &x[b * fin..(b + 1) * fin];
                    for (wi, xi) in wrow.iter().zip(xrow) {
                        acc += wi * xi;
                    }
                    o[b * self.out_features + j] = acc;
                }
            }
        }
        self.cached_input = Some(input.clone());
        out
    }

    /// Backpropagates, accumulating parameter gradients and returning
    /// the input gradient.
    ///
    /// # Panics
    ///
    /// Panics if called before [`forward`](Self::forward).
    #[must_use]
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward before forward");
        let &[batch, fin] = input.shape() else { unreachable!() };
        assert_eq!(grad_out.shape(), &[batch, self.out_features]);
        let mut gin = Tensor::zeros(&[batch, fin]);
        let x = input.data();
        let w = self.weight.data();
        let go = grad_out.data();
        {
            let wg = self.wgrad.data_mut();
            let bg = self.bgrad.data_mut();
            let gi = gin.data_mut();
            for b in 0..batch {
                for j in 0..self.out_features {
                    let g = go[b * self.out_features + j];
                    if g == 0.0 {
                        continue;
                    }
                    bg[j] += g;
                    for i in 0..fin {
                        wg[j * fin + i] += g * x[b * fin + i];
                        gi[b * fin + i] += g * w[j * fin + i];
                    }
                }
            }
        }
        gin
    }

    /// The weight matrix (`[out, in]`).
    #[must_use]
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// Mutable weight access (used by quantization-aware export).
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight
    }

    /// The bias vector.
    #[must_use]
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Mutable bias access.
    pub fn bias_mut(&mut self) -> &mut Tensor {
        &mut self.bias
    }

    /// Input feature count.
    #[must_use]
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    #[must_use]
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Trainable parameter count.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }
}

impl ParamVisitor for Dense {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.weight, &mut self.wgrad);
        f(&mut self.bias, &mut self.bgrad);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_is_affine() {
        let mut d = Dense::new(2, 1, 0);
        d.weight.data_mut().copy_from_slice(&[2.0, -1.0]);
        d.bias.data_mut()[0] = 0.5;
        let x = Tensor::from_vec(vec![3.0, 4.0], &[1, 2]);
        let y = d.forward(&x);
        assert!((y.data()[0] - (2.0 * 3.0 - 4.0 + 0.5)).abs() < 1e-6);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut d = Dense::new(3, 2, 5);
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 1.5, 0.0, -0.5], &[2, 3]);
        let y = d.forward(&x);
        let gin = d.backward(&y.clone());
        let eps = 1e-3_f32;
        let loss = |d: &mut Dense, x: &Tensor| -> f32 {
            d.forward(x).data().iter().map(|v| v * v).sum::<f32>() / 2.0
        };
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&mut d, &xp) - loss(&mut d, &xm)) / (2.0 * eps);
            assert!((num - gin.data()[i]).abs() < 1e-2, "fd={num} got={}", gin.data()[i]);
        }
        for i in 0..d.weight.len() {
            let orig = d.weight.data()[i];
            d.weight.data_mut()[i] = orig + eps;
            let lp = loss(&mut d, &x);
            d.weight.data_mut()[i] = orig - eps;
            let lm = loss(&mut d, &x);
            d.weight.data_mut()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - d.wgrad.data()[i]).abs() < 2e-2);
        }
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut d = Dense::new(2, 2, 0);
        let _ = d.backward(&Tensor::zeros(&[1, 2]));
    }
}
