//! Neural-network layers with hand-written forward/backward passes.
//!
//! Conventions shared by every layer:
//!
//! * Batched activations flow as [`Tensor`](crate::tensor::Tensor)s;
//!   sequence data is shaped `[batch, channels, seq]`, flat features
//!   `[batch, features]`.
//! * `forward` caches whatever the matching `backward` needs;
//!   `backward` consumes the gradient w.r.t. the layer output and
//!   returns the gradient w.r.t. the layer input, accumulating
//!   parameter gradients internally (cleared via
//!   [`ParamVisitor`](crate::optim::ParamVisitor)).
//! * Calling `backward` before `forward` panics.

mod activation;
mod conv;
mod dense;
mod embedding;
mod norm;
mod pool;

pub use activation::Activation;
pub use conv::Conv1d;
pub use dense::Dense;
pub use embedding::Embedding;
pub use norm::BatchNorm1d;
pub use pool::SumPool1d;
