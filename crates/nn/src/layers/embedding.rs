//! Embedding layer: trainable dense vector per vocabulary entry.
//!
//! BranchNet uses embeddings to represent the `(PC, direction)` integer
//! encoding of each history entry (paper Section V-A), which converges
//! faster than one-hot inputs at a fraction of the weight count.

use crate::init::xavier_uniform;
use crate::optim::ParamVisitor;
use crate::tensor::Tensor;

/// A `vocab × dim` embedding table mapping integer ids to vectors.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: Tensor,
    grad: Tensor,
    vocab: usize,
    dim: usize,
    cached_ids: Vec<u32>,
    cached_batch: usize,
    cached_seq: usize,
}

impl Embedding {
    /// Creates an embedding with `vocab` rows of `dim` features,
    /// Xavier-initialized from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `vocab` or `dim` is zero.
    #[must_use]
    pub fn new(vocab: usize, dim: usize, seed: u64) -> Self {
        assert!(vocab > 0 && dim > 0);
        Self {
            table: xavier_uniform(&[vocab, dim], vocab, dim, seed),
            grad: Tensor::zeros(&[vocab, dim]),
            vocab,
            dim,
            cached_ids: Vec::new(),
            cached_batch: 0,
            cached_seq: 0,
        }
    }

    /// Looks up `ids` (length `batch * seq`, row-major by batch) and
    /// returns activations shaped `[batch, dim, seq]` — channel-major
    /// so the convolution can slide along `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `ids.len() != batch * seq` or any id exceeds the
    /// vocabulary.
    #[must_use]
    pub fn forward(&mut self, ids: &[u32], batch: usize, seq: usize) -> Tensor {
        assert_eq!(ids.len(), batch * seq, "ids must cover the full batch");
        let mut out = Tensor::zeros(&[batch, self.dim, seq]);
        {
            let data = out.data_mut();
            for b in 0..batch {
                for s in 0..seq {
                    let id = ids[b * seq + s] as usize;
                    assert!(id < self.vocab, "id {id} out of vocabulary {}", self.vocab);
                    for d in 0..self.dim {
                        data[(b * self.dim + d) * seq + s] = self.table.data()[id * self.dim + d];
                    }
                }
            }
        }
        self.cached_ids = ids.to_vec();
        self.cached_batch = batch;
        self.cached_seq = seq;
        out
    }

    /// Scatters `grad_out` (`[batch, dim, seq]`) into the table
    /// gradient. Embeddings are the network input, so there is no
    /// input gradient to return.
    ///
    /// # Panics
    ///
    /// Panics if called before [`forward`](Self::forward) or with a
    /// mismatched gradient shape.
    pub fn backward(&mut self, grad_out: &Tensor) {
        assert!(!self.cached_ids.is_empty(), "backward before forward");
        let (batch, seq) = (self.cached_batch, self.cached_seq);
        assert_eq!(grad_out.shape(), &[batch, self.dim, seq]);
        let g = self.grad.data_mut();
        for b in 0..batch {
            for s in 0..seq {
                let id = self.cached_ids[b * seq + s] as usize;
                for d in 0..self.dim {
                    g[id * self.dim + d] += grad_out.data()[(b * self.dim + d) * seq + s];
                }
            }
        }
    }

    /// The embedding table (for quantization/export).
    #[must_use]
    pub fn table(&self) -> &Tensor {
        &self.table
    }

    /// Vocabulary size.
    #[must_use]
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Trainable parameter count.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.vocab * self.dim
    }
}

impl ParamVisitor for Embedding {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.table, &mut self.grad);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_places_vectors_channel_major() {
        let mut e = Embedding::new(4, 2, 1);
        let out = e.forward(&[1, 3], 1, 2);
        assert_eq!(out.shape(), &[1, 2, 2]);
        // out[0, d, 0] == table[1][d]; out[0, d, 1] == table[3][d].
        for d in 0..2 {
            assert_eq!(out.data()[d * 2], e.table().data()[2 + d]);
            assert_eq!(out.data()[d * 2 + 1], e.table().data()[6 + d]);
        }
    }

    #[test]
    fn backward_scatters_gradient_to_used_rows() {
        let mut e = Embedding::new(4, 2, 1);
        let _ = e.forward(&[2, 2], 1, 2);
        let grad = Tensor::full(&[1, 2, 2], 1.0);
        e.backward(&grad);
        let mut g = Tensor::zeros(&[1, 1]);
        e.visit_params(&mut |_, grad| g = grad.clone());
        // Row 2 accumulates 2.0 per dim (two occurrences); others 0.
        assert_eq!(g.data()[2 * 2], 2.0);
        assert_eq!(g.data()[2 * 2 + 1], 2.0);
        assert_eq!(g.data()[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn rejects_out_of_vocab_ids() {
        let mut e = Embedding::new(4, 2, 1);
        let _ = e.forward(&[4], 1, 1);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut e = Embedding::new(4, 2, 1);
        e.backward(&Tensor::zeros(&[1, 2, 1]));
    }
}
