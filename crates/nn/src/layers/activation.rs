//! Element-wise activation functions.
//!
//! Big-BranchNet uses ReLU after convolutions and hidden
//! fully-connected layers; Mini-BranchNet replaces them with Tanh to
//! bound activations for fixed-point quantization (paper Section V-B,
//! Optimization 4). The final prediction neuron uses Sigmoid.

use crate::tensor::Tensor;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Relu,
    Tanh,
    Sigmoid,
    BinarySte,
}

/// An element-wise activation layer.
#[derive(Debug, Clone)]
pub struct Activation {
    kind: Kind,
    cached_output: Option<Tensor>,
    cached_input: Option<Tensor>,
}

impl Activation {
    /// Rectified linear unit: `max(0, x)`.
    #[must_use]
    pub fn relu() -> Self {
        Self { kind: Kind::Relu, cached_output: None, cached_input: None }
    }

    /// Hyperbolic tangent, bounding outputs to `(-1, 1)`.
    #[must_use]
    pub fn tanh() -> Self {
        Self { kind: Kind::Tanh, cached_output: None, cached_input: None }
    }

    /// Logistic sigmoid, mapping logits to probabilities.
    #[must_use]
    pub fn sigmoid() -> Self {
        Self { kind: Kind::Sigmoid, cached_output: None, cached_input: None }
    }

    /// Binarization with a straight-through gradient estimator:
    /// forward emits `sign(x) ∈ {-1, +1}`, backward passes the
    /// gradient where `|x| ≤ 1` (hard-tanh STE). This is the
    /// quantization-aware-training activation for Mini-BranchNet's
    /// binarized convolution outputs — the network trains against the
    /// exact values the inference engine will produce.
    #[must_use]
    pub fn binary_ste() -> Self {
        Self { kind: Kind::BinarySte, cached_output: None, cached_input: None }
    }

    /// Applies the activation element-wise.
    #[must_use]
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut out = input.clone();
        match self.kind {
            Kind::Relu => out.data_mut().iter_mut().for_each(|x| *x = x.max(0.0)),
            Kind::Tanh => out.data_mut().iter_mut().for_each(|x| *x = x.tanh()),
            Kind::Sigmoid => {
                out.data_mut().iter_mut().for_each(|x| *x = 1.0 / (1.0 + (-*x).exp()));
            }
            Kind::BinarySte => {
                out.data_mut().iter_mut().for_each(|x| *x = if *x >= 0.0 { 1.0 } else { -1.0 });
            }
        }
        self.cached_input = Some(input.clone());
        self.cached_output = Some(out.clone());
        out
    }

    /// Chain-rules `grad_out` through the activation.
    ///
    /// # Panics
    ///
    /// Panics if called before [`forward`](Self::forward).
    #[must_use]
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let out = self.cached_output.as_ref().expect("backward before forward");
        let inp = self.cached_input.as_ref().expect("backward before forward");
        assert_eq!(grad_out.shape(), out.shape());
        let mut gin = grad_out.clone();
        match self.kind {
            Kind::Relu => {
                for (g, x) in gin.data_mut().iter_mut().zip(inp.data()) {
                    if *x <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            Kind::Tanh => {
                for (g, y) in gin.data_mut().iter_mut().zip(out.data()) {
                    *g *= 1.0 - y * y;
                }
            }
            Kind::Sigmoid => {
                for (g, y) in gin.data_mut().iter_mut().zip(out.data()) {
                    *g *= y * (1.0 - y);
                }
            }
            Kind::BinarySte => {
                for (g, x) in gin.data_mut().iter_mut().zip(inp.data()) {
                    if x.abs() > 1.0 {
                        *g = 0.0;
                    }
                }
            }
        }
        gin
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd_check(mut act: Activation) {
        let x = Tensor::from_vec(vec![-1.5, -0.3, 0.0, 0.4, 2.0], &[1, 5]);
        let y = act.forward(&x);
        let gin = act.backward(&y.clone());
        let eps = 1e-3_f32;
        for i in 0..x.len() {
            if x.data()[i].abs() < 1e-6 {
                continue; // skip ReLU's kink
            }
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp: f32 = act.forward(&xp).data().iter().map(|v| v * v).sum::<f32>() / 2.0;
            let lm: f32 = act.forward(&xm).data().iter().map(|v| v * v).sum::<f32>() / 2.0;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gin.data()[i]).abs() < 1e-2,
                "fd={num} analytic={} at {i}",
                gin.data()[i]
            );
        }
    }

    #[test]
    fn relu_gradcheck() {
        fd_check(Activation::relu());
    }

    #[test]
    fn tanh_gradcheck() {
        fd_check(Activation::tanh());
    }

    #[test]
    fn sigmoid_gradcheck() {
        fd_check(Activation::sigmoid());
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut r = Activation::relu();
        let y = r.forward(&Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]));
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn tanh_is_bounded() {
        let mut t = Activation::tanh();
        let y = t.forward(&Tensor::from_vec(vec![-100.0, 100.0], &[2]));
        assert!(y.data().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn binary_ste_emits_signs_and_gates_gradient() {
        let mut b = Activation::binary_ste();
        let y = b.forward(&Tensor::from_vec(vec![-2.0, -0.3, 0.0, 0.4, 3.0], &[5]));
        assert_eq!(y.data(), &[-1.0, -1.0, 1.0, 1.0, 1.0]);
        let g = b.backward(&Tensor::full(&[5], 1.0));
        // Gradient passes only inside the [-1, 1] clip region.
        assert_eq!(g.data(), &[0.0, 1.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn sigmoid_is_a_probability() {
        let mut s = Activation::sigmoid();
        let y = s.forward(&Tensor::from_vec(vec![-10.0, 0.0, 10.0], &[3]));
        assert!(y.data()[0] < 0.001);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data()[2] > 0.999);
    }
}
