//! Batch normalization over channels.
//!
//! The paper inserts batch norm after convolutions and fully-connected
//! layers (Section V-A) and later *fuses* it into the quantized
//! inference datapath (Section V-B, Optimization 4); the
//! [`BatchNorm1d::affine_form`] accessor exposes the fused scale/shift.

use crate::optim::ParamVisitor;
use crate::tensor::Tensor;

/// Batch normalization for `[batch, channels, seq]` activations
/// (normalizing each channel over `batch × seq`) or `[batch, features]`
/// activations (each feature over the batch).
#[derive(Debug, Clone)]
pub struct BatchNorm1d {
    gamma: Tensor,
    beta: Tensor,
    ggrad: Tensor,
    bgrad: Tensor,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    channels: usize,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
    shape: Vec<usize>,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer over `channels` channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    #[must_use]
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0);
        Self {
            gamma: Tensor::full(&[channels], 1.0),
            beta: Tensor::zeros(&[channels]),
            ggrad: Tensor::zeros(&[channels]),
            bgrad: Tensor::zeros(&[channels]),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            channels,
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    fn dims(&self, shape: &[usize]) -> (usize, usize) {
        match *shape {
            [batch, c] => {
                assert_eq!(c, self.channels, "channel mismatch");
                (batch, 1)
            }
            [batch, c, seq] => {
                assert_eq!(c, self.channels, "channel mismatch");
                (batch, seq)
            }
            _ => panic!("BatchNorm1d expects 2-D or 3-D input, got {shape:?}"),
        }
    }

    /// Normalizes `input`; `train` selects batch statistics (updating
    /// running averages) versus running statistics.
    #[must_use]
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let (batch, seq) = self.dims(input.shape());
        let n = (batch * seq) as f32;
        let x = input.data();
        let mut out = Tensor::zeros(input.shape());
        let mut xhat = Tensor::zeros(input.shape());
        let mut inv_std = vec![0.0f32; self.channels];
        for c in 0..self.channels {
            let (mean, var) = if train {
                let mut mean = 0.0f32;
                for b in 0..batch {
                    for s in 0..seq {
                        mean += x[(b * self.channels + c) * seq + s];
                    }
                }
                mean /= n;
                let mut var = 0.0f32;
                for b in 0..batch {
                    for s in 0..seq {
                        let d = x[(b * self.channels + c) * seq + s] - mean;
                        var += d * d;
                    }
                }
                var /= n;
                self.running_mean[c] =
                    (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean;
                self.running_var[c] =
                    (1.0 - self.momentum) * self.running_var[c] + self.momentum * var;
                (mean, var)
            } else {
                (self.running_mean[c], self.running_var[c])
            };
            let istd = 1.0 / (var + self.eps).sqrt();
            inv_std[c] = istd;
            let g = self.gamma.data()[c];
            let be = self.beta.data()[c];
            for b in 0..batch {
                for s in 0..seq {
                    let idx = (b * self.channels + c) * seq + s;
                    let xh = (x[idx] - mean) * istd;
                    xhat.data_mut()[idx] = xh;
                    out.data_mut()[idx] = g * xh + be;
                }
            }
        }
        if train {
            self.cache = Some(BnCache { xhat, inv_std, shape: input.shape().to_vec() });
        }
        out
    }

    /// Backpropagates through training-mode normalization.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding training-mode forward.
    #[must_use]
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward requires a train-mode forward");
        assert_eq!(grad_out.shape(), &cache.shape[..]);
        let (batch, seq) = self.dims(&cache.shape);
        let n = (batch * seq) as f32;
        let go = grad_out.data();
        let xh = cache.xhat.data();
        let mut gin = Tensor::zeros(grad_out.shape());
        for c in 0..self.channels {
            let mut sum_g = 0.0f32;
            let mut sum_gx = 0.0f32;
            for b in 0..batch {
                for s in 0..seq {
                    let idx = (b * self.channels + c) * seq + s;
                    sum_g += go[idx];
                    sum_gx += go[idx] * xh[idx];
                }
            }
            self.bgrad.data_mut()[c] += sum_g;
            self.ggrad.data_mut()[c] += sum_gx;
            let g = self.gamma.data()[c];
            let istd = cache.inv_std[c];
            for b in 0..batch {
                for s in 0..seq {
                    let idx = (b * self.channels + c) * seq + s;
                    gin.data_mut()[idx] = g * istd * (go[idx] - sum_g / n - xh[idx] * sum_gx / n);
                }
            }
        }
        gin
    }

    /// The fused affine form of inference-mode batch norm:
    /// `y = scale[c] * x + shift[c]` with
    /// `scale = γ/√(var+ε)`, `shift = β − γ·mean/√(var+ε)`.
    /// This is what gets folded into adjacent layers when building the
    /// quantized inference engine.
    #[must_use]
    pub fn affine_form(&self) -> (Vec<f32>, Vec<f32>) {
        let mut scale = vec![0.0f32; self.channels];
        let mut shift = vec![0.0f32; self.channels];
        for c in 0..self.channels {
            let istd = 1.0 / (self.running_var[c] + self.eps).sqrt();
            scale[c] = self.gamma.data()[c] * istd;
            shift[c] = self.beta.data()[c] - self.gamma.data()[c] * self.running_mean[c] * istd;
        }
        (scale, shift)
    }

    /// Channel count.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Trainable parameter count (γ and β).
    #[must_use]
    pub fn param_count(&self) -> usize {
        2 * self.channels
    }
}

impl ParamVisitor for BatchNorm1d {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.gamma, &mut self.ggrad);
        f(&mut self.beta, &mut self.bgrad);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_mode_standardizes_each_channel() {
        let mut bn = BatchNorm1d::new(2);
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0, 5.0, 6.0, 7.0, 40.0, 50.0, 60.0],
            &[2, 2, 3],
        );
        let y = bn.forward(&x, true);
        // Each channel of y should have ~zero mean, ~unit variance.
        for c in 0..2 {
            let vals: Vec<f32> = (0..2)
                .flat_map(|b| (0..3).map(move |s| (b, s)))
                .map(|(b, s)| y.data()[(b * 2 + c) * 3 + s])
                .collect();
            let mean: f32 = vals.iter().sum::<f32>() / 6.0;
            let var: f32 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 6.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut bn = BatchNorm1d::new(1);
        let x = Tensor::from_vec(vec![4.0, 6.0], &[2, 1]);
        // Warm running stats.
        for _ in 0..200 {
            let _ = bn.forward(&x, true);
        }
        let y = bn.forward(&x, false);
        // Running mean ≈ 5, var ≈ 1: outputs ≈ (4-5)/1, (6-5)/1.
        assert!((y.data()[0] + 1.0).abs() < 0.1, "{}", y.data()[0]);
        assert!((y.data()[1] - 1.0).abs() < 0.1, "{}", y.data()[1]);
    }

    #[test]
    fn affine_form_matches_eval_forward() {
        let mut bn = BatchNorm1d::new(2);
        let x = Tensor::from_vec(vec![1.0, -3.0, 2.0, 8.0, 0.5, -1.0, 3.0, 9.0], &[2, 2, 2]);
        for _ in 0..50 {
            let _ = bn.forward(&x, true);
        }
        let y = bn.forward(&x, false);
        let (scale, shift) = bn.affine_form();
        for b in 0..2 {
            for c in 0..2 {
                for s in 0..2 {
                    let idx = (b * 2 + c) * 2 + s;
                    let expect = scale[c] * x.data()[idx] + shift[c];
                    assert!((y.data()[idx] - expect).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut bn = BatchNorm1d::new(2);
        bn.gamma.data_mut().copy_from_slice(&[1.5, 0.7]);
        bn.beta.data_mut().copy_from_slice(&[0.2, -0.1]);
        let x = Tensor::from_vec(
            vec![0.3, -1.2, 0.8, 2.0, -0.5, 1.1, 0.0, 0.9, -1.4, 0.6, 1.8, -0.2],
            &[2, 2, 3],
        );
        let y = bn.forward(&x, true);
        let gin = bn.backward(&y.clone());
        let eps = 1e-3_f32;
        let loss = |bn: &mut BatchNorm1d, x: &Tensor| -> f32 {
            bn.forward(x, true).data().iter().map(|v| v * v).sum::<f32>() / 2.0
        };
        for &i in &[0usize, 3, 7, 11] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&mut bn, &xp) - loss(&mut bn, &xm)) / (2.0 * eps);
            assert!(
                (num - gin.data()[i]).abs() < 3e-2,
                "bn input grad mismatch at {i}: fd={num} analytic={}",
                gin.data()[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn rejects_wrong_channel_count() {
        let mut bn = BatchNorm1d::new(3);
        let _ = bn.forward(&Tensor::zeros(&[1, 2, 4]), true);
    }
}
