//! 1-D convolution over the branch-history axis.
//!
//! Each filter learns to fire on a specific pattern of `k` neighboring
//! history entries (paper Section III-A: "each filter identifies the
//! presence of a specific correlated branch pattern in the history").

use crate::init::kaiming_uniform;
use crate::optim::ParamVisitor;
use crate::tensor::Tensor;

/// 1-D convolution with stride 1 and zero "same" padding, mapping
/// `[batch, in_channels, seq]` to `[batch, out_channels, seq]`.
#[derive(Debug, Clone)]
pub struct Conv1d {
    weight: Tensor, // [out, in, k]
    bias: Tensor,   // [out]
    wgrad: Tensor,
    bgrad: Tensor,
    in_channels: usize,
    out_channels: usize,
    k: usize,
    pad: usize,
    cached_input: Option<Tensor>,
}

impl Conv1d {
    /// Creates a same-padded conv layer with an odd kernel width `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is even or any dimension is zero.
    #[must_use]
    pub fn new(in_channels: usize, out_channels: usize, k: usize, seed: u64) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && k > 0);
        assert!(k % 2 == 1, "same padding requires an odd kernel width");
        let fan_in = in_channels * k;
        Self {
            weight: kaiming_uniform(&[out_channels, in_channels, k], fan_in, seed),
            bias: Tensor::zeros(&[out_channels]),
            wgrad: Tensor::zeros(&[out_channels, in_channels, k]),
            bgrad: Tensor::zeros(&[out_channels]),
            in_channels,
            out_channels,
            k,
            pad: (k - 1) / 2,
            cached_input: None,
        }
    }

    /// Convolves `input` (`[batch, in, seq]`) into `[batch, out, seq]`.
    ///
    /// # Panics
    ///
    /// Panics on a shape mismatch.
    #[must_use]
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let &[batch, cin, seq] = input.shape() else {
            panic!("Conv1d expects [batch, in, seq], got {:?}", input.shape())
        };
        assert_eq!(cin, self.in_channels);
        let mut out = Tensor::zeros(&[batch, self.out_channels, seq]);
        let w = self.weight.data();
        let x = input.data();
        {
            let o = out.data_mut();
            for b in 0..batch {
                for c in 0..self.out_channels {
                    let obase = (b * self.out_channels + c) * seq;
                    for s in 0..seq {
                        let mut acc = self.bias.data()[c];
                        for e in 0..cin {
                            let wbase = (c * cin + e) * self.k;
                            let xbase = (b * cin + e) * seq;
                            for t in 0..self.k {
                                let src = s + t;
                                if src >= self.pad && src - self.pad < seq {
                                    acc += w[wbase + t] * x[xbase + src - self.pad];
                                }
                            }
                        }
                        o[obase + s] = acc;
                    }
                }
            }
        }
        self.cached_input = Some(input.clone());
        out
    }

    /// Backpropagates `grad_out` (`[batch, out, seq]`), accumulating
    /// weight/bias gradients and returning the input gradient.
    ///
    /// # Panics
    ///
    /// Panics if called before [`forward`](Self::forward).
    #[must_use]
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward before forward");
        let &[batch, cin, seq] = input.shape() else { unreachable!() };
        assert_eq!(grad_out.shape(), &[batch, self.out_channels, seq]);
        let mut gin = Tensor::zeros(&[batch, cin, seq]);
        let x = input.data();
        let w = self.weight.data();
        let go = grad_out.data();
        {
            let wg = self.wgrad.data_mut();
            let bg = self.bgrad.data_mut();
            let gi = gin.data_mut();
            for b in 0..batch {
                for (c, bgc) in bg.iter_mut().enumerate() {
                    let obase = (b * self.out_channels + c) * seq;
                    for s in 0..seq {
                        let g = go[obase + s];
                        if g == 0.0 {
                            continue;
                        }
                        *bgc += g;
                        for e in 0..cin {
                            let wbase = (c * cin + e) * self.k;
                            let xbase = (b * cin + e) * seq;
                            for t in 0..self.k {
                                let src = s + t;
                                if src >= self.pad && src - self.pad < seq {
                                    wg[wbase + t] += g * x[xbase + src - self.pad];
                                    gi[xbase + src - self.pad] += g * w[wbase + t];
                                }
                            }
                        }
                    }
                }
            }
        }
        gin
    }

    /// The convolution filters (`[out, in, k]`).
    #[must_use]
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The per-output-channel biases.
    #[must_use]
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Kernel width.
    #[must_use]
    pub fn kernel_width(&self) -> usize {
        self.k
    }

    /// Output channel count.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Trainable parameter count.
    #[must_use]
    pub fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }
}

impl ParamVisitor for Conv1d {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.weight, &mut self.wgrad);
        f(&mut self.bias, &mut self.bgrad);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check on a tiny conv.
    #[test]
    fn gradients_match_finite_differences() {
        let mut conv = Conv1d::new(2, 3, 3, 7);
        let x =
            Tensor::from_vec((0..2 * 2 * 5).map(|i| (i as f32 * 0.37).sin()).collect(), &[2, 2, 5]);
        // Scalar objective: sum of outputs squared / 2.
        let y = conv.forward(&x);
        let grad_out = y.clone();
        let gin = conv.backward(&grad_out);

        let eps = 1e-3_f32;
        let loss = |conv: &mut Conv1d, x: &Tensor| -> f32 {
            let y = conv.forward(x);
            y.data().iter().map(|v| v * v).sum::<f32>() / 2.0
        };

        // Check input gradient at a few positions.
        for &i in &[0usize, 7, 13, 19] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&mut conv, &xp) - loss(&mut conv, &xm)) / (2.0 * eps);
            assert!(
                (num - gin.data()[i]).abs() < 2e-2,
                "input grad mismatch at {i}: fd={num} analytic={}",
                gin.data()[i]
            );
        }

        // Check a few weight gradients.
        let mut wg = Tensor::zeros(&[1]);
        conv.visit_params(&mut |_, g| {
            if g.shape().len() == 3 {
                wg = g.clone();
            }
        });
        // Recompute analytic gradient freshly (cached input was clobbered
        // by the loss() calls above, but x is identical).
        for &i in &[0usize, 5, 11] {
            let orig = conv.weight.data()[i];
            conv.weight.data_mut()[i] = orig + eps;
            let lp = loss(&mut conv, &x);
            conv.weight.data_mut()[i] = orig - eps;
            let lm = loss(&mut conv, &x);
            conv.weight.data_mut()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - wg.data()[i]).abs() < 5e-2,
                "weight grad mismatch at {i}: fd={num} analytic={}",
                wg.data()[i]
            );
        }
    }

    #[test]
    fn identity_kernel_passes_signal_through() {
        let mut conv = Conv1d::new(1, 1, 1, 0);
        conv.weight.data_mut()[0] = 1.0;
        conv.bias.data_mut()[0] = 0.0;
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[1, 1, 3]);
        let y = conv.forward(&x);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn same_padding_preserves_length() {
        let mut conv = Conv1d::new(3, 4, 7, 9);
        let x = Tensor::zeros(&[2, 3, 10]);
        assert_eq!(conv.forward(&x).shape(), &[2, 4, 10]);
    }

    #[test]
    #[should_panic(expected = "odd kernel")]
    fn even_kernel_rejected() {
        let _ = Conv1d::new(1, 1, 4, 0);
    }
}
