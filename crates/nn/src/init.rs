//! Seeded weight initializers. All randomness flows through caller-
//! provided seeds so experiments are reproducible bit-for-bit.

use crate::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Suits Tanh/Sigmoid layers.
#[must_use]
pub fn xavier_uniform(shape: &[usize], fan_in: usize, fan_out: usize, seed: u64) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
    uniform(shape, -a, a, seed)
}

/// Kaiming/He uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / fan_in)`. Suits ReLU layers.
#[must_use]
pub fn kaiming_uniform(shape: &[usize], fan_in: usize, seed: u64) -> Tensor {
    let a = (6.0 / fan_in as f64).sqrt() as f32;
    uniform(shape, -a, a, seed)
}

/// Uniform initialization over `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
#[must_use]
pub fn uniform(shape: &[usize], lo: f32, hi: f32, seed: u64) -> Tensor {
    assert!(lo < hi, "empty initialization range");
    let mut rng = SmallRng::seed_from_u64(seed);
    let n: usize = shape.iter().product();
    Tensor::from_vec((0..n).map(|_| rng.gen_range(lo..hi)).collect(), shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_weights() {
        let a = xavier_uniform(&[4, 4], 4, 4, 42);
        let b = xavier_uniform(&[4, 4], 4, 4, 42);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn different_seed_different_weights() {
        let a = xavier_uniform(&[4, 4], 4, 4, 1);
        let b = xavier_uniform(&[4, 4], 4, 4, 2);
        assert_ne!(a.data(), b.data());
    }

    #[test]
    fn xavier_respects_bound() {
        let t = xavier_uniform(&[100], 8, 8, 7);
        let bound = (6.0f32 / 16.0).sqrt();
        assert!(t.data().iter().all(|x| x.abs() <= bound));
        // And actually spreads out.
        assert!(t.max_abs() > bound * 0.5);
    }

    #[test]
    fn kaiming_scales_with_fan_in() {
        let wide = kaiming_uniform(&[100], 600, 3);
        let narrow = kaiming_uniform(&[100], 6, 3);
        assert!(narrow.max_abs() > wide.max_abs());
    }
}
