//! A minimal, from-scratch neural-network library.
//!
//! This crate implements exactly the machinery BranchNet needs —
//! nothing more — with hand-written forward and backward passes:
//!
//! * [`tensor::Tensor`] — a flat `f32` buffer with a shape.
//! * [`layers`] — [`Embedding`](layers::Embedding),
//!   [`Conv1d`](layers::Conv1d), [`BatchNorm1d`](layers::BatchNorm1d),
//!   [`SumPool1d`](layers::SumPool1d), [`Dense`](layers::Dense) and the
//!   [`Activation`](layers::Activation) functions (ReLU / Tanh /
//!   Sigmoid).
//! * [`optim`] — [`Sgd`](optim::Sgd) with momentum and
//!   [`Adam`](optim::Adam), driven through the
//!   [`ParamVisitor`](optim::ParamVisitor) trait.
//! * [`loss`] — binary cross-entropy with logits, the branch-direction
//!   training objective.
//! * [`init`] — seeded Xavier/Kaiming initializers so every training
//!   run in the workspace is deterministic.
//!
//! Every layer's backward pass is validated against finite differences
//! in its unit tests, so models composed from these layers can trust
//! their gradients.
//!
//! # Example: fitting XOR with two dense layers
//!
//! ```
//! use branchnet_nn::layers::{Activation, Dense};
//! use branchnet_nn::loss::bce_with_logits;
//! use branchnet_nn::optim::{Adam, ParamVisitor};
//! use branchnet_nn::tensor::Tensor;
//!
//! struct Xor {
//!     l1: Dense,
//!     act: Activation,
//!     l2: Dense,
//! }
//! impl ParamVisitor for Xor {
//!     fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
//!         self.l1.visit_params(f);
//!         self.l2.visit_params(f);
//!     }
//! }
//!
//! let mut m = Xor {
//!     l1: Dense::new(2, 8, 1),
//!     act: Activation::tanh(),
//!     l2: Dense::new(8, 1, 2),
//! };
//! let x = Tensor::from_vec(vec![0., 0., 0., 1., 1., 0., 1., 1.], &[4, 2]);
//! let y = [0.0f32, 1.0, 1.0, 0.0];
//! let mut opt = Adam::new(0.05);
//! for _ in 0..300 {
//!     let h = m.l1.forward(&x);
//!     let h = m.act.forward(&h);
//!     let logits = m.l2.forward(&h);
//!     let (loss, grad) = bce_with_logits(&logits, &y);
//!     let g = m.l2.backward(&grad);
//!     let g = m.act.backward(&g);
//!     let _ = m.l1.backward(&g);
//!     opt.step(&mut m);
//!     m.visit_params(&mut |_, g| g.fill(0.0));
//!     if loss < 0.05 { break; }
//! }
//! let h = m.act.forward(&m.l1.forward(&x));
//! let out = m.l2.forward(&h);
//! assert!(out.data()[0] < 0.0 && out.data()[1] > 0.0);
//! ```

pub mod init;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod tensor;

pub use layers::{Activation, BatchNorm1d, Conv1d, Dense, Embedding, SumPool1d};
pub use loss::bce_with_logits;
pub use optim::{Adam, ParamVisitor, Sgd};
pub use tensor::Tensor;
