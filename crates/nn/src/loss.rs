//! Training objectives.

use crate::tensor::Tensor;

/// Binary cross-entropy on raw logits (numerically stable), the
/// branch-direction objective: labels are 1.0 for taken, 0.0 for
/// not-taken.
///
/// Returns `(mean loss, gradient w.r.t. logits)`; the gradient is
/// already divided by the batch size.
///
/// # Panics
///
/// Panics if `logits` is not `[batch, 1]`-shaped (or flat `[batch]`)
/// or `labels.len()` differs from the batch size.
///
/// ```
/// use branchnet_nn::loss::bce_with_logits;
/// use branchnet_nn::tensor::Tensor;
/// let logits = Tensor::from_vec(vec![10.0, -10.0], &[2, 1]);
/// let (loss, _grad) = bce_with_logits(&logits, &[1.0, 0.0]);
/// assert!(loss < 1e-3); // confident and correct
/// ```
#[must_use]
pub fn bce_with_logits(logits: &Tensor, labels: &[f32]) -> (f32, Tensor) {
    let batch = match *logits.shape() {
        [b] => b,
        [b, 1] => b,
        _ => panic!("bce_with_logits expects [batch] or [batch, 1], got {:?}", logits.shape()),
    };
    assert_eq!(labels.len(), batch, "one label per logit required");
    let mut grad = Tensor::zeros(logits.shape());
    let mut loss = 0.0f64;
    for ((g, &z), &y) in grad.data_mut().iter_mut().zip(logits.data()).zip(labels) {
        debug_assert!((0.0..=1.0).contains(&y), "labels must be probabilities");
        // log(1 + e^-|z|) + max(z, 0) - z*y  (stable form)
        loss += f64::from(z.max(0.0) - z * y) + f64::from((-z.abs()).exp()).ln_1p();
        let p = 1.0 / (1.0 + (-z).exp());
        *g = (p - y) / batch as f32;
    }
    ((loss / batch as f64) as f32, grad)
}

/// Classification accuracy of logits against binary labels.
///
/// # Panics
///
/// Panics on length mismatch.
#[must_use]
pub fn logit_accuracy(logits: &Tensor, labels: &[f32]) -> f64 {
    assert_eq!(logits.len(), labels.len());
    if labels.is_empty() {
        return 1.0;
    }
    let correct =
        logits.data().iter().zip(labels).filter(|(z, y)| (**z >= 0.0) == (**y >= 0.5)).count();
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confident_correct_prediction_has_tiny_loss() {
        let logits = Tensor::from_vec(vec![20.0, -20.0], &[2]);
        let (loss, _) = bce_with_logits(&logits, &[1.0, 0.0]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn confident_wrong_prediction_has_large_loss() {
        let logits = Tensor::from_vec(vec![20.0], &[1]);
        let (loss, _) = bce_with_logits(&logits, &[0.0]);
        assert!(loss > 10.0);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Tensor::from_vec(vec![0.3, -1.2, 2.5], &[3, 1]);
        let labels = [1.0, 0.0, 0.0];
        let (_, grad) = bce_with_logits(&logits, &labels);
        let eps = 1e-3_f32;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (fp, _) = bce_with_logits(&lp, &labels);
            let (fm, _) = bce_with_logits(&lm, &labels);
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - grad.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn loss_is_symmetric_under_label_flip() {
        let a = bce_with_logits(&Tensor::from_vec(vec![1.7], &[1]), &[1.0]).0;
        let b = bce_with_logits(&Tensor::from_vec(vec![-1.7], &[1]), &[0.0]).0;
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn extreme_logits_do_not_overflow() {
        let logits = Tensor::from_vec(vec![1e4, -1e4], &[2]);
        let (loss, grad) = bce_with_logits(&logits, &[0.0, 1.0]);
        assert!(loss.is_finite());
        assert!(grad.data().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn accuracy_counts_sign_agreement() {
        let logits = Tensor::from_vec(vec![1.0, -1.0, 2.0, -2.0], &[4]);
        let acc = logit_accuracy(&logits, &[1.0, 0.0, 0.0, 1.0]);
        assert!((acc - 0.5).abs() < 1e-9);
    }
}
