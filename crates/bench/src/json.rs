//! Minimal JSON support for machine-readable experiment reports.
//!
//! The workspace's `serde` is an offline vendored stub (annotations
//! only, no serialization code), so the report layer carries its own
//! small JSON value type, writer, and parser. Two properties matter
//! more than generality:
//!
//! * **Determinism** — objects preserve insertion order and floats
//!   print via Rust's shortest-round-trip `Display`, so the same
//!   report always renders to the same bytes (the determinism CI job
//!   diffs report files byte-for-byte across thread counts).
//! * **Losslessness** — every `f64` parses back to the identical bits
//!   and `u64` branch addresses travel as hex strings (a JSON number
//!   would corrupt values above 2^53).

use std::fmt::Write as _;

/// A JSON value. Objects keep insertion order so rendering is
/// deterministic and diffs stay readable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Error from [`Json::parse`] or a [`FromJson`] conversion.
pub type JsonError = String;

/// Serialization into [`Json`].
pub trait ToJson {
    /// The JSON form of `self`.
    fn to_json(&self) -> Json;
}

/// Deserialization out of [`Json`].
pub trait FromJson: Sized {
    /// Reconstructs `Self`, rejecting missing or mistyped fields.
    fn from_json(json: &Json) -> Result<Self, JsonError>;
}

impl Json {
    /// Builds an object from `(key, value)` pairs in order.
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The field `key`, or an error naming the missing key.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key).ok_or_else(|| format!("missing field {key:?}"))
    }

    /// This value as a finite `f64`.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(n) => Ok(*n),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    /// This value as a non-negative integer.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && n >= 0.0 && n <= 2f64.powi(53) {
            Ok(n as usize)
        } else {
            Err(format!("expected non-negative integer, got {n}"))
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(format!("expected array, got {other:?}")),
        }
    }

    /// A `u64` stored as a hex string (`"0x1f"`), lossless above 2^53.
    pub fn as_hex_u64(&self) -> Result<u64, JsonError> {
        let s = self.as_str()?;
        let digits = s.strip_prefix("0x").ok_or_else(|| format!("expected 0x-hex, got {s:?}"))?;
        u64::from_str_radix(digits, 16).map_err(|e| format!("bad hex {s:?}: {e}"))
    }

    /// Wraps a `u64` as a hex string.
    #[must_use]
    pub fn hex(value: u64) -> Json {
        Json::Str(format!("{value:#x}"))
    }

    /// Renders with 2-space indentation and a trailing newline.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Rust's `Display` prints the shortest string that
                    // parses back to the identical f64.
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if fields.is_empty() => out.push_str("{}"),
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the subset this writer emits, plus
    /// standard escapes and exponent-form numbers).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }
}

/// Serializes a slice element-wise into a JSON array.
#[must_use]
pub fn arr_to_json<T: ToJson>(items: &[T]) -> Json {
    Json::Arr(items.iter().map(ToJson::to_json).collect())
}

/// Deserializes a JSON array element-wise.
pub fn arr_from_json<T: FromJson>(json: &Json) -> Result<Vec<T>, JsonError> {
    json.as_arr()?.iter().map(T::from_json).collect()
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\n' | b'\t' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Result<u8, JsonError> {
        self.bytes.get(self.pos).copied().ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek()? {
            b'n' => self.literal("null", Json::Null),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other as char, self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek()?, b'"' | b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("invalid utf-8 in string: {e}"))?,
            );
            if self.peek()? == b'"' {
                self.pos += 1;
                return Ok(out);
            }
            self.pos += 1; // backslash
            match self.peek()? {
                b'"' => out.push('"'),
                b'\\' => out.push('\\'),
                b'/' => out.push('/'),
                b'n' => out.push('\n'),
                b't' => out.push('\t'),
                b'r' => out.push('\r'),
                b'b' => out.push('\u{8}'),
                b'f' => out.push('\u{c}'),
                b'u' => {
                    let hex = self
                        .bytes
                        .get(self.pos + 1..self.pos + 5)
                        .ok_or_else(|| "truncated \\u escape".to_string())?;
                    let code = u32::from_str_radix(
                        std::str::from_utf8(hex).map_err(|e| format!("bad \\u escape: {e}"))?,
                        16,
                    )
                    .map_err(|e| format!("bad \\u escape: {e}"))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| format!("invalid code point {code:#x}"))?,
                    );
                    self.pos += 4;
                }
                other => return Err(format!("bad escape \\{:?}", other as char)),
            }
            self.pos += 1;
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected , or ] got {:?}", other as char)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected , or }} got {:?}", other as char)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip_preserves_structure() {
        let doc = Json::obj(vec![
            ("name", Json::Str("fig09".into())),
            ("pi", Json::Num(std::f64::consts::PI)),
            ("neg", Json::Num(-0.001)),
            ("int", Json::Num(42.0)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("pc", Json::hex(0xFFFF_FFFF_FFFF_FFFF)),
            ("rows", Json::Arr(vec![Json::Num(1.5), Json::Str("a\n\"b\\".into())])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, doc);
        // Rendering is a fixed point: parse(render(x)).render() == render(x).
        assert_eq!(back.render(), text);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[0.1 + 0.2, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.2250738585072014e-308] {
            let text = Json::Num(x).render();
            let back = Json::parse(&text).expect("parses").as_f64().expect("number");
            assert_eq!(back.to_bits(), x.to_bits(), "{x} reprinted as {text}");
        }
    }

    #[test]
    fn hex_u64_is_lossless_above_2_to_53() {
        let pc = (1u64 << 53) + 1;
        let json = Json::hex(pc);
        assert_eq!(json.as_hex_u64().expect("hex"), pc);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "{", "[1,", "\"unterminated", "nul", "1.2.3", "{}x"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parse_accepts_exponent_numbers() {
        assert_eq!(Json::parse("1e3").expect("parses"), Json::Num(1000.0));
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null\n");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null\n");
    }
}
