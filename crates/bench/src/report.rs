//! Machine-readable experiment reports.
//!
//! Every experiment in [`crate::experiments`] converts losslessly into
//! a versioned JSON artifact; a run of `reproduce --json <dir>` (or
//! any `fig*`/`table*` binary with `--json <dir>`) writes one artifact
//! per experiment plus a top-level `manifest.json` carrying the run's
//! provenance: scale, thread count, per-section wall-clock (with
//! per-section gauntlet pass/lane counters, see [`crate::metrics`]),
//! and [`ArtifactCache`](crate::cache::ArtifactCache) hit/miss
//! counters.
//!
//! The experiment artifacts are **deterministic** — identical at any
//! `BRANCHNET_THREADS` (PR 1's ordered-merge guarantee) — so they can
//! be diffed byte-for-byte. `manifest.json` is the *only* artifact
//! with nondeterministic fields (wall-clock, thread count); the
//! determinism CI job and the baseline-staleness check exclude it.
//!
//! `fidelity_gate` consumes these artifacts: see [`crate::gate`] for
//! the tolerance policy that turns a diff into a pass/fail verdict.

use crate::cache::{ArtifactCache, CacheStats};
use crate::experiments::fig01_headroom::Fig01Row;
use crate::experiments::fig04_motivating::Fig04Point;
use crate::experiments::fig09_headroom_mpki::Fig09Row;
use crate::experiments::fig10_branch_accuracy::Fig10Result;
use crate::experiments::fig11_practical::Fig11Row;
use crate::experiments::fig12_trainset::Fig12Sweep;
use crate::experiments::fig13_budget::Fig13Point;
use crate::experiments::mini_pack::MiniPackReport;
use crate::experiments::tables::Table4Report;
use crate::json::{arr_from_json, arr_to_json, FromJson, Json, JsonError, ToJson};
use crate::parallel::thread_count;
use crate::Scale;
use branchnet_core::degradation::DegradationSnapshot;
use branchnet_workloads::spec::Benchmark;
use std::path::{Path, PathBuf};

/// Version of the report JSON schema. Bump on any change to artifact
/// field names, metric names, or file layout, and regenerate the
/// golden baselines (`scripts/regen_baselines.sh`) in the same PR.
///
/// v2: `fig13` points gained a `lane` field (mini-pack sweep vs
/// runtime-baseline reference lanes); `table4` grew reference rungs.
pub const SCHEMA_VERSION: u64 = 2;

/// File name of the run manifest inside a `--json` directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Serializes a [`Benchmark`] as its short name.
#[must_use]
pub fn bench_to_json(bench: Benchmark) -> Json {
    Json::Str(bench.name().to_string())
}

/// Parses a [`Benchmark`] from its short name.
pub fn bench_from_json(json: &Json) -> Result<Benchmark, JsonError> {
    let name = json.as_str()?;
    Benchmark::from_name(name).ok_or_else(|| format!("unknown benchmark {name:?}"))
}

/// The structured payload of one experiment artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentData {
    /// A fully-rendered text table (Tables I–III, whose content is
    /// derived from static configuration; any change is a drift).
    Text(String),
    /// Fig. 1 rows.
    Fig01(Vec<Fig01Row>),
    /// Fig. 4 points.
    Fig04(Vec<Fig04Point>),
    /// Fig. 9 rows.
    Fig09(Vec<Fig09Row>),
    /// Fig. 10 results (one per benchmark).
    Fig10(Vec<Fig10Result>),
    /// Fig. 11 rows.
    Fig11(Vec<Fig11Row>),
    /// Fig. 12 sweeps (one per benchmark).
    Fig12(Vec<Fig12Sweep>),
    /// Fig. 13 points.
    Fig13(Vec<Fig13Point>),
    /// Table IV ladder.
    Table4(Table4Report),
    /// Mini-BranchNet pack compositions (one per benchmark).
    MiniPack(Vec<MiniPackReport>),
}

impl ExperimentData {
    /// Discriminator stored in the artifact (decoupled from the file
    /// name so renaming an artifact is not a silent schema change).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ExperimentData::Text(_) => "text",
            ExperimentData::Fig01(_) => "fig01",
            ExperimentData::Fig04(_) => "fig04",
            ExperimentData::Fig09(_) => "fig09",
            ExperimentData::Fig10(_) => "fig10",
            ExperimentData::Fig11(_) => "fig11",
            ExperimentData::Fig12(_) => "fig12",
            ExperimentData::Fig13(_) => "fig13",
            ExperimentData::Table4(_) => "table4",
            ExperimentData::MiniPack(_) => "mini_pack",
        }
    }

    fn payload(&self) -> Json {
        match self {
            ExperimentData::Text(s) => Json::Str(s.clone()),
            ExperimentData::Fig01(rows) => arr_to_json(rows),
            ExperimentData::Fig04(rows) => arr_to_json(rows),
            ExperimentData::Fig09(rows) => arr_to_json(rows),
            ExperimentData::Fig10(rows) => arr_to_json(rows),
            ExperimentData::Fig11(rows) => arr_to_json(rows),
            ExperimentData::Fig12(rows) => arr_to_json(rows),
            ExperimentData::Fig13(rows) => arr_to_json(rows),
            ExperimentData::Table4(t) => t.to_json(),
            ExperimentData::MiniPack(rows) => arr_to_json(rows),
        }
    }

    fn from_payload(kind: &str, payload: &Json) -> Result<Self, JsonError> {
        Ok(match kind {
            "text" => ExperimentData::Text(payload.as_str()?.to_string()),
            "fig01" => ExperimentData::Fig01(arr_from_json(payload)?),
            "fig04" => ExperimentData::Fig04(arr_from_json(payload)?),
            "fig09" => ExperimentData::Fig09(arr_from_json(payload)?),
            "fig10" => ExperimentData::Fig10(arr_from_json(payload)?),
            "fig11" => ExperimentData::Fig11(arr_from_json(payload)?),
            "fig12" => ExperimentData::Fig12(arr_from_json(payload)?),
            "fig13" => ExperimentData::Fig13(arr_from_json(payload)?),
            "table4" => ExperimentData::Table4(Table4Report::from_json(payload)?),
            "mini_pack" => ExperimentData::MiniPack(arr_from_json(payload)?),
            other => return Err(format!("unknown experiment kind {other:?}")),
        })
    }
}

/// One experiment artifact: a named, versioned [`ExperimentData`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Schema version the artifact was written with.
    pub schema_version: u64,
    /// Artifact name (also its file stem, e.g. `fig09`).
    pub name: String,
    /// The experiment's rows.
    pub data: ExperimentData,
}

impl ExperimentReport {
    /// Wraps experiment data under the current schema version.
    #[must_use]
    pub fn new(name: &str, data: ExperimentData) -> Self {
        Self { schema_version: SCHEMA_VERSION, name: name.to_string(), data }
    }

    /// The artifact's file name (`<name>.json`).
    #[must_use]
    pub fn file_name(&self) -> String {
        format!("{}.json", self.name)
    }
}

impl ToJson for ExperimentReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::Num(self.schema_version as f64)),
            ("name", Json::Str(self.name.clone())),
            ("kind", Json::Str(self.data.kind().to_string())),
            ("data", self.data.payload()),
        ])
    }
}

impl FromJson for ExperimentReport {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let schema_version = json.field("schema_version")?.as_usize()? as u64;
        let name = json.field("name")?.as_str()?.to_string();
        let kind = json.field("kind")?.as_str()?;
        let data = ExperimentData::from_payload(kind, json.field("data")?)?;
        Ok(Self { schema_version, name, data })
    }
}

/// Gauntlet work attributed to one `reproduce` section: how many
/// single-pass multi-predictor trace walks it issued, the total
/// predictor-lanes they carried (the trace walks a one-predictor-at-a-
/// time harness would have needed), and the summed in-pass wall-clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GauntletUsage {
    /// Gauntlet passes (trace walks) in this section.
    pub passes: u64,
    /// Total predictor-lanes across those passes.
    pub lanes: u64,
    /// Summed wall-clock inside the passes, in milliseconds
    /// (nondeterministic, like [`SectionTime::seconds`]).
    pub millis: u64,
}

impl GauntletUsage {
    /// Converts a counter delta into a manifest entry; `None` when the
    /// section ran no gauntlet passes (so the field stays absent).
    #[must_use]
    pub fn from_delta(delta: &crate::metrics::GauntletSnapshot) -> Option<Self> {
        (delta.passes > 0).then(|| Self {
            passes: delta.passes,
            lanes: delta.lanes,
            millis: delta.millis(),
        })
    }
}

impl ToJson for GauntletUsage {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("passes", Json::Num(self.passes as f64)),
            ("lanes", Json::Num(self.lanes as f64)),
            ("millis", Json::Num(self.millis as f64)),
        ])
    }
}

impl FromJson for GauntletUsage {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let num = |k: &str| json.field(k).and_then(|v| v.as_usize().map(|n| n as u64));
        Ok(Self { passes: num("passes")?, lanes: num("lanes")?, millis: num("millis")? })
    }
}

/// Wall-clock of one `reproduce` section.
#[derive(Debug, Clone, PartialEq)]
pub struct SectionTime {
    /// Section name as printed by `reproduce` (e.g. `Fig. 9`).
    pub name: String,
    /// Elapsed seconds.
    pub seconds: f64,
    /// Gauntlet counters for the section, when it drove any
    /// multi-predictor passes. Optional in the JSON so manifests
    /// written before this field existed still parse.
    pub gauntlet: Option<GauntletUsage>,
}

impl ToJson for SectionTime {
    fn to_json(&self) -> Json {
        let mut fields =
            vec![("name", Json::Str(self.name.clone())), ("seconds", Json::Num(self.seconds))];
        if let Some(g) = &self.gauntlet {
            fields.push(("gauntlet", g.to_json()));
        }
        Json::obj(fields)
    }
}

impl FromJson for SectionTime {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            name: json.field("name")?.as_str()?.to_string(),
            seconds: json.field("seconds")?.as_f64()?,
            gauntlet: json.get("gauntlet").map(GauntletUsage::from_json).transpose()?,
        })
    }
}

impl ToJson for CacheStats {
    fn to_json(&self) -> Json {
        let num = |n: u64| Json::Num(n as f64);
        Json::obj(vec![
            ("trace_hits", num(self.trace_hits)),
            ("trace_misses", num(self.trace_misses)),
            ("pack_hits", num(self.pack_hits)),
            ("pack_misses", num(self.pack_misses)),
            ("menu_hits", num(self.menu_hits)),
            ("menu_misses", num(self.menu_misses)),
            ("evictions", num(self.evictions)),
        ])
    }
}

impl FromJson for CacheStats {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let num = |k: &str| json.field(k).and_then(|v| v.as_usize().map(|n| n as u64));
        // `evictions` postdates the first manifests; absent means 0 so
        // older runs still parse.
        let opt = |k: &str| json.get(k).map_or(Ok(0), |v| v.as_usize().map(|n| n as u64));
        Ok(Self {
            trace_hits: num("trace_hits")?,
            trace_misses: num("trace_misses")?,
            pack_hits: num("pack_hits")?,
            pack_misses: num("pack_misses")?,
            menu_hits: num("menu_hits")?,
            menu_misses: num("menu_misses")?,
            evictions: opt("evictions")?,
        })
    }
}

impl ToJson for DegradationSnapshot {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("packs_rejected", Json::Num(self.packs_rejected as f64)),
            ("trainings_retried", Json::Num(self.trainings_retried as f64)),
        ])
    }
}

impl FromJson for DegradationSnapshot {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let num = |k: &str| json.field(k).and_then(|v| v.as_usize().map(|n| n as u64));
        Ok(Self {
            packs_rejected: num("packs_rejected")?,
            trainings_retried: num("trainings_retried")?,
        })
    }
}

/// Provenance of one `--json` run: everything needed to interpret (and
/// gate) the experiment artifacts next to it. The timing and thread
/// fields are intentionally nondeterministic; every other artifact in
/// the directory is byte-deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Schema version of the whole run.
    pub schema_version: u64,
    /// `quick` or `full`.
    pub scale: String,
    /// Worker threads the run used (does not affect artifact bytes).
    pub threads: usize,
    /// Experiment artifact file names, in run order.
    pub artifacts: Vec<String>,
    /// Per-section wall-clock, in run order.
    pub sections: Vec<SectionTime>,
    /// Artifact-cache hit/miss counters at the end of the run.
    pub cache: CacheStats,
    /// Graceful-degradation counters at the end of the run (rejected
    /// packs, retried trainings; DESIGN.md §9). Zero on a healthy run.
    pub degradation: DegradationSnapshot,
}

impl RunManifest {
    /// A manifest for the given scale under the current schema.
    #[must_use]
    pub fn new(scale: &Scale, threads: usize) -> Self {
        Self {
            schema_version: SCHEMA_VERSION,
            scale: if scale.is_full() { "full" } else { "quick" }.to_string(),
            threads,
            artifacts: Vec::new(),
            sections: Vec::new(),
            cache: CacheStats::default(),
            degradation: DegradationSnapshot::default(),
        }
    }
}

impl ToJson for RunManifest {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::Num(self.schema_version as f64)),
            ("scale", Json::Str(self.scale.clone())),
            ("threads", Json::Num(self.threads as f64)),
            ("artifacts", Json::Arr(self.artifacts.iter().map(|a| Json::Str(a.clone())).collect())),
            ("sections", arr_to_json(&self.sections)),
            ("cache", self.cache.to_json()),
            ("degradation", self.degradation.to_json()),
        ])
    }
}

impl FromJson for RunManifest {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            schema_version: json.field("schema_version")?.as_usize()? as u64,
            scale: json.field("scale")?.as_str()?.to_string(),
            threads: json.field("threads")?.as_usize()?,
            artifacts: json
                .field("artifacts")?
                .as_arr()?
                .iter()
                .map(|a| a.as_str().map(str::to_string))
                .collect::<Result<_, _>>()?,
            sections: arr_from_json(json.field("sections")?)?,
            cache: CacheStats::from_json(json.field("cache")?)?,
            // Absent in manifests written before the degradation
            // counters existed; default to a clean snapshot.
            degradation: json
                .get("degradation")
                .map(DegradationSnapshot::from_json)
                .transpose()?
                .unwrap_or_default(),
        })
    }
}

/// A complete run: the manifest plus every experiment artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The run's provenance.
    pub manifest: RunManifest,
    /// Experiment artifacts in run order.
    pub experiments: Vec<ExperimentReport>,
}

impl RunReport {
    /// Writes one file per experiment plus `manifest.json` into `dir`
    /// (created if needed).
    pub fn write(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for exp in &self.experiments {
            write_artifact(dir, exp)?;
        }
        std::fs::write(dir.join(MANIFEST_FILE), self.manifest.to_json().render())
    }

    /// Reads a run back from `dir`, validating that the manifest and
    /// the artifact files agree (a listed-but-missing or
    /// present-but-unlisted artifact means a corrupt run).
    pub fn read(dir: &Path) -> Result<Self, String> {
        let manifest_path = dir.join(MANIFEST_FILE);
        let manifest_text = std::fs::read_to_string(&manifest_path)
            .map_err(|e| format!("{}: {e}", manifest_path.display()))?;
        let manifest = RunManifest::from_json(&Json::parse(&manifest_text)?)
            .map_err(|e| format!("{}: {e}", manifest_path.display()))?;
        let mut experiments = Vec::new();
        for file in &manifest.artifacts {
            let exp = read_artifact(&dir.join(file))?;
            if exp.file_name() != *file {
                return Err(format!("artifact {file} names itself {:?}", exp.name));
            }
            experiments.push(exp);
        }
        for entry in std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))? {
            let name = entry.map_err(|e| e.to_string())?.file_name();
            let name = name.to_string_lossy().to_string();
            if name.ends_with(".json")
                && name != MANIFEST_FILE
                && !manifest.artifacts.contains(&name)
            {
                return Err(format!(
                    "artifact {name} present in {} but not listed in the manifest",
                    dir.display()
                ));
            }
        }
        Ok(Self { manifest, experiments })
    }
}

/// Writes a standalone binary's single-experiment run: the artifact
/// plus a `manifest.json` naming it, with one section timing and the
/// process-global cache counters. The `fig*`/`table*` binaries use
/// this for their `--json` mode; `reproduce` assembles its multi-
/// section manifest by hand.
///
/// Note the standalone binaries sweep *different* benchmark sets than
/// `reproduce` (e.g. the fig09 binary covers all ten benchmarks at any
/// scale), so their reports pair with baselines generated the same
/// way — the checked-in `baselines/quick/` golden set pairs with
/// `reproduce --json`.
pub fn write_single_run(
    dir: &Path,
    scale: &Scale,
    name: &str,
    data: ExperimentData,
    seconds: f64,
) -> std::io::Result<()> {
    let exp = ExperimentReport::new(name, data);
    let mut manifest = RunManifest::new(scale, thread_count());
    manifest.artifacts = vec![exp.file_name()];
    // One-binary run: the whole process is the section, so the global
    // gauntlet counters are its usage.
    manifest.sections = vec![SectionTime {
        name: name.to_string(),
        seconds,
        gauntlet: GauntletUsage::from_delta(&crate::metrics::snapshot()),
    }];
    manifest.cache = ArtifactCache::global().stats();
    manifest.degradation = branchnet_core::degradation::snapshot();
    let run = RunReport { manifest, experiments: vec![exp] };
    run.write(dir)?;
    println!("json report: {}", dir.display());
    Ok(())
}

/// Writes one experiment artifact (`<dir>/<name>.json`), creating the
/// directory if needed. Returns the written path.
pub fn write_artifact(dir: &Path, report: &ExperimentReport) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(report.file_name());
    std::fs::write(&path, report.to_json().render())?;
    Ok(path)
}

/// Reads one experiment artifact.
pub fn read_artifact(path: &Path) -> Result<ExperimentReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    ExperimentReport::from_json(&Json::parse(&text)?)
        .map_err(|e| format!("{}: {e}", path.display()))
}

/// Parses the standard experiment-binary CLI: an optional
/// `--json <dir>`. Anything else exits with a usage message (a typoed
/// flag silently ignored would mean a silently missing artifact).
#[must_use]
pub fn json_dir_from_cli(binary: &str) -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    let mut dir = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => match args.next() {
                Some(d) => dir = Some(PathBuf::from(d)),
                None => {
                    eprintln!("--json requires a directory\nusage: {binary} [--json <dir>]");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument {other:?}\nusage: {binary} [--json <dir>]");
                std::process::exit(2);
            }
        }
    }
    dir
}

/// A scalar observation, flattened out of an experiment artifact for
/// tolerance comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A numeric metric (compared under a tolerance).
    Num(f64),
    /// An exact-match metric (rendered tables, branch addresses).
    Text(String),
}

/// One `(row, metric, value)` observation of an experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Row key within the experiment (benchmark, sweep point, …).
    pub row: String,
    /// Metric name; its suffix selects the gate tolerance class.
    pub name: String,
    /// Observed value.
    pub value: MetricValue,
}

fn num(row: &str, name: &str, value: f64) -> Metric {
    Metric { row: row.to_string(), name: name.to_string(), value: MetricValue::Num(value) }
}

fn text(row: &str, name: &str, value: String) -> Metric {
    Metric { row: row.to_string(), name: name.to_string(), value: MetricValue::Text(value) }
}

impl ExperimentData {
    /// Flattens the experiment into `(row, metric, value)` triples —
    /// the representation the fidelity gate compares under its
    /// tolerance policy.
    #[must_use]
    pub fn metrics(&self) -> Vec<Metric> {
        let mut out = Vec::new();
        match self {
            ExperimentData::Text(s) => out.push(text("-", "text", s.clone())),
            ExperimentData::Fig01(rows) => {
                for r in rows {
                    let b = r.bench.name();
                    out.push(num(b, "mpki", r.mpki));
                    out.push(num(b, "top8_mpki", r.top8));
                    out.push(num(b, "top25_mpki", r.top25));
                    out.push(num(b, "top50_mpki", r.top50));
                }
            }
            ExperimentData::Fig04(points) => {
                for p in points {
                    let row = format!("alpha={}", p.alpha);
                    out.push(num(&row, "tage_accuracy", p.tage));
                    for (i, acc) in p.cnn.iter().enumerate() {
                        out.push(num(&row, &format!("cnn_set{}_accuracy", i + 1), *acc));
                    }
                }
            }
            ExperimentData::Fig09(rows) => {
                for r in rows {
                    let b = r.bench.name();
                    out.push(num(b, "tage_sc_l_64kb_mpki", r.tage_sc_l_64kb));
                    out.push(num(b, "mtage_sc_mpki", r.mtage_sc));
                    out.push(num(b, "mtage_plus_big_mpki", r.mtage_plus_big));
                    out.push(num(b, "gtage_only_mpki", r.gtage_only));
                    out.push(num(b, "no_sc_local_mpki", r.no_sc_local));
                    out.push(num(b, "improved_branches", r.improved_branches as f64));
                }
            }
            ExperimentData::Fig10(results) => {
                for res in results {
                    for (i, r) in res.rows.iter().enumerate() {
                        let row = format!("{}#{i:02}", res.bench.name());
                        out.push(text(&row, "pc", format!("{:#x}", r.pc)));
                        out.push(num(&row, "mtage_accuracy", r.mtage_accuracy));
                        out.push(num(&row, "branchnet_accuracy", r.branchnet_accuracy));
                        out.push(num(&row, "occurrences", r.occurrences));
                    }
                }
            }
            ExperimentData::Fig11(rows) => {
                for r in rows {
                    let b = r.bench.name();
                    for (label, s) in [
                        ("base", &r.base),
                        ("iso_storage", &r.iso_storage),
                        ("iso_latency", &r.iso_latency),
                        ("big", &r.big),
                        ("tarsa_float", &r.tarsa_float),
                        ("tarsa_ternary", &r.tarsa_ternary),
                    ] {
                        out.push(num(b, &format!("{label}_mpki"), s.mpki));
                        out.push(num(b, &format!("{label}_ipc"), s.ipc));
                    }
                }
            }
            ExperimentData::Fig12(sweeps) => {
                for sweep in sweeps {
                    for p in &sweep.points {
                        let row = format!("{}@examples={}", sweep.bench.name(), p.examples);
                        out.push(num(&row, "mpki_reduction_pct", p.mpki_reduction_pct));
                    }
                }
            }
            ExperimentData::Fig13(points) => {
                for p in points {
                    // Mini-pack sweep points keep their historical
                    // budget-keyed rows; reference lanes key by name
                    // (their budget is a property, not a sweep axis).
                    let row = if p.lane == crate::experiments::fig13_budget::MINI_PACK_LANE {
                        format!("{}@{}KB", p.bench.name(), p.budget_kb)
                    } else {
                        format!("{}@{}", p.bench.name(), p.lane)
                    };
                    out.push(num(&row, "mpki_reduction_pct", p.mpki_reduction_pct));
                    out.push(num(&row, "models", p.models as f64));
                }
            }
            ExperimentData::Table4(t) => {
                for r in &t.rows {
                    let row = format!("{}:{}", t.bench.name(), r.label);
                    out.push(num(&row, "mpki_reduction_pct", r.mpki_reduction_pct));
                }
            }
            ExperimentData::MiniPack(packs) => {
                for p in packs {
                    let b = p.bench.name();
                    out.push(num(b, "models", p.model_pcs.len() as f64));
                    out.push(num(b, "total_bytes", p.total_bytes as f64));
                    let pcs: Vec<String> =
                        p.model_pcs.iter().map(|pc| format!("{pc:#x}")).collect();
                    out.push(text(b, "model_pcs", pcs.join(",")));
                }
            }
        }
        out
    }
}
