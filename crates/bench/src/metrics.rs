//! Process-global gauntlet counters.
//!
//! Every multi-predictor pass over a trace (a [`Gauntlet::run`] inside
//! the harness, or a `simulate_many` sweep in the timing experiments)
//! bumps these counters. `reproduce` snapshots them around each report
//! section so the run manifest can record how much single-pass work
//! each figure actually did — the observable form of the "one decode,
//! N predictors" optimization.
//!
//! [`Gauntlet::run`]: branchnet_trace::Gauntlet::run

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static PASSES: AtomicU64 = AtomicU64::new(0);
static LANES: AtomicU64 = AtomicU64::new(0);
static NANOS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time reading of the gauntlet counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GauntletSnapshot {
    /// Trace passes driven through a gauntlet (one per trace walked,
    /// regardless of lane count).
    pub passes: u64,
    /// Total predictor-lanes evaluated (sum of lane counts over all
    /// passes; equals the number of trace walks a naive per-predictor
    /// harness would have needed).
    pub lanes: u64,
    /// Wall-clock nanoseconds spent inside gauntlet passes, summed
    /// across worker threads (CPU-ish time, not elapsed time).
    pub nanos: u64,
}

impl GauntletSnapshot {
    /// Counter deltas since `earlier`.
    #[must_use]
    pub fn since(&self, earlier: &Self) -> Self {
        Self {
            passes: self.passes - earlier.passes,
            lanes: self.lanes - earlier.lanes,
            nanos: self.nanos - earlier.nanos,
        }
    }

    /// The summed in-pass wall-clock in milliseconds.
    #[must_use]
    pub fn millis(&self) -> u64 {
        self.nanos / 1_000_000
    }
}

/// Records one gauntlet pass over a trace with `lanes` predictors that
/// took `elapsed` of wall-clock time on its worker thread.
pub fn record_pass(lanes: usize, elapsed: Duration) {
    PASSES.fetch_add(1, Ordering::Relaxed);
    LANES.fetch_add(lanes as u64, Ordering::Relaxed);
    let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    NANOS.fetch_add(nanos, Ordering::Relaxed);
}

/// Reads the current counter values.
#[must_use]
pub fn snapshot() -> GauntletSnapshot {
    GauntletSnapshot {
        passes: PASSES.load(Ordering::Relaxed),
        lanes: LANES.load(Ordering::Relaxed),
        nanos: NANOS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_pass_moves_the_counters() {
        // Counters are process-global and tests run concurrently, so
        // assert monotone growth by at least our own contribution
        // rather than exact values.
        let before = snapshot();
        record_pass(6, Duration::from_micros(3));
        let after = snapshot();
        let delta = after.since(&before);
        assert!(delta.passes >= 1);
        assert!(delta.lanes >= 6);
        assert!(delta.nanos >= 3_000);
    }

    #[test]
    fn millis_truncates_nanos() {
        let s = GauntletSnapshot { passes: 1, lanes: 1, nanos: 2_500_000 };
        assert_eq!(s.millis(), 2);
    }
}
