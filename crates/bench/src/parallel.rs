//! Ordered parallel fan-out for experiment loops.
//!
//! [`parallel_map`] distributes independent work items over a scoped
//! worker pool and collects the results **in input order**, so any
//! loop rewritten from `items.iter().map(..)` to
//! `parallel_map(&items, ..)` produces byte-identical output. The
//! worker count comes from the `BRANCHNET_THREADS` environment
//! variable (default: all available cores); `BRANCHNET_THREADS=1`
//! degenerates to a plain serial loop.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker threads to use for experiment fan-out.
///
/// Reads `BRANCHNET_THREADS`; unset means all available cores.
///
/// # Panics
///
/// Panics on a `BRANCHNET_THREADS` value that is not a positive
/// integer — a typo silently falling back to some default is exactly
/// the kind of bug this knob exists to avoid.
#[must_use]
pub fn thread_count() -> usize {
    match std::env::var("BRANCHNET_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!(
                "BRANCHNET_THREADS must be a positive integer, got {v:?} \
                 (unset it to use all available cores)"
            ),
        },
        Err(_) => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    }
}

/// Applies `f` to every item on a scoped worker pool, returning
/// results in input order.
///
/// Work is claimed dynamically (an atomic cursor), so uneven item
/// costs balance across workers; results land in per-index slots, so
/// scheduling cannot reorder them. With one worker (or one item) this
/// is exactly a serial `map`.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = thread_count().min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("result slot poisoned").expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |&i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u8> = Vec::new();
        assert!(parallel_map(&items, |&b| b).is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(parallel_map(&[41], |&x| x + 1), vec![42]);
    }
}
