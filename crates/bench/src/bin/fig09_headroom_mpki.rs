//! Regenerates Fig. 9 (MTAGE-SC vs +Big-BranchNet, with ablations)
//! over all ten benchmarks. `--json <dir>` also writes the
//! machine-readable report.

use branchnet_bench::experiments::fig09_headroom_mpki;
use branchnet_bench::report::{self, ExperimentData};
use branchnet_bench::Scale;
use branchnet_workloads::spec::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let json_dir = report::json_dir_from_cli("fig09_headroom_mpki");
    let t0 = std::time::Instant::now();
    let rows = fig09_headroom_mpki::run(&scale, &Benchmark::all());
    print!("{}", fig09_headroom_mpki::render(&rows));
    if let Some(dir) = json_dir {
        let data = ExperimentData::Fig09(rows);
        report::write_single_run(&dir, &scale, "fig09", data, t0.elapsed().as_secs_f64())
            .expect("writing json report");
    }
}
