//! Regenerates Fig. 9 (MTAGE-SC vs +Big-BranchNet, with ablations).

use branchnet_bench::experiments::fig09_headroom_mpki;
use branchnet_bench::Scale;
use branchnet_workloads::spec::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let rows = fig09_headroom_mpki::run(&scale, &Benchmark::all());
    print!("{}", fig09_headroom_mpki::render(&rows));
}
