//! Regenerates Fig. 10 (most-improved branch accuracies, leela & mcf).

use branchnet_bench::experiments::fig10_branch_accuracy;
use branchnet_bench::Scale;
use branchnet_workloads::spec::Benchmark;

fn main() {
    let scale = Scale::from_env();
    for bench in [Benchmark::Leela, Benchmark::Mcf] {
        let result = fig10_branch_accuracy::run(&scale, bench, 16);
        print!("{}", fig10_branch_accuracy::render(&result));
    }
}
