//! Regenerates Fig. 10 (most-improved branch accuracies, leela & mcf).
//! `--json <dir>` also writes the machine-readable report.

use branchnet_bench::experiments::fig10_branch_accuracy;
use branchnet_bench::report::{self, ExperimentData};
use branchnet_bench::Scale;
use branchnet_workloads::spec::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let json_dir = report::json_dir_from_cli("fig10_branch_accuracy");
    let t0 = std::time::Instant::now();
    let mut results = Vec::new();
    for bench in [Benchmark::Leela, Benchmark::Mcf] {
        let result = fig10_branch_accuracy::run(&scale, bench, 16);
        print!("{}", fig10_branch_accuracy::render(&result));
        results.push(result);
    }
    if let Some(dir) = json_dir {
        let data = ExperimentData::Fig10(results);
        report::write_single_run(&dir, &scale, "fig10", data, t0.elapsed().as_secs_f64())
            .expect("writing json report");
    }
}
