//! Regenerates Fig. 13 (sensitivity to the Mini-BranchNet storage
//! budget).

use branchnet_bench::experiments::fig13_budget;
use branchnet_bench::Scale;
use branchnet_workloads::spec::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let benches = [Benchmark::Leela, Benchmark::Mcf, Benchmark::Deepsjeng, Benchmark::Xz];
    let points = fig13_budget::run(&scale, &benches, &[8, 16, 32, 64]);
    print!("{}", fig13_budget::render(&points));
}
