//! Regenerates Fig. 13 (sensitivity to the Mini-BranchNet storage
//! budget). `--json <dir>` also writes the machine-readable report.

use branchnet_bench::experiments::fig13_budget;
use branchnet_bench::report::{self, ExperimentData};
use branchnet_bench::Scale;
use branchnet_workloads::spec::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let json_dir = report::json_dir_from_cli("fig13_budget_sensitivity");
    let t0 = std::time::Instant::now();
    let benches = [Benchmark::Leela, Benchmark::Mcf, Benchmark::Deepsjeng, Benchmark::Xz];
    let points = fig13_budget::run(&scale, &benches, &[8, 16, 32, 64]);
    print!("{}", fig13_budget::render(&points));
    if let Some(dir) = json_dir {
        let data = ExperimentData::Fig13(points);
        report::write_single_run(&dir, &scale, "fig13", data, t0.elapsed().as_secs_f64())
            .expect("writing json report");
    }
}
