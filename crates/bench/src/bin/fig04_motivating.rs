//! Regenerates Fig. 4 (offline-training generalization on the
//! motivating microbenchmark). `--json <dir>` also writes the
//! machine-readable report.

use branchnet_bench::experiments::fig04_motivating;
use branchnet_bench::report::{self, ExperimentData};
use branchnet_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let json_dir = report::json_dir_from_cli("fig04_motivating");
    let t0 = std::time::Instant::now();
    let points = fig04_motivating::run(&scale);
    print!("{}", fig04_motivating::render(&points));
    if let Some(dir) = json_dir {
        let data = ExperimentData::Fig04(points);
        report::write_single_run(&dir, &scale, "fig04", data, t0.elapsed().as_secs_f64())
            .expect("writing json report");
    }
}
