//! Regenerates Fig. 4 (offline-training generalization on the
//! motivating microbenchmark).

use branchnet_bench::experiments::fig04_motivating;
use branchnet_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let points = fig04_motivating::run(&scale);
    print!("{}", fig04_motivating::render(&points));
}
