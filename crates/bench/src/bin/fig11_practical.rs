//! Regenerates Fig. 11 (practical Mini-BranchNet settings: MPKI and
//! IPC improvements over 64 KB TAGE-SC-L).

use branchnet_bench::experiments::fig11_practical;
use branchnet_bench::Scale;
use branchnet_workloads::spec::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let rows = fig11_practical::run(&scale, &Benchmark::all());
    print!("{}", fig11_practical::render(&rows));
}
