//! Regenerates Fig. 11 (practical Mini-BranchNet settings: MPKI and
//! IPC improvements over 64 KB TAGE-SC-L) over all ten benchmarks.
//! `--json <dir>` also writes the machine-readable report.

use branchnet_bench::experiments::fig11_practical;
use branchnet_bench::report::{self, ExperimentData};
use branchnet_bench::Scale;
use branchnet_workloads::spec::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let json_dir = report::json_dir_from_cli("fig11_practical");
    let t0 = std::time::Instant::now();
    let rows = fig11_practical::run(&scale, &Benchmark::all());
    print!("{}", fig11_practical::render(&rows));
    if let Some(dir) = json_dir {
        let data = ExperimentData::Fig11(rows);
        report::write_single_run(&dir, &scale, "fig11", data, t0.elapsed().as_secs_f64())
            .expect("writing json report");
    }
}
