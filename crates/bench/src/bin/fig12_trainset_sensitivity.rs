//! Regenerates Fig. 12 (sensitivity to training-set size).
//! `--json <dir>` also writes the machine-readable report.

use branchnet_bench::experiments::fig12_trainset;
use branchnet_bench::report::{self, ExperimentData};
use branchnet_bench::Scale;
use branchnet_workloads::spec::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let json_dir = report::json_dir_from_cli("fig12_trainset_sensitivity");
    let t0 = std::time::Instant::now();
    let mut sweeps = Vec::new();
    for bench in [Benchmark::Leela, Benchmark::Xz] {
        let points = fig12_trainset::run(&scale, bench);
        print!("{}", fig12_trainset::render(bench, &points));
        sweeps.push(fig12_trainset::Fig12Sweep { bench, points });
    }
    if let Some(dir) = json_dir {
        let data = ExperimentData::Fig12(sweeps);
        report::write_single_run(&dir, &scale, "fig12", data, t0.elapsed().as_secs_f64())
            .expect("writing json report");
    }
}
