//! Regenerates Fig. 12 (sensitivity to training-set size).

use branchnet_bench::experiments::fig12_trainset;
use branchnet_bench::Scale;
use branchnet_workloads::spec::Benchmark;

fn main() {
    let scale = Scale::from_env();
    for bench in [Benchmark::Leela, Benchmark::Xz] {
        let points = fig12_trainset::run(&scale, bench);
        print!("{}", fig12_trainset::render(bench, &points));
    }
}
