//! Regenerates Table IV (the Big→Mini quantization ladder).
//! `--json <dir>` also writes the machine-readable report.

use branchnet_bench::experiments::tables;
use branchnet_bench::report::{self, ExperimentData};
use branchnet_bench::Scale;
use branchnet_workloads::spec::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let json_dir = report::json_dir_from_cli("table4_quantization_ladder");
    let t0 = std::time::Instant::now();
    let bench = Benchmark::Leela;
    let rows = tables::table4(&scale, bench);
    print!("{}", tables::render_table4(bench, &rows));
    if let Some(dir) = json_dir {
        let data = ExperimentData::Table4(tables::Table4Report { bench, rows });
        report::write_single_run(&dir, &scale, "table4", data, t0.elapsed().as_secs_f64())
            .expect("writing json report");
    }
}
