//! Regenerates Table IV (the Big→Mini quantization ladder).

use branchnet_bench::experiments::tables;
use branchnet_bench::Scale;
use branchnet_workloads::spec::Benchmark;

fn main() {
    let scale = Scale::from_env();
    let bench = Benchmark::Leela;
    let rows = tables::table4(&scale, bench);
    print!("{}", tables::render_table4(bench, &rows));
}
