//! Prints Table I (architecture knobs of every configuration).

fn main() {
    print!("{}", branchnet_bench::experiments::tables::table1());
}
