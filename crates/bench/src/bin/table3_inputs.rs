//! Prints Table III (workload input partitioning).

fn main() {
    print!("{}", branchnet_bench::experiments::tables::table3());
}
