//! Ablation: what sum-pooling buys (paper Section V-D).
//!
//! The paper credits sum-pooling with Mini-BranchNet's storage and
//! latency edge over Tarsa-Ternary: without pooling, the convolutional
//! history must buffer one value per history position, so long
//! histories are unaffordable. This ablation trains the same
//! architecture with and without pooling (and at Tarsa's 200-branch
//! no-pooling configuration) on one hard branch and prints accuracy
//! next to Table II storage.

use branchnet_bench::Scale;
use branchnet_core::config::BranchNetConfig;
use branchnet_core::dataset::extract;
use branchnet_core::quantize::{QuantMode, QuantizedMini};
use branchnet_core::storage::storage_breakdown;
use branchnet_core::trainer::train_model;
use branchnet_workloads::spec::{Benchmark, SpecSuite};

fn main() {
    let scale = Scale::from_env();
    let traces = SpecSuite::benchmark(Benchmark::Xz).trace_set(scale.branches_per_trace);
    let pc = 0x4200; // the count-correlated copy-loop exit

    let with_pooling = BranchNetConfig::mini_2kb();
    let mut no_pooling = BranchNetConfig::mini_2kb();
    no_pooling.name = "mini-no-pooling".into();
    for s in &mut no_pooling.slices {
        s.pool_width = 1;
        s.precise_pooling = true;
        // Without pooling the FC input explodes; cap histories at what
        // Tarsa-class designs could afford.
        s.history = s.history.min(144);
    }
    let tarsa = BranchNetConfig::tarsa_ternary();

    println!("config            storage      max-history  test-accuracy (branch {pc:#x})");
    for cfg in [with_pooling, no_pooling, tarsa] {
        let ds = extract(&traces.train, pc, cfg.window_len(), cfg.pc_bits);
        let (model, _) = train_model(&cfg, &ds, &scale.train_options());
        let quant = QuantizedMini::from_model(&model);
        let test_ds = extract(&traces.test, pc, cfg.window_len(), cfg.pc_bits);
        let acc = test_ds
            .examples
            .iter()
            .filter(|e| quant.predict(&e.window, QuantMode::Full) == (e.label >= 0.5))
            .count() as f64
            / test_ds.len().max(1) as f64;
        let kb = storage_breakdown(&cfg).total_kb();
        println!("{:<16} {:>8.3} KB   {:>6}        {:>6.3}", cfg.name, kb, cfg.max_history(), acc);
    }
    println!(
        "\nSum-pooling keeps long histories affordable: the pooled model reaches the\n\
         deepest correlations at a fraction of the no-pooling storage (Section V-D)."
    );
}
