//! Prints Table II (inference-engine storage breakdown).

fn main() {
    print!("{}", branchnet_bench::experiments::tables::table2());
}
