//! Prints Table II (inference-engine storage breakdown).
//! `--json <dir>` also writes the machine-readable report.

use branchnet_bench::experiments::tables;
use branchnet_bench::report::{self, ExperimentData};
use branchnet_bench::Scale;

fn main() {
    let json_dir = report::json_dir_from_cli("table2_storage");
    let t0 = std::time::Instant::now();
    let table = tables::table2();
    print!("{table}");
    if let Some(dir) = json_dir {
        let scale = Scale::from_env();
        let data = ExperimentData::Text(table);
        report::write_single_run(&dir, &scale, "table2", data, t0.elapsed().as_secs_f64())
            .expect("writing json report");
    }
}
