//! Regenerates Fig. 1 (MPKI decomposition by top mispredicting
//! branches). `BRANCHNET_SCALE=full` for the thorough profile.

use branchnet_bench::experiments::fig01_headroom;
use branchnet_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let rows = fig01_headroom::run(&scale);
    print!("{}", fig01_headroom::render(&rows));
}
