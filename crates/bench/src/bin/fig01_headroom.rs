//! Regenerates Fig. 1 (MPKI decomposition by top mispredicting
//! branches). `BRANCHNET_SCALE=full` for the thorough profile;
//! `--json <dir>` also writes the machine-readable report.

use branchnet_bench::experiments::fig01_headroom;
use branchnet_bench::report::{self, ExperimentData};
use branchnet_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let json_dir = report::json_dir_from_cli("fig01_headroom");
    let t0 = std::time::Instant::now();
    let rows = fig01_headroom::run(&scale);
    print!("{}", fig01_headroom::render(&rows));
    if let Some(dir) = json_dir {
        let data = ExperimentData::Fig01(rows);
        report::write_single_run(&dir, &scale, "fig01", data, t0.elapsed().as_secs_f64())
            .expect("writing json report");
    }
}
