//! Trace tooling: generate, inspect, and convert branch traces.
//!
//! ```text
//! trace_tool gen <benchmark> <input-idx> <branches> <out.bntr>
//! trace_tool stats <trace.bntr>
//! trace_tool rank <trace.bntr> [k]
//! ```
//!
//! Traces use the compact `branchnet-trace` binary format, so profiling
//! runs can be captured once and re-analyzed offline — the workflow
//! the paper's training infrastructure is built around.

use branchnet_tage::{TageScL, TageSclConfig};
use branchnet_trace::{load_trace, run_one_per_branch, save_trace};
use branchnet_workloads::spec::{Benchmark, SpecSuite};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  trace_tool gen <benchmark> <input-idx 0..7> <branches> <out.bntr>\n  \
         trace_tool stats <trace.bntr>\n  trace_tool rank <trace.bntr> [k]"
    );
    ExitCode::FAILURE
}

fn find_benchmark(name: &str) -> Option<Benchmark> {
    Benchmark::all().into_iter().find(|b| b.name() == name)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") if args.len() == 5 => {
            let Some(bench) = find_benchmark(&args[1]) else {
                eprintln!("unknown benchmark {:?}; one of:", args[1]);
                for b in Benchmark::all() {
                    eprintln!("  {}", b.name());
                }
                return ExitCode::FAILURE;
            };
            let (Ok(idx), Ok(branches)) = (args[2].parse::<usize>(), args[3].parse::<usize>())
            else {
                return usage();
            };
            let w = SpecSuite::benchmark(bench);
            let parts = w.inputs();
            let inputs: Vec<_> =
                parts.train.iter().chain(&parts.valid).chain(&parts.test).collect();
            let Some(input) = inputs.get(idx) else {
                eprintln!("input index {idx} out of range (0..{})", inputs.len());
                return ExitCode::FAILURE;
            };
            let trace = w.generate(input, branches);
            if let Err(e) = save_trace(Path::new(&args[4]), &trace) {
                eprintln!("failed to write {}: {e}", args[4]);
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {} branches ({} / {}) to {}",
                trace.len(),
                bench.name(),
                input.label,
                args[4]
            );
            ExitCode::SUCCESS
        }
        Some("stats") if args.len() == 2 => {
            let trace = match load_trace(Path::new(&args[1])) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let conditional = trace.iter().filter(|r| r.kind.is_conditional()).count();
            let taken = trace.iter().filter(|r| r.kind.is_conditional() && r.taken).count();
            let pcs: std::collections::HashSet<u64> = trace.iter().map(|r| r.pc).collect();
            println!("label:         {}", trace.label());
            println!("weight:        {}", trace.weight());
            println!("records:       {}", trace.len());
            println!("instructions:  {}", trace.instruction_count());
            println!(
                "conditional:   {conditional} ({:.1}% taken)",
                100.0 * taken as f64 / conditional.max(1) as f64
            );
            println!("static PCs:    {}", pcs.len());
            ExitCode::SUCCESS
        }
        Some("rank") if args.len() >= 2 => {
            let trace = match load_trace(Path::new(&args[1])) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            let k = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(10);
            let mut p = TageScL::new(&TageSclConfig::tage_sc_l_64kb());
            let stats = run_one_per_branch(&mut p, &trace);
            println!("top {k} mispredicting branches under 64KB TAGE-SC-L:");
            println!("{:<14} {:>12} {:>10} {:>12}", "pc", "occurrences", "accuracy", "mispredicts");
            for (pc, s) in stats.rank_by_mispredictions().entries().iter().take(k) {
                println!(
                    "{:#012x} {:>12.0} {:>10.3} {:>12.0}",
                    pc,
                    s.predictions(),
                    s.accuracy(),
                    s.mispredictions()
                );
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
