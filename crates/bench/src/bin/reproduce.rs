//! Runs every table and figure reproduction in sequence, printing the
//! paper-style output of each. `BRANCHNET_SCALE=full` selects the
//! thorough profile; the default `quick` profile finishes in tens of
//! minutes on a laptop core.

use branchnet_bench::cache::ArtifactCache;
use branchnet_bench::experiments::*;
use branchnet_bench::parallel::thread_count;
use branchnet_bench::Scale;
use branchnet_workloads::spec::Benchmark;

fn main() {
    let scale = Scale::from_env();
    println!(
        "scale: {} | threads: {} (BRANCHNET_THREADS to override)",
        if scale.is_full() { "full" } else { "quick" },
        thread_count()
    );
    // The CNN-training figures cover all ten benchmarks at
    // BRANCHNET_SCALE=full; the quick profile runs them on the six
    // benchmarks that carry the paper's story (the four BranchNet
    // winners plus the two instructive failures, gcc and omnetpp) —
    // the easy four contribute near-zero MPKI and near-zero deltas.
    let full = scale.is_full();
    let cnn_benches: Vec<Benchmark> = if full {
        Benchmark::all().to_vec()
    } else {
        vec![
            Benchmark::Leela,
            Benchmark::Mcf,
            Benchmark::Deepsjeng,
            Benchmark::Xz,
            Benchmark::Gcc,
            Benchmark::Omnetpp,
        ]
    };
    let t0 = std::time::Instant::now();
    let mut last = std::time::Instant::now();
    let mut section_times: Vec<(String, f64)> = Vec::new();
    let mut section = |name: &str| {
        // Credit the elapsed interval to the section that just ended.
        if let Some((_, secs)) = section_times.last_mut() {
            *secs = last.elapsed().as_secs_f64();
        }
        last = std::time::Instant::now();
        section_times.push((name.to_string(), 0.0));
        println!("\n=== {name} [{:.0}s] ===", t0.elapsed().as_secs_f64());
    };

    section("Table I");
    print!("{}", tables::table1());
    section("Table II");
    print!("{}", tables::table2());
    section("Table III");
    print!("{}", tables::table3());

    section("Fig. 1");
    print!("{}", fig01_headroom::render(&fig01_headroom::run(&scale)));

    section("Fig. 4");
    print!("{}", fig04_motivating::render(&fig04_motivating::run(&scale)));

    section("Fig. 9");
    print!("{}", fig09_headroom_mpki::render(&fig09_headroom_mpki::run(&scale, &cnn_benches)));

    section("Fig. 10");
    for bench in if full { vec![Benchmark::Leela, Benchmark::Mcf] } else { vec![Benchmark::Leela] }
    {
        print!("{}", fig10_branch_accuracy::render(&fig10_branch_accuracy::run(&scale, bench, 16)));
    }

    section("Fig. 11");
    print!("{}", fig11_practical::render(&fig11_practical::run(&scale, &cnn_benches)));

    section("Fig. 12");
    let fig12_benches =
        if full { vec![Benchmark::Leela, Benchmark::Xz] } else { vec![Benchmark::Xz] };
    for bench in fig12_benches {
        print!("{}", fig12_trainset::render(bench, &fig12_trainset::run(&scale, bench)));
    }

    section("Fig. 13");
    let fig13_benches: Vec<Benchmark> = if full {
        vec![Benchmark::Leela, Benchmark::Mcf, Benchmark::Deepsjeng, Benchmark::Xz]
    } else {
        vec![Benchmark::Leela, Benchmark::Xz]
    };
    print!(
        "{}",
        fig13_budget::render(&fig13_budget::run(&scale, &fig13_benches, &[8, 16, 32, 64]))
    );

    section("Table IV");
    let t4_bench = Benchmark::Leela;
    let rows = tables::table4(&scale, t4_bench);
    print!("{}", tables::render_table4(t4_bench, &rows));

    if let Some((_, secs)) = section_times.last_mut() {
        *secs = last.elapsed().as_secs_f64();
    }
    println!("\n=== Summary ===");
    for (name, secs) in &section_times {
        println!("{name:<10} {secs:>7.1}s");
    }
    println!("cache: {}", ArtifactCache::global().stats().summary());
    println!("\nDone in {:.0}s.", t0.elapsed().as_secs_f64());
}
