//! Runs every table and figure reproduction in sequence, printing the
//! paper-style output of each. `BRANCHNET_SCALE=full` selects the
//! thorough profile; the default `quick` profile finishes in tens of
//! minutes on a laptop core.
//!
//! With `--json <dir>`, additionally writes one machine-readable
//! artifact per experiment plus a top-level `manifest.json` (see
//! `branchnet_bench::report`); `fidelity_gate` diffs such a directory
//! against the golden baselines in `baselines/quick/`.

use branchnet_bench::cache::ArtifactCache;
use branchnet_bench::experiments::*;
use branchnet_bench::metrics;
use branchnet_bench::parallel::thread_count;
use branchnet_bench::report::{
    self, ExperimentData, ExperimentReport, GauntletUsage, RunManifest, SectionTime,
};
use branchnet_bench::Scale;
use branchnet_tage::TageSclConfig;
use branchnet_workloads::spec::Benchmark;
use std::path::PathBuf;

/// Writes one experiment artifact when `--json` is active.
fn emit(json_dir: Option<&PathBuf>, artifacts: &mut Vec<String>, name: &str, data: ExperimentData) {
    if let Some(dir) = json_dir {
        let exp = ExperimentReport::new(name, data);
        report::write_artifact(dir, &exp)
            .unwrap_or_else(|e| panic!("writing {name} artifact: {e}"));
        artifacts.push(exp.file_name());
    }
}

fn main() {
    let scale = Scale::from_env();
    let json_dir = report::json_dir_from_cli("reproduce");
    println!(
        "scale: {} | threads: {} (BRANCHNET_THREADS to override)",
        if scale.is_full() { "full" } else { "quick" },
        thread_count()
    );
    // The CNN-training figures cover all ten benchmarks at
    // BRANCHNET_SCALE=full; the quick profile runs them on the six
    // benchmarks that carry the paper's story (the four BranchNet
    // winners plus the two instructive failures, gcc and omnetpp) —
    // the easy four contribute near-zero MPKI and near-zero deltas.
    let full = scale.is_full();
    let cnn_benches: Vec<Benchmark> = if full {
        Benchmark::all().to_vec()
    } else {
        vec![
            Benchmark::Leela,
            Benchmark::Mcf,
            Benchmark::Deepsjeng,
            Benchmark::Xz,
            Benchmark::Gcc,
            Benchmark::Omnetpp,
        ]
    };
    let t0 = std::time::Instant::now();
    let mut last = std::time::Instant::now();
    let mut last_gauntlet = metrics::snapshot();
    let mut section_times: Vec<SectionTime> = Vec::new();
    let mut section = |name: &str| {
        // Credit the elapsed interval (and the gauntlet passes that ran
        // during it) to the section that just ended.
        let now_gauntlet = metrics::snapshot();
        if let Some(prev) = section_times.last_mut() {
            prev.seconds = last.elapsed().as_secs_f64();
            prev.gauntlet = GauntletUsage::from_delta(&now_gauntlet.since(&last_gauntlet));
        }
        last = std::time::Instant::now();
        last_gauntlet = now_gauntlet;
        section_times.push(SectionTime { name: name.to_string(), seconds: 0.0, gauntlet: None });
        println!("\n=== {name} [{:.0}s] ===", t0.elapsed().as_secs_f64());
    };
    let mut artifacts: Vec<String> = Vec::new();

    section("Table I");
    let table1 = tables::table1();
    print!("{table1}");
    emit(json_dir.as_ref(), &mut artifacts, "table1", ExperimentData::Text(table1));
    section("Table II");
    let table2 = tables::table2();
    print!("{table2}");
    emit(json_dir.as_ref(), &mut artifacts, "table2", ExperimentData::Text(table2));
    section("Table III");
    let table3 = tables::table3();
    print!("{table3}");
    emit(json_dir.as_ref(), &mut artifacts, "table3", ExperimentData::Text(table3));

    section("Fig. 1");
    let fig01_rows = fig01_headroom::run(&scale);
    print!("{}", fig01_headroom::render(&fig01_rows));
    emit(json_dir.as_ref(), &mut artifacts, "fig01", ExperimentData::Fig01(fig01_rows));

    section("Fig. 4");
    let fig04_points = fig04_motivating::run(&scale);
    print!("{}", fig04_motivating::render(&fig04_points));
    emit(json_dir.as_ref(), &mut artifacts, "fig04", ExperimentData::Fig04(fig04_points));

    section("Fig. 9");
    let fig09_rows = fig09_headroom_mpki::run(&scale, &cnn_benches);
    print!("{}", fig09_headroom_mpki::render(&fig09_rows));
    emit(json_dir.as_ref(), &mut artifacts, "fig09", ExperimentData::Fig09(fig09_rows));

    section("Fig. 10");
    let mut fig10_results = Vec::new();
    for bench in if full { vec![Benchmark::Leela, Benchmark::Mcf] } else { vec![Benchmark::Leela] }
    {
        let result = fig10_branch_accuracy::run(&scale, bench, 16);
        print!("{}", fig10_branch_accuracy::render(&result));
        fig10_results.push(result);
    }
    emit(json_dir.as_ref(), &mut artifacts, "fig10", ExperimentData::Fig10(fig10_results));

    section("Fig. 11");
    let fig11_rows = fig11_practical::run(&scale, &cnn_benches);
    print!("{}", fig11_practical::render(&fig11_rows));
    emit(json_dir.as_ref(), &mut artifacts, "fig11", ExperimentData::Fig11(fig11_rows));

    section("Fig. 12");
    let fig12_benches =
        if full { vec![Benchmark::Leela, Benchmark::Xz] } else { vec![Benchmark::Xz] };
    let mut fig12_sweeps = Vec::new();
    for bench in fig12_benches {
        let points = fig12_trainset::run(&scale, bench);
        print!("{}", fig12_trainset::render(bench, &points));
        fig12_sweeps.push(fig12_trainset::Fig12Sweep { bench, points });
    }
    emit(json_dir.as_ref(), &mut artifacts, "fig12", ExperimentData::Fig12(fig12_sweeps));

    section("Fig. 13");
    let fig13_benches: Vec<Benchmark> = if full {
        vec![Benchmark::Leela, Benchmark::Mcf, Benchmark::Deepsjeng, Benchmark::Xz]
    } else {
        vec![Benchmark::Leela, Benchmark::Xz]
    };
    let fig13_points = fig13_budget::run(&scale, &fig13_benches, &[8, 16, 32, 64]);
    print!("{}", fig13_budget::render(&fig13_points));
    emit(json_dir.as_ref(), &mut artifacts, "fig13", ExperimentData::Fig13(fig13_points));

    section("Table IV");
    let t4_bench = Benchmark::Leela;
    let rows = tables::table4(&scale, t4_bench);
    print!("{}", tables::render_table4(t4_bench, &rows));
    emit(
        json_dir.as_ref(),
        &mut artifacts,
        "table4",
        ExperimentData::Table4(tables::Table4Report { bench: t4_bench, rows }),
    );

    // Pack compositions at the iso-latency budget. The Fig. 11/13
    // menus are already trained and cached, so only the cheap knapsack
    // re-runs here.
    section("Mini packs");
    let pack_baseline = TageSclConfig::tage_sc_l_64kb().without_sc_local();
    let budget = 32 * 1024;
    let packs: Vec<mini_pack::MiniPackReport> = cnn_benches
        .iter()
        .map(|&bench| {
            let pack = mini_pack::build_mini_pack(bench, &pack_baseline, &scale, budget);
            mini_pack::MiniPackReport::from_pack(bench, budget, &pack)
        })
        .collect();
    print!("{}", mini_pack::render_packs(&packs));
    emit(json_dir.as_ref(), &mut artifacts, "mini_pack", ExperimentData::MiniPack(packs));

    if let Some(prev) = section_times.last_mut() {
        prev.seconds = last.elapsed().as_secs_f64();
        prev.gauntlet = GauntletUsage::from_delta(&metrics::snapshot().since(&last_gauntlet));
    }
    println!("\n=== Summary ===");
    for s in &section_times {
        match &s.gauntlet {
            Some(g) => println!(
                "{:<10} {:>7.1}s  [gauntlet: {} passes carrying {} lane-walks, {}ms]",
                s.name, s.seconds, g.passes, g.lanes, g.millis
            ),
            None => println!("{:<10} {:>7.1}s", s.name, s.seconds),
        }
    }
    println!("cache: {}", ArtifactCache::global().stats().summary());
    println!("degradation: {}", branchnet_core::degradation::snapshot().summary());

    if let Some(dir) = json_dir.as_ref() {
        let mut manifest = RunManifest::new(&scale, thread_count());
        manifest.artifacts = artifacts;
        manifest.sections = section_times;
        manifest.cache = ArtifactCache::global().stats();
        manifest.degradation = branchnet_core::degradation::snapshot();
        std::fs::create_dir_all(dir).expect("creating --json directory");
        std::fs::write(dir.join(report::MANIFEST_FILE), {
            use branchnet_bench::json::ToJson;
            manifest.to_json().render()
        })
        .expect("writing manifest.json");
        println!("json report: {}", dir.display());
    }

    println!("\nDone in {:.0}s.", t0.elapsed().as_secs_f64());
}
