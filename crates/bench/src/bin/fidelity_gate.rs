//! Fidelity regression gate.
//!
//! Diffs a fresh `--json` run against the checked-in golden baselines
//! under the per-metric tolerances of `branchnet_bench::gate`, and
//! exits non-zero with a violations table naming every offending
//! experiment/row/metric.
//!
//! ```text
//! usage: fidelity_gate <fresh-dir> [--baseline <dir>]
//! ```
//!
//! The baseline directory defaults to `baselines/quick`. Exit codes:
//! 0 = within tolerance, 1 = violations, 2 = unreadable input/usage.

use branchnet_bench::gate::{diff_runs, render_violations, GatePolicy};
use branchnet_bench::report::RunReport;
use std::path::{Path, PathBuf};
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage: fidelity_gate <fresh-dir> [--baseline <dir>]");
    exit(2);
}

fn read_run(label: &str, dir: &Path) -> RunReport {
    RunReport::read(dir).unwrap_or_else(|e| {
        eprintln!("fidelity_gate: cannot read {label} run from {}: {e}", dir.display());
        exit(2);
    })
}

fn main() {
    let mut fresh_dir: Option<PathBuf> = None;
    let mut baseline_dir = PathBuf::from("baselines/quick");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => match args.next() {
                Some(d) => baseline_dir = PathBuf::from(d),
                None => usage(),
            },
            other if fresh_dir.is_none() && !other.starts_with('-') => {
                fresh_dir = Some(PathBuf::from(other));
            }
            _ => usage(),
        }
    }
    let Some(fresh_dir) = fresh_dir else { usage() };

    let baseline = read_run("baseline", &baseline_dir);
    let fresh = read_run("fresh", &fresh_dir);

    let violations = diff_runs(&baseline, &fresh, &GatePolicy::default());
    if violations.is_empty() {
        let metrics: usize = baseline.experiments.iter().map(|e| e.data.metrics().len()).sum();
        println!(
            "fidelity gate OK: {} experiments, {} metrics within tolerance ({} vs {})",
            baseline.experiments.len(),
            metrics,
            baseline_dir.display(),
            fresh_dir.display()
        );
        return;
    }
    print!("{}", render_violations(&violations));
    eprintln!(
        "fidelity_gate: {} drifted from {}; if the shift is intentional, \
         regenerate the baselines (scripts/regen_baselines.sh) or adjust \
         the gate tolerances (see EXPERIMENTS.md) in the same PR",
        fresh_dir.display(),
        baseline_dir.display()
    );
    exit(1);
}
