//! Shared experiment plumbing.

use branchnet_core::config::BranchNetConfig;
use branchnet_core::hybrid::{AttachedModel, HybridPredictor};
use branchnet_core::selection::{offline_train, CandidateResult, PipelineOptions};
use branchnet_core::trainer::TrainOptions;
use branchnet_tage::{evaluate, Predictor, TageScL, TageSclConfig};
use branchnet_trace::{PredictionStats, Trace, TraceSet};
use branchnet_workloads::spec::{Benchmark, SpecSuite};

/// Experiment sizing profile. `quick` (the default) runs in minutes on
/// a laptop; `full` uses longer traces and more candidates/epochs.
/// Selected via the `BRANCHNET_SCALE` environment variable
/// (`quick`/`full`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Branches generated per trace (per input).
    pub branches_per_trace: usize,
    /// Hard-branch candidates considered per benchmark.
    pub candidates: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Training-example cap per branch.
    pub max_examples: usize,
}

impl Scale {
    /// The fast profile.
    #[must_use]
    pub fn quick() -> Self {
        Self { branches_per_trace: 40_000, candidates: 6, epochs: 10, max_examples: 1_500 }
    }

    /// The thorough profile.
    #[must_use]
    pub fn full() -> Self {
        Self { branches_per_trace: 200_000, candidates: 16, epochs: 24, max_examples: 4_000 }
    }

    /// Reads `BRANCHNET_SCALE` (default `quick`).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("BRANCHNET_SCALE").as_deref() {
            Ok("full") => Self::full(),
            _ => Self::quick(),
        }
    }

    /// Training options derived from this scale.
    #[must_use]
    pub fn train_options(&self) -> TrainOptions {
        TrainOptions {
            epochs: self.epochs,
            lr: 0.02,
            max_examples: self.max_examples,
            ..TrainOptions::default()
        }
    }

    /// Pipeline options derived from this scale.
    #[must_use]
    pub fn pipeline_options(&self) -> PipelineOptions {
        PipelineOptions {
            candidates: self.candidates,
            train: self.train_options(),
            ..PipelineOptions::default()
        }
    }
}

/// Generates the Table III trace set for one benchmark at this scale.
#[must_use]
pub fn trace_set(bench: Benchmark, scale: &Scale) -> TraceSet {
    SpecSuite::benchmark(bench).trace_set(scale.branches_per_trace)
}

/// Weighted test-set statistics of a predictor built fresh per trace
/// (per-SimPoint cold-start evaluation, as in the paper).
pub fn test_stats<F>(traces: &TraceSet, mut build: F) -> PredictionStats
where
    F: FnMut() -> Box<dyn Predictor>,
{
    traces.weighted_test_stats(|t: &Trace| {
        let mut p = build();
        evaluate(p.as_mut(), t)
    })
}

/// MPKI of a TAGE-SC-L configuration on the test traces.
#[must_use]
pub fn baseline_mpki(cfg: &TageSclConfig, traces: &TraceSet) -> f64 {
    let cfg = cfg.clone();
    test_stats(traces, || Box::new(TageScL::new(&cfg))).mpki()
}

/// A trained model pack for one benchmark: the per-branch float models
/// kept by the offline pipeline.
pub struct TrainedPack {
    /// Candidate scores and trained models, best first.
    pub models: Vec<(CandidateResult, branchnet_core::model::BranchNetModel)>,
}

/// Runs the offline pipeline for `bench` with `config` models.
#[must_use]
pub fn train_pack(
    config: &BranchNetConfig,
    baseline: &TageSclConfig,
    traces: &TraceSet,
    scale: &Scale,
) -> TrainedPack {
    TrainedPack { models: offline_train(config, baseline, traces, &scale.pipeline_options()) }
}

/// Consumes a pack's top `limit` models into a hybrid and returns its
/// weighted test MPKI. The baseline and engine runtime state reset
/// per trace (cold-start per SimPoint); the frozen CNN weights are
/// shared, exactly like deployed BranchNet models (Section V-E).
#[must_use]
pub fn hybrid_mpki_float(
    pack: TrainedPack,
    baseline: &TageSclConfig,
    traces: &TraceSet,
    limit: usize,
) -> f64 {
    let mut hybrid = HybridPredictor::new(baseline);
    for (r, m) in pack.models.into_iter().take(limit) {
        hybrid.attach(r.pc, AttachedModel::Float(m));
    }
    hybrid_test_mpki(&mut hybrid, traces)
}

/// Weighted test MPKI of an already-assembled hybrid, resetting
/// runtime state before each trace.
#[must_use]
pub fn hybrid_test_mpki(hybrid: &mut HybridPredictor, traces: &TraceSet) -> f64 {
    let mut agg = PredictionStats::new();
    for t in &traces.test {
        hybrid.reset_runtime_state();
        agg.merge_weighted(&evaluate(hybrid, t), t.weight());
    }
    agg.mpki()
}

/// Formats an MPKI pair as the paper's "reduction" percentage.
#[must_use]
pub fn reduction_pct(baseline: f64, improved: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        100.0 * (baseline - improved) / baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults_to_quick() {
        std::env::remove_var("BRANCHNET_SCALE");
        assert_eq!(Scale::from_env(), Scale::quick());
    }

    #[test]
    fn reduction_pct_basics() {
        assert!((reduction_pct(4.0, 3.0) - 25.0).abs() < 1e-9);
        assert_eq!(reduction_pct(0.0, 1.0), 0.0);
    }

    #[test]
    fn trace_set_has_table3_shape() {
        let ts = trace_set(Benchmark::Xz, &Scale { branches_per_trace: 2_000, candidates: 2, epochs: 1, max_examples: 100 });
        assert_eq!((ts.train.len(), ts.valid.len(), ts.test.len()), (3, 2, 3));
    }
}
