//! Shared experiment plumbing.

use crate::cache::ArtifactCache;
use crate::metrics;
use crate::parallel::parallel_map;
use branchnet_core::config::BranchNetConfig;
use branchnet_core::hybrid::{AttachedModel, HybridPredictor};
use branchnet_core::selection::{offline_train, CandidateResult, PipelineOptions};
use branchnet_core::trainer::TrainOptions;
use branchnet_tage::{TageScL, TageSclConfig};
use branchnet_trace::{Gauntlet, PredictionStats, Predictor, Trace, TraceSet};
use branchnet_workloads::spec::{Benchmark, SpecSuite};
use std::sync::Arc;

/// Experiment sizing profile. `quick` (the default) runs in minutes on
/// a laptop; `full` uses longer traces and more candidates/epochs.
/// Selected via the `BRANCHNET_SCALE` environment variable
/// (`quick`/`full`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scale {
    /// Branches generated per trace (per input).
    pub branches_per_trace: usize,
    /// Hard-branch candidates considered per benchmark.
    pub candidates: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Training-example cap per branch.
    pub max_examples: usize,
}

impl Scale {
    /// The fast profile.
    #[must_use]
    pub fn quick() -> Self {
        Self { branches_per_trace: 40_000, candidates: 6, epochs: 10, max_examples: 1_500 }
    }

    /// The thorough profile.
    #[must_use]
    pub fn full() -> Self {
        Self { branches_per_trace: 200_000, candidates: 16, epochs: 24, max_examples: 4_000 }
    }

    /// Resolves a `BRANCHNET_SCALE`-style value (case-insensitive;
    /// `None` means unset and selects `quick`).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value: silently falling back to
    /// `quick` would make a typo like `BRANCHNET_SCALE=ful` run the
    /// wrong experiment for hours.
    #[must_use]
    pub fn from_value(value: Option<&str>) -> Self {
        match value.map(str::to_ascii_lowercase).as_deref() {
            None | Some("quick") => Self::quick(),
            Some("full") => Self::full(),
            Some(other) => panic!(
                "unrecognized BRANCHNET_SCALE value {other:?}: expected \"quick\" or \"full\""
            ),
        }
    }

    /// Reads `BRANCHNET_SCALE` (default `quick`).
    #[must_use]
    pub fn from_env() -> Self {
        Self::from_value(std::env::var("BRANCHNET_SCALE").ok().as_deref())
    }

    /// Whether this is the thorough profile.
    #[must_use]
    pub fn is_full(&self) -> bool {
        *self == Self::full()
    }

    /// Training options derived from this scale.
    #[must_use]
    pub fn train_options(&self) -> TrainOptions {
        TrainOptions {
            epochs: self.epochs,
            lr: 0.02,
            max_examples: self.max_examples,
            ..TrainOptions::default()
        }
    }

    /// Pipeline options derived from this scale.
    #[must_use]
    pub fn pipeline_options(&self) -> PipelineOptions {
        PipelineOptions {
            candidates: self.candidates,
            train: self.train_options(),
            ..PipelineOptions::default()
        }
    }
}

/// Whether a cached trace set is usable: every partition non-empty and
/// every trace weight finite and positive. A set failing this check
/// (e.g. a stale cache entry from a torn load) is evicted and
/// regenerated.
#[must_use]
pub fn valid_trace_set(ts: &TraceSet) -> bool {
    let partitions = [&ts.train, &ts.valid, &ts.test];
    partitions.iter().all(|p| !p.is_empty())
        && partitions
            .iter()
            .flat_map(|p| p.iter())
            .all(|t| t.weight().is_finite() && t.weight() > 0.0)
}

/// Whether a trained pack is usable: every candidate score finite. A
/// diverged score would silently poison knapsack assignment and every
/// downstream MPKI.
#[must_use]
pub fn valid_pack(pack: &TrainedPack) -> bool {
    pack.models.iter().all(|(r, _)| {
        r.baseline_accuracy.is_finite()
            && r.model_accuracy.is_finite()
            && r.occurrences.is_finite()
            && r.mispredictions_avoided.is_finite()
    })
}

/// The Table III trace set for one benchmark at this scale, generated
/// once per process and shared via the [`ArtifactCache`].
#[must_use]
pub fn trace_set(bench: Benchmark, scale: &Scale) -> Arc<TraceSet> {
    ArtifactCache::global().trace_set(
        bench,
        scale.branches_per_trace,
        || SpecSuite::benchmark(bench).trace_set(scale.branches_per_trace),
        valid_trace_set,
    )
}

/// A factory for one gauntlet lane: called once per test trace to
/// produce the cold predictor that lane evaluates on that trace
/// (per-SimPoint cold-start evaluation, as in the paper).
///
/// Any custom baseline can join an experiment by boxing a builder —
/// it rides the same single-pass gauntlet as the stock lanes:
///
/// ```
/// use branchnet_bench::harness::{gauntlet_test_stats, LaneBuilder};
/// use branchnet_tage::{Gshare, Predictor};
/// use branchnet_trace::{BranchRecord, Trace, TraceSet};
///
/// // A custom baseline: gshare at a deliberately tiny budget.
/// let tiny_gshare: LaneBuilder = Box::new(|| Box::new(Gshare::new(6, 4)));
///
/// let trace = |taken: bool| -> Trace {
///     (0..200u64).map(|i| BranchRecord::conditional(0x40 + (i % 3) * 8, taken)).collect()
/// };
/// let traces = TraceSet {
///     train: vec![trace(true)],
///     valid: vec![trace(true)],
///     test: vec![trace(true), trace(false)],
/// };
/// let stats = gauntlet_test_stats(&traces, &[tiny_gshare]);
/// assert_eq!(stats.len(), 1);
/// assert!(stats[0].accuracy() > 0.9);
/// ```
pub type LaneBuilder<'a> = Box<dyn Fn() -> Box<dyn Predictor + 'a> + Sync + 'a>;

/// A lane evaluating a fresh TAGE-SC-L built from `cfg`. (The lane
/// owns a clone of the config; `'a` is free so it can sit in one slice
/// with borrowing lanes like [`hybrid_lane`].)
#[must_use]
pub fn baseline_lane<'a>(cfg: &TageSclConfig) -> LaneBuilder<'a> {
    let cfg = cfg.clone();
    Box::new(move || -> Box<dyn Predictor + 'a> { Box::new(TageScL::new(&cfg)) })
}

/// A lane evaluating a cold
/// [`HybridPredictor::fresh_runtime_clone`] of `hybrid` per trace: the
/// runtime state resets, the frozen CNN weights are shared, exactly
/// like deployed BranchNet models (Section V-E).
#[must_use]
pub fn hybrid_lane<'a>(hybrid: &'a HybridPredictor) -> LaneBuilder<'a> {
    Box::new(move || Box::new(hybrid.fresh_runtime_clone()))
}

/// A lane evaluating a registered baseline from
/// [`branchnet_tage::baseline_lineup`], built cold per trace at its
/// lineup configuration.
#[must_use]
pub fn lineup_lane<'a>(entry: &branchnet_tage::LineupEntry) -> LaneBuilder<'a> {
    let build = entry.build;
    Box::new(move || -> Box<dyn Predictor + 'a> { build() })
}

/// Weighted test-set statistics for every lane at once, in lane order.
///
/// Each test trace is decoded exactly once: a [`Gauntlet`] drives all
/// lanes' cold predictors over it in a single pass. Traces run in
/// parallel and per-lane results merge in trace order, so each lane's
/// numbers are byte-identical to a serial one-predictor-at-a-time
/// loop.
pub fn gauntlet_test_stats(traces: &TraceSet, lanes: &[LaneBuilder<'_>]) -> Vec<PredictionStats> {
    let per_trace = parallel_map(&traces.test, |t: &Trace| {
        let start = std::time::Instant::now();
        let mut gauntlet = Gauntlet::new();
        for lane in lanes {
            gauntlet.add_boxed(lane());
        }
        gauntlet.run(t);
        metrics::record_pass(lanes.len(), start.elapsed());
        gauntlet.finish().into_iter().map(|r| r.stats).collect::<Vec<_>>()
    });
    let mut agg = vec![PredictionStats::new(); lanes.len()];
    for (per_lane, t) in per_trace.iter().zip(&traces.test) {
        for (lane_agg, stats) in agg.iter_mut().zip(per_lane) {
            lane_agg.merge_weighted(stats, t.weight());
        }
    }
    agg
}

/// Weighted test-set statistics of a predictor built fresh per trace.
/// Single-lane convenience over [`gauntlet_test_stats`].
pub fn test_stats<'a, F>(traces: &TraceSet, build: F) -> PredictionStats
where
    F: Fn() -> Box<dyn Predictor> + Sync + 'a,
{
    // Re-wrap so the closure's return type names `'a` (a
    // `dyn Fn() -> Box<dyn Predictor + 'static>` object does not
    // coerce to one returning the shorter lifetime).
    let lanes: [LaneBuilder<'a>; 1] = [Box::new(move || -> Box<dyn Predictor + 'a> { build() })];
    gauntlet_test_stats(traces, &lanes).pop().expect("one lane in, one result out")
}

/// MPKI of a TAGE-SC-L configuration on the test traces.
#[must_use]
pub fn baseline_mpki(cfg: &TageSclConfig, traces: &TraceSet) -> f64 {
    gauntlet_test_stats(traces, &[baseline_lane(cfg)])[0].mpki()
}

/// A trained model pack for one benchmark: the per-branch float models
/// kept by the offline pipeline.
pub struct TrainedPack {
    /// Candidate scores and trained models, best first.
    pub models: Vec<(CandidateResult, branchnet_core::model::BranchNetModel)>,
}

/// Runs the offline pipeline for `bench` with `config` models.
#[must_use]
pub fn train_pack(
    config: &BranchNetConfig,
    baseline: &TageSclConfig,
    traces: &TraceSet,
    scale: &Scale,
) -> TrainedPack {
    TrainedPack { models: offline_train(config, baseline, traces, &scale.pipeline_options()) }
}

/// The trained pack for `(config, baseline, bench, scale)`, trained
/// once per process and shared via the [`ArtifactCache`] (so e.g.
/// Fig. 9 and Fig. 10 train the Big pack for a benchmark exactly
/// once).
#[must_use]
pub fn cached_pack(
    config: &BranchNetConfig,
    baseline: &TageSclConfig,
    bench: Benchmark,
    scale: &Scale,
) -> Arc<TrainedPack> {
    ArtifactCache::global().pack(
        config,
        baseline,
        bench,
        scale,
        || {
            let traces = trace_set(bench, scale);
            train_pack(config, baseline, &traces, scale)
        },
        valid_pack,
    )
}

/// Assembles a hybrid from a pack's top `limit` float models (cloning
/// the frozen weights, so the shared pack stays reusable).
#[must_use]
pub fn float_hybrid(pack: &TrainedPack, baseline: &TageSclConfig, limit: usize) -> HybridPredictor {
    let mut hybrid = HybridPredictor::new(baseline);
    for (r, m) in pack.models.iter().take(limit) {
        hybrid.attach(r.pc, AttachedModel::Float(m.clone())).expect("float models always attach");
    }
    hybrid
}

/// Weighted test MPKI of a pack's top `limit` models attached as float
/// CNNs. The baseline and engine runtime state reset per trace
/// (cold-start per SimPoint); the frozen CNN weights are shared,
/// exactly like deployed BranchNet models (Section V-E).
#[must_use]
pub fn hybrid_mpki_float(
    pack: &TrainedPack,
    baseline: &TageSclConfig,
    traces: &TraceSet,
    limit: usize,
) -> f64 {
    hybrid_test_mpki(&float_hybrid(pack, baseline, limit), traces)
}

/// Weighted test MPKI of an already-assembled hybrid: a single
/// [`hybrid_lane`] through [`gauntlet_test_stats`].
#[must_use]
pub fn hybrid_test_mpki(hybrid: &HybridPredictor, traces: &TraceSet) -> f64 {
    gauntlet_test_stats(traces, &[hybrid_lane(hybrid)])[0].mpki()
}

/// Formats an MPKI pair as the paper's "reduction" percentage.
#[must_use]
pub fn reduction_pct(baseline: f64, improved: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        100.0 * (baseline - improved) / baseline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // `Scale::from_value` is pure, so these tests never touch the
    // process environment (env mutation races with the multithreaded
    // test runner).
    #[test]
    fn scale_from_value_defaults_to_quick() {
        assert_eq!(Scale::from_value(None), Scale::quick());
    }

    #[test]
    fn scale_from_value_is_case_insensitive() {
        assert_eq!(Scale::from_value(Some("quick")), Scale::quick());
        assert_eq!(Scale::from_value(Some("FULL")), Scale::full());
        assert_eq!(Scale::from_value(Some("Full")), Scale::full());
    }

    #[test]
    #[should_panic(expected = "unrecognized BRANCHNET_SCALE")]
    fn scale_from_value_rejects_unknown() {
        let _ = Scale::from_value(Some("ful"));
    }

    #[test]
    fn is_full_distinguishes_profiles() {
        assert!(Scale::full().is_full());
        assert!(!Scale::quick().is_full());
    }

    #[test]
    fn reduction_pct_basics() {
        assert!((reduction_pct(4.0, 3.0) - 25.0).abs() < 1e-9);
        assert_eq!(reduction_pct(0.0, 1.0), 0.0);
    }

    #[test]
    fn trace_set_has_table3_shape() {
        let ts = trace_set(
            Benchmark::Xz,
            &Scale { branches_per_trace: 2_000, candidates: 2, epochs: 1, max_examples: 100 },
        );
        assert_eq!((ts.train.len(), ts.valid.len(), ts.test.len()), (3, 2, 3));
    }

    #[test]
    fn trace_set_is_shared_across_lookups() {
        let scale =
            Scale { branches_per_trace: 2_000, candidates: 2, epochs: 1, max_examples: 100 };
        let a = trace_set(Benchmark::Xz, &scale);
        let b = trace_set(Benchmark::Xz, &scale);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
