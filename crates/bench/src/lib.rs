//! Experiment harness regenerating every table and figure of the
//! BranchNet paper (see DESIGN.md's experiment index).
//!
//! Each `fig*`/`table*` module exposes a `run(&Scale) -> ...Result`
//! function returning structured rows plus a paper-style text
//! rendering; the `src/bin/` binaries are thin wrappers. The
//! [`Scale`](harness::Scale) knob switches between a `quick` profile
//! (minutes, default) and a `full` profile (closer to paper scale) via
//! the `BRANCHNET_SCALE` environment variable.

pub mod cache;
pub mod experiments;
pub mod gate;
pub mod harness;
pub mod json;
pub mod metrics;
pub mod parallel;
pub mod report;

pub use harness::Scale;
