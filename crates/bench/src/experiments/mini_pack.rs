//! Building budgeted Mini-BranchNet packs (paper Section V-B "Optimal
//! Architecture Knobs" + Section VI-D's iso-storage / iso-latency
//! settings).
//!
//! For every hard-branch candidate, one model per Mini preset is
//! trained; each trained model is *quantized* and re-scored on the
//! validation traces (selection must see the accuracy the hardware
//! will actually deliver); then an exact knapsack picks the best
//! per-branch model sizes under the total storage budget.
//!
//! Menu training (the expensive part) is separated from the knapsack
//! (cheap) and memoized in the [`ArtifactCache`], so a budget sweep
//! like Fig. 13's trains each benchmark's menu exactly once. Candidate
//! menus train in parallel (ordered fan-out, so results are identical
//! to the serial loop).

use crate::cache::ArtifactCache;
use crate::harness::{trace_set, Scale};
use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::parallel::parallel_map;
use crate::report::{bench_from_json, bench_to_json};
use branchnet_core::config::BranchNetConfig;
use branchnet_core::dataset::extract;
use branchnet_core::quantize::{QuantMode, QuantizedMini};
use branchnet_core::selection::{assign_budget, rank_hard_branches, BudgetItem, PipelineOptions};
use branchnet_core::storage::storage_breakdown;
use branchnet_core::trainer::train_model_resilient;
use branchnet_tage::TageSclConfig;
use branchnet_trace::TraceSet;
use branchnet_workloads::spec::Benchmark;
use std::sync::Arc;

/// One branch's trained menu entry.
#[derive(Debug, Clone)]
pub struct MenuEntry {
    /// The quantized model for this (branch, config) cell.
    pub quant: QuantizedMini,
    /// Its engine storage in bytes.
    pub bytes: usize,
}

/// The trained, quantized, validation-scored menu for one benchmark:
/// everything the knapsack needs, for any budget.
#[derive(Debug, Clone)]
pub struct TrainedMenu {
    /// Per-candidate `(bytes, value)` choices for [`assign_budget`].
    pub items: Vec<BudgetItem>,
    /// Per-candidate trained entries, parallel to `items` (an entry is
    /// `None` when the branch had too few training examples for that
    /// config).
    pub entries: Vec<Vec<Option<MenuEntry>>>,
}

/// A budgeted pack of quantized models ready to attach as engines.
pub struct MiniPack {
    /// `(pc, quantized model)` selected under the budget.
    pub models: Vec<(u64, QuantizedMini)>,
    /// Total storage of the selected models in bytes.
    pub total_bytes: usize,
}

/// The report-layer view of a [`MiniPack`]: which branches were
/// covered under which budget (the quantized weights themselves live
/// in the binary model format, not in reports).
#[derive(Debug, Clone, PartialEq)]
pub struct MiniPackReport {
    /// The benchmark the pack was built for.
    pub bench: Benchmark,
    /// The storage budget the knapsack solved for, in bytes.
    pub budget_bytes: usize,
    /// Storage actually selected, in bytes.
    pub total_bytes: usize,
    /// Covered branch addresses, in selection order.
    pub model_pcs: Vec<u64>,
}

impl MiniPackReport {
    /// Summarizes a solved pack.
    #[must_use]
    pub fn from_pack(bench: Benchmark, budget_bytes: usize, pack: &MiniPack) -> Self {
        Self {
            bench,
            budget_bytes,
            total_bytes: pack.total_bytes,
            model_pcs: pack.models.iter().map(|(pc, _)| *pc).collect(),
        }
    }
}

impl ToJson for MiniPackReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("bench", bench_to_json(self.bench)),
            ("budget_bytes", Json::Num(self.budget_bytes as f64)),
            ("total_bytes", Json::Num(self.total_bytes as f64)),
            ("model_pcs", Json::Arr(self.model_pcs.iter().map(|&pc| Json::hex(pc)).collect())),
        ])
    }
}

impl FromJson for MiniPackReport {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            bench: bench_from_json(json.field("bench")?)?,
            budget_bytes: json.field("budget_bytes")?.as_usize()?,
            total_bytes: json.field("total_bytes")?.as_usize()?,
            model_pcs: json
                .field("model_pcs")?
                .as_arr()?
                .iter()
                .map(Json::as_hex_u64)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// Paper-style rendering of pack compositions (the text twin of the
/// `mini_pack` report artifact).
#[must_use]
pub fn render_packs(packs: &[MiniPackReport]) -> String {
    let mut out = String::from(
        "Mini-BranchNet pack composition (iso-latency budget)\n\
         benchmark    budget   selected  models\n",
    );
    for p in packs {
        out.push_str(&format!(
            "{:<12} {:>5}KB  {:>6}B   {:>4}\n",
            p.bench.name(),
            p.budget_bytes / 1024,
            p.total_bytes,
            p.model_pcs.len()
        ));
    }
    out
}

/// Trains and scores the full menu for every candidate branch (the
/// budget-independent part of pack building).
#[must_use]
pub fn train_menu(
    traces: &TraceSet,
    baseline: &TageSclConfig,
    scale: &Scale,
    menu: &[(BranchNetConfig, usize)],
) -> TrainedMenu {
    let opts: PipelineOptions = scale.pipeline_options();
    let (pcs, stats) = rank_hard_branches(baseline, &traces.valid, opts.candidates);

    // Train the full menu per candidate and score quantized accuracy.
    // Candidates fan out in parallel; each is seeded by its own
    // (config, dataset, options), so order cannot affect results.
    let per_candidate = parallel_map(&pcs, |&pc| {
        let base_stats = stats.get(pc)?;
        let base_acc = base_stats.accuracy();
        let occurrences = base_stats.predictions();
        let mut entries: Vec<Option<MenuEntry>> = Vec::new();
        let mut choices: Vec<(usize, f64)> = Vec::new();
        for (config, _nominal) in menu {
            let train_ds = extract(&traces.train, pc, config.window_len(), config.pc_bits);
            if train_ds.len() < opts.min_occurrences {
                entries.push(None);
                choices.push((usize::MAX / 4, f64::NEG_INFINITY));
                continue;
            }
            // Resilient training (DESIGN.md §9): a diverged run retries
            // with a reseeded init; a candidate whose every attempt
            // diverges gets no menu entry for this config, exactly like
            // one with too few examples.
            let Some((model, _)) = train_model_resilient(config, &train_ds, &opts.train) else {
                entries.push(None);
                choices.push((usize::MAX / 4, f64::NEG_INFINITY));
                continue;
            };
            let quant = QuantizedMini::from_model(&model);
            let mut valid_ds = extract(&traces.valid, pc, config.window_len(), config.pc_bits);
            valid_ds.subsample(opts.train.max_examples);
            let correct = valid_ds
                .examples
                .iter()
                .filter(|e| quant.predict(&e.window, QuantMode::Full) == (e.label >= 0.5))
                .count();
            let acc =
                if valid_ds.is_empty() { 0.0 } else { correct as f64 / valid_ds.len() as f64 };
            let avoided = occurrences * (acc - base_acc - opts.selection_margin);
            let bytes = (storage_breakdown(config).total_bits() / 8) as usize;
            entries.push(Some(MenuEntry { quant, bytes }));
            choices.push((bytes, avoided));
        }
        Some((BudgetItem { pc, choices }, entries))
    });

    let mut items = Vec::new();
    let mut entries = Vec::new();
    for (item, menu_row) in per_candidate.into_iter().flatten() {
        items.push(item);
        entries.push(menu_row);
    }
    TrainedMenu { items, entries }
}

/// The trained menu for `(menu, baseline, bench, scale)`, trained once
/// per process and shared via the [`ArtifactCache`].
#[must_use]
pub fn cached_menu(
    bench: Benchmark,
    baseline: &TageSclConfig,
    scale: &Scale,
    menu: &[(BranchNetConfig, usize)],
) -> Arc<TrainedMenu> {
    ArtifactCache::global().menu(
        menu,
        baseline,
        bench,
        scale,
        || {
            let traces = trace_set(bench, scale);
            train_menu(&traces, baseline, scale, menu)
        },
        valid_menu,
    )
}

/// Whether a cached menu is usable: every knapsack choice value finite
/// or the `NEG_INFINITY` no-entry sentinel (a NaN would silently
/// corrupt every budget assignment solved from the menu).
#[must_use]
pub fn valid_menu(menu: &TrainedMenu) -> bool {
    menu.items
        .iter()
        .flat_map(|item| item.choices.iter())
        .all(|&(_, avoided)| avoided.is_finite() || avoided == f64::NEG_INFINITY)
}

/// Solves the `budget_bytes` assignment over an already-trained menu
/// (the cheap, per-budget part of pack building).
#[must_use]
pub fn pack_from_menu(menu: &TrainedMenu, budget_bytes: usize) -> MiniPack {
    let picks = assign_budget(&menu.items, budget_bytes);
    let mut models = Vec::new();
    let mut total_bytes = 0usize;
    for ((item, pick), entries) in menu.items.iter().zip(&picks).zip(&menu.entries) {
        if let Some(ci) = pick {
            if let Some(entry) = entries.get(*ci).and_then(Option::as_ref) {
                total_bytes += entry.bytes;
                models.push((item.pc, entry.quant.clone()));
            }
        }
    }
    MiniPack { models, total_bytes }
}

/// Trains the Mini menu for the top validation hard branches of
/// `bench` (memoized) and solves the `budget_bytes` assignment.
#[must_use]
pub fn build_mini_pack(
    bench: Benchmark,
    baseline: &TageSclConfig,
    scale: &Scale,
    budget_bytes: usize,
) -> MiniPack {
    build_pack_with_menu(bench, baseline, scale, budget_bytes, &BranchNetConfig::mini_menu())
}

/// Like [`build_mini_pack`] but with an explicit config menu (used for
/// Tarsa-Ternary, whose "menu" is a single config).
#[must_use]
pub fn build_pack_with_menu(
    bench: Benchmark,
    baseline: &TageSclConfig,
    scale: &Scale,
    budget_bytes: usize,
    menu: &[(BranchNetConfig, usize)],
) -> MiniPack {
    pack_from_menu(&cached_menu(bench, baseline, scale, menu), budget_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_respects_budget_and_finds_models() {
        let scale =
            Scale { branches_per_trace: 20_000, candidates: 4, epochs: 6, max_examples: 800 };
        let baseline = TageSclConfig::tage_sc_l_64kb();
        let budget = 8 * 1024;
        let pack = build_mini_pack(Benchmark::Xz, &baseline, &scale, budget);
        assert!(pack.total_bytes <= budget + 64 * pack.models.len(), "budget exceeded");
        assert!(!pack.models.is_empty(), "xz has count-correlated branches a pack must find");
    }

    #[test]
    fn budget_sweep_reuses_one_trained_menu() {
        let scale =
            Scale { branches_per_trace: 20_000, candidates: 4, epochs: 6, max_examples: 800 };
        let baseline = TageSclConfig::tage_sc_l_64kb();
        let menu = cached_menu(Benchmark::Xz, &baseline, &scale, &BranchNetConfig::mini_menu());
        // Re-solving different budgets over the shared menu must be
        // monotone in selected storage without retraining anything.
        let small = pack_from_menu(&menu, 4 * 1024);
        let large = pack_from_menu(&menu, 32 * 1024);
        assert!(large.models.len() >= small.models.len());
        assert!(large.total_bytes >= small.total_bytes);
    }
}
