//! Building budgeted Mini-BranchNet packs (paper Section V-B "Optimal
//! Architecture Knobs" + Section VI-D's iso-storage / iso-latency
//! settings).
//!
//! For every hard-branch candidate, one model per Mini preset is
//! trained; each trained model is *quantized* and re-scored on the
//! validation traces (selection must see the accuracy the hardware
//! will actually deliver); then an exact knapsack picks the best
//! per-branch model sizes under the total storage budget.

use crate::harness::Scale;
use branchnet_core::config::BranchNetConfig;
use branchnet_core::dataset::extract;
use branchnet_core::quantize::{QuantMode, QuantizedMini};
use branchnet_core::selection::{assign_budget, rank_hard_branches, BudgetItem, PipelineOptions};
use branchnet_core::storage::storage_breakdown;
use branchnet_core::trainer::train_model;
use branchnet_tage::TageSclConfig;
use branchnet_trace::TraceSet;

/// One branch's trained menu entry.
struct MenuEntry {
    quant: QuantizedMini,
    bytes: usize,
}

/// A budgeted pack of quantized models ready to attach as engines.
pub struct MiniPack {
    /// `(pc, quantized model)` selected under the budget.
    pub models: Vec<(u64, QuantizedMini)>,
    /// Total storage of the selected models in bytes.
    pub total_bytes: usize,
}

/// Trains the Mini menu for the top validation hard branches and
/// solves the `budget_bytes` assignment.
#[must_use]
pub fn build_mini_pack(
    traces: &TraceSet,
    baseline: &TageSclConfig,
    scale: &Scale,
    budget_bytes: usize,
) -> MiniPack {
    build_pack_with_menu(traces, baseline, scale, budget_bytes, &BranchNetConfig::mini_menu())
}

/// Like [`build_mini_pack`] but with an explicit config menu (used for
/// Tarsa-Ternary, whose "menu" is a single config).
#[must_use]
pub fn build_pack_with_menu(
    traces: &TraceSet,
    baseline: &TageSclConfig,
    scale: &Scale,
    budget_bytes: usize,
    menu: &[(BranchNetConfig, usize)],
) -> MiniPack {
    let opts: PipelineOptions = scale.pipeline_options();
    let (pcs, stats) = rank_hard_branches(baseline, &traces.valid, opts.candidates);

    // Train the full menu per candidate and score quantized accuracy.
    let mut items: Vec<BudgetItem> = Vec::new();
    let mut menus: Vec<Vec<Option<MenuEntry>>> = Vec::new();
    for &pc in &pcs {
        let Some(base_stats) = stats.get(pc) else { continue };
        let base_acc = base_stats.accuracy();
        let occurrences = base_stats.predictions();
        let mut entries: Vec<Option<MenuEntry>> = Vec::new();
        let mut choices: Vec<(usize, f64)> = Vec::new();
        for (config, _nominal) in menu {
            let train_ds = extract(&traces.train, pc, config.window_len(), config.pc_bits);
            if train_ds.len() < opts.min_occurrences {
                entries.push(None);
                choices.push((usize::MAX / 4, f64::NEG_INFINITY));
                continue;
            }
            let (model, _) = train_model(config, &train_ds, &opts.train);
            let quant = QuantizedMini::from_model(&model);
            let mut valid_ds = extract(&traces.valid, pc, config.window_len(), config.pc_bits);
            valid_ds.subsample(opts.train.max_examples);
            let correct = valid_ds
                .examples
                .iter()
                .filter(|e| quant.predict(&e.window, QuantMode::Full) == (e.label >= 0.5))
                .count();
            let acc = if valid_ds.is_empty() {
                0.0
            } else {
                correct as f64 / valid_ds.len() as f64
            };
            let avoided = occurrences * (acc - base_acc - opts.selection_margin);
            let bytes = (storage_breakdown(config).total_bits() / 8) as usize;
            entries.push(Some(MenuEntry { quant, bytes }));
            choices.push((bytes, avoided));
        }
        items.push(BudgetItem { pc, choices });
        menus.push(entries);
    }

    let picks = assign_budget(&items, budget_bytes);
    let mut models = Vec::new();
    let mut total_bytes = 0usize;
    for ((item, pick), entries) in items.iter().zip(&picks).zip(menus.into_iter()) {
        if let Some(ci) = pick {
            if let Some(entry) = entries.into_iter().nth(*ci).flatten() {
                total_bytes += entry.bytes;
                models.push((item.pc, entry.quant));
            }
        }
    }
    MiniPack { models, total_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::trace_set;
    use branchnet_workloads::spec::Benchmark;

    #[test]
    fn pack_respects_budget_and_finds_models() {
        let scale =
            Scale { branches_per_trace: 20_000, candidates: 4, epochs: 6, max_examples: 800 };
        let traces = trace_set(Benchmark::Xz, &scale);
        let baseline = TageSclConfig::tage_sc_l_64kb();
        let budget = 8 * 1024;
        let pack = build_mini_pack(&traces, &baseline, &scale, budget);
        assert!(pack.total_bytes <= budget + 64 * pack.models.len(), "budget exceeded");
        assert!(!pack.models.is_empty(), "xz has count-correlated branches a pack must find");
    }
}
