//! Fig. 1: how much of each benchmark's TAGE-SC-L MPKI is
//! concentrated in its top 8 / 25 / 50 static branches.
//!
//! The paper measures the mispredictions its Big CNNs avoid when
//! covering the top-k branches; this module reports the oracle
//! decomposition (mispredictions attributable to the top-k
//! most-mispredicted branches), which is the headroom those CNNs chase.
//! Fig. 9/11 then measure how much of it the CNNs actually capture.

use crate::harness::{trace_set, Scale};
use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::parallel::parallel_map;
use crate::report::{bench_from_json, bench_to_json};
use branchnet_tage::{TageScL, TageSclConfig};
use branchnet_trace::Gauntlet;
use branchnet_workloads::spec::Benchmark;

/// One benchmark's bar in Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig01Row {
    /// Which benchmark.
    pub bench: Benchmark,
    /// Baseline 64 KB TAGE-SC-L MPKI on the test traces.
    pub mpki: f64,
    /// MPKI attributable to the 8 most-mispredicted branches.
    pub top8: f64,
    /// … the top 25.
    pub top25: f64,
    /// … the top 50.
    pub top50: f64,
}

impl ToJson for Fig01Row {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("bench", bench_to_json(self.bench)),
            ("mpki", Json::Num(self.mpki)),
            ("top8", Json::Num(self.top8)),
            ("top25", Json::Num(self.top25)),
            ("top50", Json::Num(self.top50)),
        ])
    }
}

impl FromJson for Fig01Row {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            bench: bench_from_json(json.field("bench")?)?,
            mpki: json.field("mpki")?.as_f64()?,
            top8: json.field("top8")?.as_f64()?,
            top25: json.field("top25")?.as_f64()?,
            top50: json.field("top50")?.as_f64()?,
        })
    }
}

/// Runs the experiment for every benchmark.
#[must_use]
pub fn run(scale: &Scale) -> Vec<Fig01Row> {
    let baseline = TageSclConfig::tage_sc_l_64kb();
    parallel_map(&Benchmark::all(), |&bench| {
        let traces = trace_set(bench, scale);
        let mut gauntlet = Gauntlet::new();
        let lane = gauntlet.add_tracked(TageScL::new(&baseline));
        for t in &traces.test {
            gauntlet.run(t);
            // Cold predictor per trace, as per-SimPoint evaluation.
            gauntlet.flush();
        }
        let stats = gauntlet
            .finish()
            .swap_remove(lane)
            .branch_stats
            .expect("tracked lane collects per-branch stats");
        let ranking = stats.rank_by_mispredictions();
        Fig01Row {
            bench,
            mpki: stats.totals().mpki(),
            top8: ranking.mpki_of_top(8),
            top25: ranking.mpki_of_top(25),
            top50: ranking.mpki_of_top(50),
        }
    })
}

/// Paper-style rendering.
#[must_use]
pub fn render(rows: &[Fig01Row]) -> String {
    let mut out = String::from(
        "Fig. 1 — 64KB TAGE-SC-L MPKI decomposed by top mispredicting branches\n\
         benchmark    MPKI   top-8   top-25  top-50  (MPKI avoidable by covering k branches)\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>5.2}  {:>5.2}   {:>5.2}   {:>5.2}\n",
            r.bench.name(),
            r.mpki,
            r.top8,
            r.top25,
            r.top50
        ));
    }
    let avg = |f: fn(&Fig01Row) -> f64| rows.iter().map(f).sum::<f64>() / rows.len() as f64;
    out.push_str(&format!(
        "{:<12} {:>5.2}  {:>5.2}   {:>5.2}   {:>5.2}\n",
        "mean",
        avg(|r| r.mpki),
        avg(|r| r.top8),
        avg(|r| r.top25),
        avg(|r| r.top50)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        Scale { branches_per_trace: 8_000, candidates: 4, epochs: 1, max_examples: 200 }
    }

    #[test]
    fn decomposition_is_monotone_and_bounded() {
        for r in run(&tiny_scale()) {
            assert!(r.top8 <= r.top25 + 1e-9, "{:?}", r);
            assert!(r.top25 <= r.top50 + 1e-9, "{:?}", r);
            assert!(r.top50 <= r.mpki + 1e-9, "{:?}", r);
            assert!(r.mpki >= 0.0);
        }
    }

    #[test]
    fn friendly_benchmarks_concentrate_mispredictions() {
        // The paper's Fig. 1 point: a few branches carry most of the
        // MPKI for the BranchNet-friendly benchmarks.
        let rows = run(&tiny_scale());
        // Truly-easy benchmarks (gcc/omnetpp are high-MPKI but diffuse
        // or data-dependent, so they are excluded from "easy").
        let easy_total: f64 = rows
            .iter()
            .filter(|r| {
                matches!(
                    r.bench,
                    Benchmark::X264
                        | Benchmark::Exchange2
                        | Benchmark::Perlbench
                        | Benchmark::Xalancbmk
                )
            })
            .map(|r| r.mpki)
            .fold(0.0, f64::max);
        for r in rows.iter().filter(|r| r.bench.is_branchnet_friendly()) {
            // A handful of static branches must carry a large share of
            // the misprediction budget (the remainder is diffuse
            // noise, as in real leela/mcf)...
            assert!(
                r.top8 > 0.3 * r.mpki,
                "{}: top-8 should carry a large share ({} of {})",
                r.bench.name(),
                r.top8,
                r.mpki
            );
            // ...and the top-8 headroom alone should rival the *total*
            // MPKI of the easy benchmarks.
            assert!(
                r.top8 > 0.5 * easy_total,
                "{}: top-8 ({}) should rival easy benchmarks' total ({})",
                r.bench.name(),
                r.top8,
                easy_total
            );
        }
    }
}
