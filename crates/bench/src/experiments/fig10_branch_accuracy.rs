//! Fig. 10: per-branch accuracy of the most-improved branches in leela
//! and mcf — unlimited MTAGE-SC versus Big-BranchNet.

use crate::experiments::fig09_headroom_mpki::big_config;
use crate::harness::{cached_pack, trace_set, Scale};
use crate::json::{arr_from_json, arr_to_json, FromJson, Json, JsonError, ToJson};
use crate::report::{bench_from_json, bench_to_json};
use branchnet_core::dataset::extract;
use branchnet_core::trainer::evaluate_accuracy;
use branchnet_tage::{TageScL, TageSclConfig};
use branchnet_trace::Gauntlet;
use branchnet_workloads::spec::Benchmark;

/// One branch's pair of bars.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig10Row {
    /// Static branch address.
    pub pc: u64,
    /// MTAGE-SC accuracy on the test traces.
    pub mtage_accuracy: f64,
    /// Big-BranchNet accuracy on the test traces.
    pub branchnet_accuracy: f64,
    /// Dynamic occurrences on the test traces.
    pub occurrences: f64,
}

/// The most-improved branches of one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Result {
    /// The benchmark.
    pub bench: Benchmark,
    /// Rows sorted by validation improvement, best first.
    pub rows: Vec<Fig10Row>,
}

impl ToJson for Fig10Row {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("pc", Json::hex(self.pc)),
            ("mtage_accuracy", Json::Num(self.mtage_accuracy)),
            ("branchnet_accuracy", Json::Num(self.branchnet_accuracy)),
            ("occurrences", Json::Num(self.occurrences)),
        ])
    }
}

impl FromJson for Fig10Row {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            pc: json.field("pc")?.as_hex_u64()?,
            mtage_accuracy: json.field("mtage_accuracy")?.as_f64()?,
            branchnet_accuracy: json.field("branchnet_accuracy")?.as_f64()?,
            occurrences: json.field("occurrences")?.as_f64()?,
        })
    }
}

impl ToJson for Fig10Result {
    fn to_json(&self) -> Json {
        Json::obj(vec![("bench", bench_to_json(self.bench)), ("rows", arr_to_json(&self.rows))])
    }
}

impl FromJson for Fig10Result {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            bench: bench_from_json(json.field("bench")?)?,
            rows: arr_from_json(json.field("rows")?)?,
        })
    }
}

/// Runs the experiment for `bench` (the paper shows leela and mcf),
/// reporting up to `top` branches.
#[must_use]
pub fn run(scale: &Scale, bench: Benchmark, top: usize) -> Fig10Result {
    let mtage = TageSclConfig::mtage_sc_unlimited();
    let traces = trace_set(bench, scale);
    let cfg = big_config();
    // Shared with Fig. 9: same (config, baseline, bench, scale) key.
    let pack = cached_pack(&cfg, &mtage, bench, scale);

    // Test-set baseline per-branch accuracy (cold predictor per trace,
    // via a single tracked gauntlet lane).
    let mut gauntlet = Gauntlet::new();
    let lane = gauntlet.add_tracked(TageScL::new(&mtage));
    for t in &traces.test {
        gauntlet.run(t);
        gauntlet.flush();
    }
    let test_stats = gauntlet
        .finish()
        .swap_remove(lane)
        .branch_stats
        .expect("tracked lane collects per-branch stats");

    let rows = pack
        .models
        .iter()
        .take(top)
        .filter_map(|(r, model)| {
            let base = test_stats.get(r.pc)?;
            let ds = extract(&traces.test, r.pc, cfg.window_len(), cfg.pc_bits);
            if ds.is_empty() {
                return None;
            }
            Some(Fig10Row {
                pc: r.pc,
                mtage_accuracy: base.accuracy(),
                branchnet_accuracy: evaluate_accuracy(&mut model.clone(), &ds),
                occurrences: base.predictions(),
            })
        })
        .collect();
    Fig10Result { bench, rows }
}

/// Paper-style rendering.
#[must_use]
pub fn render(result: &Fig10Result) -> String {
    let mut out = format!(
        "Fig. 10 — accuracy of the most improved branches of {} (test set)\n\
         branch PC     occurrences   MTAGE-SC   Big-BranchNet\n",
        result.bench.name()
    );
    for r in &result.rows {
        out.push_str(&format!(
            "{:#012x}  {:>10.0}    {:>6.3}     {:>6.3}\n",
            r.pc, r.occurrences, r.mtage_accuracy, r.branchnet_accuracy
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leela_improved_branches_beat_mtage_on_test() {
        let scale =
            Scale { branches_per_trace: 25_000, candidates: 4, epochs: 8, max_examples: 1_200 };
        let result = run(&scale, Benchmark::Leela, 4);
        assert!(!result.rows.is_empty(), "leela must yield improvable branches");
        // The paper's observation: BranchNet pushes the top improved
        // branches far beyond what even unlimited MTAGE-SC reaches.
        let best = &result.rows[0];
        assert!(
            best.branchnet_accuracy > best.mtage_accuracy,
            "top branch: CNN {:.3} vs MTAGE {:.3}",
            best.branchnet_accuracy,
            best.mtage_accuracy
        );
    }
}
