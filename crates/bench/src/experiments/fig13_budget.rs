//! Fig. 13: sensitivity of iso-latency Mini-BranchNet to its total
//! storage budget (8 / 16 / 32 / 64 KB packs on the 64 KB baseline).

use crate::experiments::mini_pack::{cached_menu, pack_from_menu};
use crate::harness::{baseline_lane, gauntlet_test_stats, hybrid_lane, trace_set, Scale};
use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::parallel::parallel_map;
use crate::report::{bench_from_json, bench_to_json};
use branchnet_core::config::BranchNetConfig;
use branchnet_core::engine::InferenceEngine;
use branchnet_core::hybrid::{AttachedModel, HybridPredictor};
use branchnet_tage::TageSclConfig;
use branchnet_workloads::spec::Benchmark;

/// One budget point for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig13Point {
    /// The benchmark.
    pub bench: Benchmark,
    /// Total Mini-BranchNet budget in KB.
    pub budget_kb: usize,
    /// MPKI reduction vs the 64 KB baseline (%).
    pub mpki_reduction_pct: f64,
    /// Models actually attached.
    pub models: usize,
}

impl ToJson for Fig13Point {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("bench", bench_to_json(self.bench)),
            ("budget_kb", Json::Num(self.budget_kb as f64)),
            ("mpki_reduction_pct", Json::Num(self.mpki_reduction_pct)),
            ("models", Json::Num(self.models as f64)),
        ])
    }
}

impl FromJson for Fig13Point {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            bench: bench_from_json(json.field("bench")?)?,
            budget_kb: json.field("budget_kb")?.as_usize()?,
            mpki_reduction_pct: json.field("mpki_reduction_pct")?.as_f64()?,
            models: json.field("models")?.as_usize()?,
        })
    }
}

/// Sweeps budgets over the given benchmarks.
#[must_use]
pub fn run(scale: &Scale, benchmarks: &[Benchmark], budgets_kb: &[usize]) -> Vec<Fig13Point> {
    let baseline = TageSclConfig::tage_sc_l_64kb().without_sc_local();
    let per_bench = parallel_map(benchmarks, |&bench| {
        let traces = trace_set(bench, scale);
        // One trained menu serves every budget point: only the cheap
        // knapsack re-runs per budget.
        let menu = cached_menu(bench, &baseline, scale, &BranchNetConfig::mini_menu());
        let hybrids: Vec<(usize, usize, HybridPredictor)> = budgets_kb
            .iter()
            .map(|&kb| {
                let pack = pack_from_menu(&menu, kb * 1024);
                let models = pack.models.len();
                let mut hybrid = HybridPredictor::new(&baseline);
                for (pc, q) in pack.models {
                    hybrid
                        .attach(
                            pc,
                            AttachedModel::Engine(InferenceEngine::new(q).expect("hashed config")),
                        )
                        .expect("hashed config");
                }
                (kb, models, hybrid)
            })
            .collect();
        // The baseline and every budget point share one gauntlet pass
        // per test trace.
        let mut lanes = vec![baseline_lane(&baseline)];
        lanes.extend(hybrids.iter().map(|(_, _, h)| hybrid_lane(h)));
        let stats = gauntlet_test_stats(&traces, &lanes);
        let base = stats[0].mpki();
        hybrids
            .iter()
            .zip(&stats[1..])
            .map(|(&(kb, models, _), s)| {
                let mpki = s.mpki();
                Fig13Point {
                    bench,
                    budget_kb: kb,
                    mpki_reduction_pct: if base > 0.0 { 100.0 * (base - mpki) / base } else { 0.0 },
                    models,
                }
            })
            .collect::<Vec<_>>()
    });
    per_bench.into_iter().flatten().collect()
}

/// Paper-style rendering.
#[must_use]
pub fn render(points: &[Fig13Point]) -> String {
    let mut out = String::from(
        "Fig. 13 — iso-latency Mini-BranchNet MPKI reduction vs storage budget\n\
         benchmark    budget  models  MPKI reduction\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:<12} {:>4}KB  {:>4}    {:>6.1}%\n",
            p.bench.name(),
            p.budget_kb,
            p.models,
            p.mpki_reduction_pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_budgets_attach_at_least_as_many_models() {
        let scale =
            Scale { branches_per_trace: 20_000, candidates: 4, epochs: 6, max_examples: 1_000 };
        let points = run(&scale, &[Benchmark::Xz], &[8, 32]);
        assert_eq!(points.len(), 2);
        assert!(points[1].models >= points[0].models);
        // Bigger budget should not do meaningfully worse.
        assert!(points[1].mpki_reduction_pct >= points[0].mpki_reduction_pct - 2.0);
    }
}
