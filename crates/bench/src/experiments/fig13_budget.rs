//! Fig. 13: sensitivity of iso-latency Mini-BranchNet to its total
//! storage budget (8 / 16 / 32 / 64 KB packs on the 64 KB baseline),
//! with runtime-only reference lanes (loop-only, local perceptron,
//! O-GEHL) at their own fixed budgets for context.

use crate::experiments::mini_pack::{cached_menu, pack_from_menu};
use crate::harness::{
    baseline_lane, gauntlet_test_stats, hybrid_lane, lineup_lane, trace_set, Scale,
};
use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::parallel::parallel_map;
use crate::report::{bench_from_json, bench_to_json};
use branchnet_core::config::BranchNetConfig;
use branchnet_core::engine::InferenceEngine;
use branchnet_core::hybrid::{AttachedModel, HybridPredictor};
use branchnet_tage::TageSclConfig;
use branchnet_workloads::spec::Benchmark;

/// The lane name of the paper's own sweep points (Mini-BranchNet packs
/// attached to the TAGE base). Reference points carry a lineup name
/// instead.
pub const MINI_PACK_LANE: &str = "mini-pack";

/// The runtime-only baselines measured as fig13 reference points, by
/// lineup name.
pub const FIG13_REFERENCE_BASELINES: [&str; 3] = ["loop-only", "local-perceptron", "o-gehl"];

/// One budget point for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig13Point {
    /// The benchmark.
    pub bench: Benchmark,
    /// Which lane produced the point: [`MINI_PACK_LANE`] for the
    /// paper's budget sweep, or a [`branchnet_tage::baseline_lineup`]
    /// name for a runtime-only reference.
    pub lane: &'static str,
    /// Total storage budget in KB: the Mini-BranchNet pack budget, or
    /// the reference predictor's own storage rounded up.
    pub budget_kb: usize,
    /// MPKI reduction vs the 64 KB baseline (%).
    pub mpki_reduction_pct: f64,
    /// Models actually attached (0 for reference lanes).
    pub models: usize,
}

/// Resolves a serialized lane name to its static identity, failing
/// closed on names no current lane produces.
fn lane_from_json(json: &Json) -> Result<&'static str, JsonError> {
    let name = json.as_str()?;
    if name == MINI_PACK_LANE {
        return Ok(MINI_PACK_LANE);
    }
    branchnet_tage::lineup_entry(name)
        .map(|e| e.name)
        .ok_or_else(|| format!("unknown fig13 lane {name:?}"))
}

impl ToJson for Fig13Point {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("bench", bench_to_json(self.bench)),
            ("lane", Json::Str(self.lane.to_string())),
            ("budget_kb", Json::Num(self.budget_kb as f64)),
            ("mpki_reduction_pct", Json::Num(self.mpki_reduction_pct)),
            ("models", Json::Num(self.models as f64)),
        ])
    }
}

impl FromJson for Fig13Point {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            bench: bench_from_json(json.field("bench")?)?,
            // Absent in artifacts written before reference lanes
            // existed (schema v1): every point was a mini-pack point.
            lane: json.get("lane").map_or(Ok(MINI_PACK_LANE), lane_from_json)?,
            budget_kb: json.field("budget_kb")?.as_usize()?,
            mpki_reduction_pct: json.field("mpki_reduction_pct")?.as_f64()?,
            models: json.field("models")?.as_usize()?,
        })
    }
}

/// Sweeps budgets over the given benchmarks; every benchmark also gets
/// one reference point per [`FIG13_REFERENCE_BASELINES`] entry.
#[must_use]
pub fn run(scale: &Scale, benchmarks: &[Benchmark], budgets_kb: &[usize]) -> Vec<Fig13Point> {
    let baseline = TageSclConfig::tage_sc_l_64kb().without_sc_local();
    let references = FIG13_REFERENCE_BASELINES.map(|name| {
        branchnet_tage::lineup_entry(name)
            .unwrap_or_else(|| panic!("{name} missing from baseline_lineup()"))
    });
    let per_bench = parallel_map(benchmarks, |&bench| {
        let traces = trace_set(bench, scale);
        // One trained menu serves every budget point: only the cheap
        // knapsack re-runs per budget.
        let menu = cached_menu(bench, &baseline, scale, &BranchNetConfig::mini_menu());
        let hybrids: Vec<(usize, usize, HybridPredictor)> = budgets_kb
            .iter()
            .map(|&kb| {
                let pack = pack_from_menu(&menu, kb * 1024);
                let models = pack.models.len();
                let mut hybrid = HybridPredictor::new(&baseline);
                for (pc, q) in pack.models {
                    hybrid
                        .attach(
                            pc,
                            AttachedModel::Engine(InferenceEngine::new(q).expect("hashed config")),
                        )
                        .expect("hashed config");
                }
                (kb, models, hybrid)
            })
            .collect();
        // The baseline, every budget point, and the reference lanes
        // share one gauntlet pass per test trace.
        let mut lanes = vec![baseline_lane(&baseline)];
        lanes.extend(hybrids.iter().map(|(_, _, h)| hybrid_lane(h)));
        lanes.extend(references.iter().map(lineup_lane));
        let stats = gauntlet_test_stats(&traces, &lanes);
        let base = stats[0].mpki();
        let reduction = |mpki: f64| if base > 0.0 { 100.0 * (base - mpki) / base } else { 0.0 };
        let mut points: Vec<Fig13Point> = hybrids
            .iter()
            .zip(&stats[1..])
            .map(|(&(kb, models, _), s)| Fig13Point {
                bench,
                lane: MINI_PACK_LANE,
                budget_kb: kb,
                mpki_reduction_pct: reduction(s.mpki()),
                models,
            })
            .collect();
        points.extend(references.iter().zip(&stats[1 + hybrids.len()..]).map(|(e, s)| {
            Fig13Point {
                bench,
                lane: e.name,
                budget_kb: ((e.build)().storage_bits() as usize).div_ceil(8 * 1024),
                mpki_reduction_pct: reduction(s.mpki()),
                models: 0,
            }
        }));
        points
    });
    per_bench.into_iter().flatten().collect()
}

/// Paper-style rendering.
#[must_use]
pub fn render(points: &[Fig13Point]) -> String {
    let mut out = String::from(
        "Fig. 13 — iso-latency Mini-BranchNet MPKI reduction vs storage budget\n\
         benchmark    lane              budget  models  MPKI reduction\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:<12} {:<16} {:>4}KB  {:>4}    {:>6.1}%\n",
            p.bench.name(),
            p.lane,
            p.budget_kb,
            p.models,
            p.mpki_reduction_pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_budgets_attach_at_least_as_many_models() {
        let scale =
            Scale { branches_per_trace: 20_000, candidates: 4, epochs: 6, max_examples: 1_000 };
        let points = run(&scale, &[Benchmark::Xz], &[8, 32]);
        let minis: Vec<&Fig13Point> = points.iter().filter(|p| p.lane == MINI_PACK_LANE).collect();
        assert_eq!(minis.len(), 2);
        assert!(minis[1].models >= minis[0].models);
        // Bigger budget should not do meaningfully worse.
        assert!(minis[1].mpki_reduction_pct >= minis[0].mpki_reduction_pct - 2.0);
        // One reference point per registered reference baseline, each
        // with a real storage figure and no attached models.
        let refs: Vec<&Fig13Point> = points.iter().filter(|p| p.lane != MINI_PACK_LANE).collect();
        assert_eq!(refs.len(), FIG13_REFERENCE_BASELINES.len());
        for r in &refs {
            assert!(FIG13_REFERENCE_BASELINES.contains(&r.lane));
            assert!(r.budget_kb > 0);
            assert_eq!(r.models, 0);
        }
    }

    #[test]
    fn lane_round_trips_and_fails_closed() {
        assert_eq!(lane_from_json(&Json::Str(MINI_PACK_LANE.into())).unwrap(), MINI_PACK_LANE);
        assert_eq!(lane_from_json(&Json::Str("o-gehl".into())).unwrap(), "o-gehl");
        assert!(lane_from_json(&Json::Str("not-a-lane".into())).is_err());
    }
}
