//! Fig. 4: offline-training generalization on the motivating
//! microbenchmark.
//!
//! CNNs are trained on the paper's three training-input distributions
//! for branch B of Fig. 3, then evaluated (together with a runtime
//! 64 KB TAGE-SC-L) on runs with `N ~ rand(5, 10)` and α swept from
//! 0.2 to 1.0. The expected shape: training sets (1) and (2) fail to
//! generalize (often below TAGE), while set (3) — diverse enough to
//! expose the input-independent count correlation — stays accurate at
//! every α.

use crate::harness::Scale;
use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::parallel::parallel_map;
use branchnet_core::config::BranchNetConfig;
use branchnet_core::dataset::extract;
use branchnet_core::model::BranchNetModel;
use branchnet_core::trainer::{evaluate_accuracy, train_model};
use branchnet_tage::{TageScL, TageSclConfig};
use branchnet_trace::run_one_per_branch;
use branchnet_workloads::motivating::{MotivatingConfig, MotivatingWorkload, PC_B};

/// Accuracy of each predictor on branch B at one α point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig04Point {
    /// The evaluation α.
    pub alpha: f64,
    /// Runtime TAGE-SC-L accuracy on branch B.
    pub tage: f64,
    /// CNN accuracy per training set (paper's sets 1–3).
    pub cnn: [f64; 3],
}

impl ToJson for Fig04Point {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("alpha", Json::Num(self.alpha)),
            ("tage", Json::Num(self.tage)),
            ("cnn", Json::Arr(self.cnn.iter().map(|&a| Json::Num(a)).collect())),
        ])
    }
}

impl FromJson for Fig04Point {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let cnn_arr = json.field("cnn")?.as_arr()?;
        if cnn_arr.len() != 3 {
            return Err(format!("expected 3 cnn accuracies, got {}", cnn_arr.len()));
        }
        let mut cnn = [0.0; 3];
        for (slot, v) in cnn.iter_mut().zip(cnn_arr) {
            *slot = v.as_f64()?;
        }
        Ok(Self { alpha: json.field("alpha")?.as_f64()?, tage: json.field("tage")?.as_f64()?, cnn })
    }
}

/// The CNN architecture used for this figure: three geometric slices
/// with wide pooling (a scaled Big-BranchNet; see DESIGN.md on compute
/// scaling). Validated to beat runtime TAGE-SC-L at every α when
/// trained on the diverse set (3).
#[must_use]
pub fn model_config() -> BranchNetConfig {
    use branchnet_core::config::SliceConfig;
    BranchNetConfig {
        name: "fig4-big-scaled".into(),
        slices: [(24usize, 3usize), (96, 24), (192, 96)]
            .into_iter()
            .map(|(h, p)| SliceConfig {
                history: h,
                channels: 16,
                pool_width: p,
                precise_pooling: true,
            })
            .collect(),
        pc_bits: 12,
        conv_hash_bits: None,
        embedding_dim: 8,
        conv_width: 1,
        hidden: vec![24],
        fc_quant_bits: None,
        tanh_activations: false,
    }
}

/// Trains the three CNNs and sweeps α.
#[must_use]
pub fn run(scale: &Scale) -> Vec<Fig04Point> {
    let cfg = model_config();
    let mut opts = scale.train_options();
    opts.epochs = opts.epochs.max(20);
    opts.max_examples = opts.max_examples.max(6_000);
    // One model per paper training set; a set may comprise several
    // profiled inputs (set 3 does). The three sets train in parallel.
    let models: Vec<BranchNetModel> =
        parallel_map(&MotivatingConfig::fig4_training_sets(), |set| {
            let mut traces = Vec::new();
            for (i, dist) in set.iter().enumerate() {
                let w = MotivatingWorkload::new(*dist);
                for seed in [100u64, 200, 300] {
                    traces.push(w.generate(seed + i as u64 * 7, scale.branches_per_trace));
                }
            }
            let ds = extract(&traces, PC_B, cfg.window_len(), cfg.pc_bits);
            train_model(&cfg, &ds, &opts).0
        });

    // α points evaluate in parallel; each clones the frozen models
    // (evaluation needs scratch state, not weight changes).
    parallel_map(&[0.2, 0.4, 0.6, 0.8, 1.0], |&alpha| {
        let w = MotivatingWorkload::new(MotivatingConfig::fig4_test(alpha));
        let trace = w.generate(0xE0 + (alpha * 10.0) as u64, scale.branches_per_trace);
        let mut tage = TageScL::new(&TageSclConfig::tage_sc_l_64kb());
        let stats = run_one_per_branch(&mut tage, &trace);
        let tage_acc = stats.get(PC_B).map_or(1.0, |s| s.accuracy());
        let ds = extract(&[trace], PC_B, cfg.window_len(), cfg.pc_bits);
        let mut cnn = [0.0; 3];
        for (i, m) in models.iter().enumerate() {
            cnn[i] = evaluate_accuracy(&mut m.clone(), &ds);
        }
        Fig04Point { alpha, tage: tage_acc, cnn }
    })
}

/// Paper-style rendering.
#[must_use]
pub fn render(points: &[Fig04Point]) -> String {
    let mut out = String::from(
        "Fig. 4 — Branch B accuracy vs alpha (test: N~rand(5,10))\n\
         alpha   TAGE-SC-L   CNN set1 (N=10,a=1)   CNN set2 (N~5..10,a=1)   CNN set3 (N~2..8,a={.5,.9})\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:>4.1}     {:>6.3}        {:>6.3}               {:>6.3}                 {:>6.3}\n",
            p.alpha, p.tage, p.cnn[0], p.cnn[1], p.cnn[2]
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set3_generalizes_sets_1_and_2_do_not() {
        let scale =
            Scale { branches_per_trace: 40_000, candidates: 1, epochs: 20, max_examples: 4_000 };
        let points = run(&scale);
        // At low alpha (far from sets 1/2's training distribution),
        // the diverse set-3 CNN must beat the degenerate ones.
        let low = points.iter().find(|p| p.alpha < 0.5).expect("has low alpha point");
        assert!(
            low.cnn[2] > low.cnn[0] + 0.05 && low.cnn[2] > low.cnn[1] + 0.05,
            "set3 {:.3} must clearly beat set1 {:.3} / set2 {:.3} at alpha {}",
            low.cnn[2],
            low.cnn[0],
            low.cnn[1],
            low.alpha
        );
        // And set 3 must be strong across the sweep (the paper shows
        // ~100%).
        for p in &points {
            assert!(p.cnn[2] > 0.85, "set3 accuracy {:.3} at alpha {}", p.cnn[2], p.alpha);
        }
    }
}
