//! Fig. 9: headroom study — MPKI of MTAGE-SC (the unlimited-storage
//! CBP2016 winner stand-in), MTAGE-SC + Big-BranchNet, and MTAGE-SC
//! component ablations, per benchmark.

use crate::harness::{
    baseline_lane, cached_pack, float_hybrid, gauntlet_test_stats, hybrid_lane, trace_set, Scale,
};
use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::parallel::parallel_map;
use crate::report::{bench_from_json, bench_to_json};
use branchnet_core::config::BranchNetConfig;
use branchnet_tage::TageSclConfig;
use branchnet_workloads::spec::Benchmark;

/// One benchmark's Fig. 9 bars.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig09Row {
    /// Which benchmark.
    pub bench: Benchmark,
    /// 64 KB TAGE-SC-L (context bar).
    pub tage_sc_l_64kb: f64,
    /// MTAGE-SC (unlimited stand-in).
    pub mtage_sc: f64,
    /// MTAGE-SC + Big-BranchNet.
    pub mtage_plus_big: f64,
    /// GTAGE alone (no SC, no loop).
    pub gtage_only: f64,
    /// MTAGE-SC without the SC's local-history component.
    pub no_sc_local: f64,
    /// Number of static branches Big-BranchNet improved.
    pub improved_branches: usize,
}

impl ToJson for Fig09Row {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("bench", bench_to_json(self.bench)),
            ("tage_sc_l_64kb", Json::Num(self.tage_sc_l_64kb)),
            ("mtage_sc", Json::Num(self.mtage_sc)),
            ("mtage_plus_big", Json::Num(self.mtage_plus_big)),
            ("gtage_only", Json::Num(self.gtage_only)),
            ("no_sc_local", Json::Num(self.no_sc_local)),
            ("improved_branches", Json::Num(self.improved_branches as f64)),
        ])
    }
}

impl FromJson for Fig09Row {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            bench: bench_from_json(json.field("bench")?)?,
            tage_sc_l_64kb: json.field("tage_sc_l_64kb")?.as_f64()?,
            mtage_sc: json.field("mtage_sc")?.as_f64()?,
            mtage_plus_big: json.field("mtage_plus_big")?.as_f64()?,
            gtage_only: json.field("gtage_only")?.as_f64()?,
            no_sc_local: json.field("no_sc_local")?.as_f64()?,
            improved_branches: json.field("improved_branches")?.as_usize()?,
        })
    }
}

/// The Big model used for headroom (compute-scaled; see DESIGN.md).
#[must_use]
pub fn big_config() -> BranchNetConfig {
    BranchNetConfig::big_scaled()
}

/// Runs the experiment for the given benchmarks (all ten in the
/// binaries; subsets in tests).
#[must_use]
pub fn run(scale: &Scale, benchmarks: &[Benchmark]) -> Vec<Fig09Row> {
    let mtage = TageSclConfig::mtage_sc_unlimited();
    parallel_map(benchmarks, |&bench| {
        let traces = trace_set(bench, scale);
        // Big-BranchNet on top of MTAGE-SC (trained once per process;
        // Fig. 10 reuses the same pack).
        let pack = cached_pack(&big_config(), &mtage, bench, scale);
        let improved = pack.models.len();
        let hybrid = float_hybrid(&pack, &mtage, usize::MAX);

        // All five bars ride one gauntlet: each test trace is decoded
        // once and scores every configuration simultaneously.
        let lanes = [
            baseline_lane(&TageSclConfig::tage_sc_l_64kb()),
            baseline_lane(&mtage),
            baseline_lane(&mtage.clone().gtage_only()),
            baseline_lane(&mtage.clone().without_sc_local()),
            hybrid_lane(&hybrid),
        ];
        let stats = gauntlet_test_stats(&traces, &lanes);

        Fig09Row {
            bench,
            tage_sc_l_64kb: stats[0].mpki(),
            mtage_sc: stats[1].mpki(),
            mtage_plus_big: stats[4].mpki(),
            gtage_only: stats[2].mpki(),
            no_sc_local: stats[3].mpki(),
            improved_branches: improved,
        }
    })
}

/// Paper-style rendering.
#[must_use]
pub fn render(rows: &[Fig09Row]) -> String {
    let mut out = String::from(
        "Fig. 9 — MPKI of MTAGE-SC and Big-BranchNet (plus ablations)\n\
         benchmark    TAGE64  GTAGE   MTAGE-noLocal  MTAGE-SC  +BigBranchNet  improved-branches\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>6.3} {:>6.3}  {:>9.3}      {:>6.3}    {:>9.3}      {:>5}\n",
            r.bench.name(),
            r.tage_sc_l_64kb,
            r.gtage_only,
            r.no_sc_local,
            r.mtage_sc,
            r.mtage_plus_big,
            r.improved_branches
        ));
    }
    let mean = |f: fn(&Fig09Row) -> f64| rows.iter().map(f).sum::<f64>() / rows.len() as f64;
    let base = mean(|r| r.mtage_sc);
    let plus = mean(|r| r.mtage_plus_big);
    out.push_str(&format!(
        "mean MTAGE-SC {base:.3} -> +Big {plus:.3} ({:.1}% MPKI reduction; paper: 7.6%)\n",
        100.0 * (base - plus) / base.max(1e-9)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_improves_mtage_on_a_friendly_benchmark() {
        let scale =
            Scale { branches_per_trace: 25_000, candidates: 4, epochs: 8, max_examples: 1_200 };
        let rows = run(&scale, &[Benchmark::Xz]);
        let r = &rows[0];
        // MTAGE-SC beats 64KB TAGE-SC-L (more storage).
        assert!(r.mtage_sc <= r.tage_sc_l_64kb * 1.05, "{r:?}");
        // Big-BranchNet finds headroom beyond unlimited TAGE.
        assert!(r.mtage_plus_big < r.mtage_sc, "{r:?}");
        assert!(r.improved_branches > 0);
        // Ablations hurt (GTAGE-only is the weakest variant).
        assert!(r.gtage_only >= r.mtage_sc * 0.99, "{r:?}");
    }
}
