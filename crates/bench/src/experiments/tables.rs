//! Tables I–IV.
//!
//! * Table I — architecture knobs of every configuration (static).
//! * Table II — inference-engine storage breakdown (computed).
//! * Table III — workload input partitioning (static).
//! * Table IV — leela's MPKI-reduction ladder from Big-BranchNet down
//!   to fully-quantized Mini-BranchNet (measured).

use crate::harness::{
    baseline_lane, cached_pack, gauntlet_test_stats, hybrid_lane, lineup_lane, trace_set, Scale,
};
use crate::json::{arr_from_json, arr_to_json, FromJson, Json, JsonError, ToJson};
use crate::report::{bench_from_json, bench_to_json};
use branchnet_core::config::BranchNetConfig;
use branchnet_core::engine::InferenceEngine;
use branchnet_core::hybrid::{AttachedModel, HybridPredictor};
use branchnet_core::quantize::QuantizedMini;
use branchnet_core::storage::storage_breakdown;
use branchnet_tage::TageSclConfig;
use branchnet_workloads::spec::{Benchmark, SpecSuite};

/// Renders Table I: every preset's knobs.
#[must_use]
pub fn table1() -> String {
    let configs = [
        BranchNetConfig::big(),
        BranchNetConfig::big_scaled(),
        BranchNetConfig::mini_2kb(),
        BranchNetConfig::mini_1kb(),
        BranchNetConfig::mini_05kb(),
        BranchNetConfig::mini_025kb(),
        BranchNetConfig::tarsa_float(),
        BranchNetConfig::tarsa_ternary(),
    ];
    let mut out = String::from("Table I — architecture knobs\n");
    for c in &configs {
        let hist: Vec<usize> = c.slices.iter().map(|s| s.history).collect();
        let chans: Vec<usize> = c.slices.iter().map(|s| s.channels).collect();
        let pools: Vec<usize> = c.slices.iter().map(|s| s.pool_width).collect();
        let precise: Vec<&str> =
            c.slices.iter().map(|s| if s.precise_pooling { "Y" } else { "N" }).collect();
        out.push_str(&format!(
            "{:<12} H={:?} C={:?} P={:?} precise={:?} p={} h={:?} E={} K={} N={:?} q={:?}\n",
            c.name,
            hist,
            chans,
            pools,
            precise,
            c.pc_bits,
            c.conv_hash_bits,
            c.embedding_dim,
            c.conv_width,
            c.hidden,
            c.fc_quant_bits
        ));
    }
    out
}

/// Renders Table II: storage breakdown per Mini preset.
#[must_use]
pub fn table2() -> String {
    let mut out = String::from(
        "Table II — Mini-BranchNet inference-engine storage per static branch\n\
         config        conv-tables  precise-pool  sliding-pool  fully-connected  total\n",
    );
    for (cfg, _) in BranchNetConfig::mini_menu() {
        let b = storage_breakdown(&cfg);
        out.push_str(&format!(
            "{:<12}  {:>8.3}KB   {:>8.3}KB    {:>8.3}KB    {:>8.3}KB     {:>6.3}KB\n",
            cfg.name,
            b.conv_tables_bits as f64 / 8192.0,
            b.precise_pooling_bits as f64 / 8192.0,
            b.sliding_pooling_bits as f64 / 8192.0,
            b.fully_connected_bits as f64 / 8192.0,
            b.total_kb()
        ));
    }
    out
}

/// Renders Table III: the input partition of every workload.
#[must_use]
pub fn table3() -> String {
    let mut out = String::from("Table III — workload input partitioning (train / valid / test)\n");
    for w in SpecSuite::all() {
        let parts = w.inputs();
        let fmt = |v: &[branchnet_workloads::program::ProgramInput]| {
            v.iter()
                .map(|i| format!("{}(p={},s={})", i.label, i.knob(0, 0.0), i.knob(1, 0.0)))
                .collect::<Vec<_>>()
                .join(", ")
        };
        out.push_str(&format!(
            "{:<12} train: {} | valid: {} | test: {}\n",
            w.name(),
            fmt(&parts.train),
            fmt(&parts.valid),
            fmt(&parts.test)
        ));
    }
    out
}

/// One rung of the Table IV quantization ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Rung label.
    pub label: String,
    /// MPKI reduction over the baseline (%).
    pub mpki_reduction_pct: f64,
}

impl ToJson for Table4Row {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", Json::Str(self.label.clone())),
            ("mpki_reduction_pct", Json::Num(self.mpki_reduction_pct)),
        ])
    }
}

impl FromJson for Table4Row {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            label: json.field("label")?.as_str()?.to_string(),
            mpki_reduction_pct: json.field("mpki_reduction_pct")?.as_f64()?,
        })
    }
}

/// Table IV as stored in a report artifact: the benchmark the ladder
/// was measured on plus its rungs.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Report {
    /// The measured benchmark (the paper uses leela).
    pub bench: Benchmark,
    /// Ladder rungs, Big first.
    pub rows: Vec<Table4Row>,
}

impl ToJson for Table4Report {
    fn to_json(&self) -> Json {
        Json::obj(vec![("bench", bench_to_json(self.bench)), ("rows", arr_to_json(&self.rows))])
    }
}

impl FromJson for Table4Report {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            bench: bench_from_json(json.field("bench")?)?,
            rows: arr_from_json(json.field("rows")?)?,
        })
    }
}

/// Measures the Table IV ladder on one benchmark (the paper uses
/// leela).
#[must_use]
pub fn table4(scale: &Scale, bench: Benchmark) -> Vec<Table4Row> {
    let baseline = TageSclConfig::tage_sc_l_64kb().without_sc_local();
    let traces = trace_set(bench, scale);

    // Rung 1: Big-BranchNet, no capacity limit. Rung 2 reuses the
    // same cached pack (the serial version trained it twice).
    let big_pack = cached_pack(&BranchNetConfig::big_scaled(), &baseline, bench, scale);
    let mut big_hybrid = HybridPredictor::new(&baseline);
    for (r, m) in &big_pack.models {
        big_hybrid.attach(r.pc, AttachedModel::Float(m.clone())).expect("float attach");
    }

    // Mini models (2 KB config) for the same branches.
    let mini_cfg = BranchNetConfig::mini_2kb();
    let mini_pack = cached_pack(&mini_cfg, &baseline, bench, scale);
    let mini_pcs: Vec<u64> = mini_pack.models.iter().map(|(r, _)| r.pc).collect();

    // Rung 2: Big restricted to the branches Mini covers.
    let mut big_same_hybrid = HybridPredictor::new(&baseline);
    for (r, m) in &big_pack.models {
        if mini_pcs.contains(&r.pc) {
            big_same_hybrid.attach(r.pc, AttachedModel::Float(m.clone())).expect("float attach");
        }
    }

    // Rungs 3–5 share the same trained Mini float models.
    let mut float_hybrid = HybridPredictor::new(&baseline);
    let mut conv_hybrid = HybridPredictor::new(&baseline);
    let mut full_hybrid = HybridPredictor::new(&baseline);
    for (r, m) in &mini_pack.models {
        let quant = QuantizedMini::from_model(m);
        conv_hybrid.attach(r.pc, AttachedModel::ConvQuant(quant.clone())).expect("hashed config");
        full_hybrid
            .attach(
                r.pc,
                AttachedModel::Engine(InferenceEngine::new(quant).expect("hashed config")),
            )
            .expect("hashed config");
        float_hybrid.attach(r.pc, AttachedModel::Float(m.clone())).expect("float attach");
    }

    // The baseline, all five rungs, and the runtime-baseline reference
    // lanes share one gauntlet pass per test trace. Reference lanes
    // extend the paper's ladder downward: how the best conventional
    // runtime-only designs fare against the same TAGE base (usually a
    // negative "reduction" — they are weaker than TAGE-SC-L).
    let references = TABLE4_REFERENCE_BASELINES.map(|name| {
        branchnet_tage::lineup_entry(name)
            .unwrap_or_else(|| panic!("{name} missing from baseline_lineup()"))
    });
    let mut lanes = vec![
        baseline_lane(&baseline),
        hybrid_lane(&big_hybrid),
        hybrid_lane(&big_same_hybrid),
        hybrid_lane(&float_hybrid),
        hybrid_lane(&conv_hybrid),
        hybrid_lane(&full_hybrid),
    ];
    lanes.extend(references.iter().map(lineup_lane));
    let stats = gauntlet_test_stats(&traces, &lanes);
    let base = stats[0].mpki();
    let reduction = |mpki: f64| if base > 0.0 { 100.0 * (base - mpki) / base } else { 0.0 };

    let labels = [
        "Big-BranchNet: no branch capacity limit".to_string(),
        "Big-BranchNet: same branches as Mini".to_string(),
        "Mini-BranchNet: floating-point".to_string(),
        "Mini-BranchNet: quantized convolution".to_string(),
        "Mini-BranchNet: fully-quantized".to_string(),
    ]
    .into_iter()
    .chain(references.iter().map(|e| format!("Runtime baseline: {}", e.name)));
    labels
        .zip(&stats[1..])
        .map(|(label, s)| Table4Row { label, mpki_reduction_pct: reduction(s.mpki()) })
        .collect()
}

/// The runtime-only baselines appended to the Table IV ladder as
/// reference rungs, by lineup name.
pub const TABLE4_REFERENCE_BASELINES: [&str; 3] = ["loop-only", "local-perceptron", "o-gehl"];

/// Paper-style rendering of Table IV.
#[must_use]
pub fn render_table4(bench: Benchmark, rows: &[Table4Row]) -> String {
    let mut out = format!("Table IV — MPKI-reduction progression on {}\n", bench.name());
    for r in rows {
        out.push_str(&format!("{:<45} {:>6.1}%\n", r.label, r.mpki_reduction_pct));
    }
    out.push_str("(paper, leela: 35.8 / 25.1 / 20.0 / 18.7 / 15.7%)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_presets() {
        let t = table1();
        for name in ["big", "mini-2kb", "mini-1kb", "mini-0.5kb", "mini-0.25kb", "tarsa-ternary"] {
            assert!(t.contains(name), "missing {name} in table I");
        }
    }

    #[test]
    fn table2_totals_near_nominal() {
        let t = table2();
        assert!(t.contains("mini-1kb"));
        assert!(t.lines().count() >= 6);
    }

    #[test]
    fn table3_covers_all_benchmarks() {
        let t = table3();
        for b in Benchmark::all() {
            assert!(t.contains(b.name()));
        }
    }

    #[test]
    fn table4_ladder_decreases_from_big_to_quantized() {
        let scale =
            Scale { branches_per_trace: 20_000, candidates: 4, epochs: 8, max_examples: 1_200 };
        let rows = table4(&scale, Benchmark::Xz);
        assert_eq!(rows.len(), 8);
        // Shape: Big (no cap) is the ceiling; fully-quantized is below
        // Mini float (quantization costs accuracy); everything stays
        // positive on a friendly benchmark.
        assert!(rows[0].mpki_reduction_pct > 0.0, "{rows:?}");
        assert!(
            rows[4].mpki_reduction_pct <= rows[2].mpki_reduction_pct + 2.0,
            "fully-quantized should not beat float Mini by more than noise: {rows:?}"
        );
        // The reference rungs: runtime-only baselines, labeled by
        // lineup name. No ordering vs the CNN rungs is asserted — at
        // this tiny training scale O-GEHL can legitimately edge out
        // the starved Big-BranchNet — only that each measured against
        // the same base and landed in the representable range.
        for (row, name) in rows[5..].iter().zip(TABLE4_REFERENCE_BASELINES) {
            assert_eq!(row.label, format!("Runtime baseline: {name}"));
            assert!(
                row.mpki_reduction_pct.is_finite() && row.mpki_reduction_pct < 100.0,
                "a reference rung left the representable range: {rows:?}"
            );
        }
    }
}
