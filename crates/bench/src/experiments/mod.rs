//! One module per paper table/figure. Every module exposes
//! `run(&Scale) -> ...` returning structured rows and a `render`
//! function producing the paper-style text the `src/bin/` wrappers
//! print.

pub mod fig01_headroom;
pub mod fig04_motivating;
pub mod fig09_headroom_mpki;
pub mod fig10_branch_accuracy;
pub mod fig11_practical;
pub mod fig12_trainset;
pub mod fig13_budget;
pub mod mini_pack;
pub mod tables;
