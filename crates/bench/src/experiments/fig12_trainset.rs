//! Fig. 12: sensitivity of Big-BranchNet's MPKI reduction to the
//! amount of training data.
//!
//! The paper varies the number of profiled training traces; this
//! reproduction sweeps the per-branch training-example budget, which
//! is the same lever (examples scale linearly with trace count).

use crate::harness::{
    baseline_lane, cached_pack, float_hybrid, gauntlet_test_stats, hybrid_lane, trace_set, Scale,
};
use crate::json::{arr_from_json, arr_to_json, FromJson, Json, JsonError, ToJson};
use crate::parallel::parallel_map;
use crate::report::{bench_from_json, bench_to_json};
use branchnet_core::config::BranchNetConfig;
use branchnet_tage::TageSclConfig;
use branchnet_workloads::spec::Benchmark;

/// MPKI reduction at one training-set size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig12Point {
    /// Examples per branch used for training.
    pub examples: usize,
    /// Big-BranchNet hybrid MPKI reduction vs the baseline (%).
    pub mpki_reduction_pct: f64,
}

/// One benchmark's full sweep (the unit the report layer stores, so
/// one artifact can carry several benchmarks' sweeps).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Sweep {
    /// The benchmark swept.
    pub bench: Benchmark,
    /// Points in ascending training-set size.
    pub points: Vec<Fig12Point>,
}

impl ToJson for Fig12Point {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("examples", Json::Num(self.examples as f64)),
            ("mpki_reduction_pct", Json::Num(self.mpki_reduction_pct)),
        ])
    }
}

impl FromJson for Fig12Point {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            examples: json.field("examples")?.as_usize()?,
            mpki_reduction_pct: json.field("mpki_reduction_pct")?.as_f64()?,
        })
    }
}

impl ToJson for Fig12Sweep {
    fn to_json(&self) -> Json {
        Json::obj(vec![("bench", bench_to_json(self.bench)), ("points", arr_to_json(&self.points))])
    }
}

impl FromJson for Fig12Sweep {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            bench: bench_from_json(json.field("bench")?)?,
            points: arr_from_json(json.field("points")?)?,
        })
    }
}

/// Runs the sweep on one benchmark.
#[must_use]
pub fn run(scale: &Scale, bench: Benchmark) -> Vec<Fig12Point> {
    let baseline = TageSclConfig::tage_sc_l_64kb();
    let traces = trace_set(bench, scale);
    // Each point trains a distinct pack (the per-point scale differs
    // in `max_examples`, so the cache keys differ), but all points
    // share the one trace set because the trace cache keys on
    // `branches_per_trace` alone. Training fans out in parallel...
    let packs = parallel_map(
        &[
            scale.max_examples / 8,
            scale.max_examples / 4,
            scale.max_examples / 2,
            scale.max_examples,
        ],
        |&examples| {
            let mut s = *scale;
            s.max_examples = examples.max(50);
            (s.max_examples, cached_pack(&BranchNetConfig::big_scaled(), &baseline, bench, &s))
        },
    );
    // ...and then the baseline plus all four hybrids ride one gauntlet
    // pass over the test traces.
    let hybrids: Vec<_> =
        packs.iter().map(|(_, pack)| float_hybrid(pack, &baseline, usize::MAX)).collect();
    let mut lanes = vec![baseline_lane(&baseline)];
    lanes.extend(hybrids.iter().map(hybrid_lane));
    let stats = gauntlet_test_stats(&traces, &lanes);
    let base = stats[0].mpki();
    packs
        .iter()
        .zip(&stats[1..])
        .map(|(&(examples, _), s)| {
            let mpki = s.mpki();
            Fig12Point {
                examples,
                mpki_reduction_pct: if base > 0.0 { 100.0 * (base - mpki) / base } else { 0.0 },
            }
        })
        .collect()
}

/// Paper-style rendering.
#[must_use]
pub fn render(bench: Benchmark, points: &[Fig12Point]) -> String {
    let mut out = format!(
        "Fig. 12 — Big-BranchNet MPKI reduction vs training-set size ({})\n\
         examples/branch   MPKI reduction\n",
        bench.name()
    );
    for p in points {
        out.push_str(&format!("{:>12}        {:>6.1}%\n", p.examples, p.mpki_reduction_pct));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_data_does_not_hurt_much() {
        let scale =
            Scale { branches_per_trace: 20_000, candidates: 3, epochs: 6, max_examples: 1_600 };
        let points = run(&scale, Benchmark::Xz);
        assert_eq!(points.len(), 4);
        let first = points.first().expect("has points");
        let last = points.last().expect("has points");
        // The paper's Fig. 12 shape: reductions grow (or at least do
        // not collapse) with more training data.
        assert!(
            last.mpki_reduction_pct >= first.mpki_reduction_pct - 3.0,
            "full data {:.1}% vs smallest {:.1}%",
            last.mpki_reduction_pct,
            first.mpki_reduction_pct
        );
        assert!(last.mpki_reduction_pct > 0.0);
    }
}
