//! Fig. 11: the practical settings — MPKI and IPC improvement over a
//! 64 KB TAGE-SC-L (SC local-history components disabled, as in the
//! paper) for:
//!
//! * **iso-storage**: 56 KB TAGE-SC-L + 8 KB of Mini-BranchNet engines,
//! * **iso-latency**: 64 KB TAGE-SC-L + 32 KB of Mini-BranchNet engines,
//! * **Big-BranchNet** (float software model, headroom),
//! * **Tarsa-Float** and **Tarsa-Ternary** (prior-work CNNs).

use crate::experiments::mini_pack::{build_mini_pack, build_pack_with_menu, MiniPack};
use crate::harness::{cached_pack, float_hybrid, trace_set, Scale};
use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::metrics;
use crate::parallel::parallel_map;
use crate::report::{bench_from_json, bench_to_json};
use branchnet_core::config::BranchNetConfig;
use branchnet_core::engine::InferenceEngine;
use branchnet_core::hybrid::{AttachedModel, HybridPredictor};
use branchnet_core::storage::storage_breakdown;
use branchnet_sim::{simulate_many, CpuConfig, DirectionSource, SimResult};
use branchnet_tage::{TageScL, TageSclConfig};
use branchnet_trace::{PredictionStats, Trace, TraceSet};
use branchnet_workloads::spec::Benchmark;

/// MPKI and IPC for one setting on one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Setting {
    /// Weighted test MPKI.
    pub mpki: f64,
    /// Aggregate test IPC.
    pub ipc: f64,
}

/// One benchmark's Fig. 11 numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig11Row {
    /// Which benchmark.
    pub bench: Benchmark,
    /// The 64 KB TAGE-SC-L baseline.
    pub base: Setting,
    /// 56 KB TAGE-SC-L + 8 KB Mini-BranchNet.
    pub iso_storage: Setting,
    /// 64 KB TAGE-SC-L + 32 KB Mini-BranchNet.
    pub iso_latency: Setting,
    /// 64 KB TAGE-SC-L + Big-BranchNet (float).
    pub big: Setting,
    /// 64 KB TAGE-SC-L + Tarsa-Float.
    pub tarsa_float: Setting,
    /// 64 KB TAGE-SC-L + Tarsa-Ternary.
    pub tarsa_ternary: Setting,
}

impl ToJson for Setting {
    fn to_json(&self) -> Json {
        Json::obj(vec![("mpki", Json::Num(self.mpki)), ("ipc", Json::Num(self.ipc))])
    }
}

impl FromJson for Setting {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(Self { mpki: json.field("mpki")?.as_f64()?, ipc: json.field("ipc")?.as_f64()? })
    }
}

impl ToJson for Fig11Row {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("bench", bench_to_json(self.bench)),
            ("base", self.base.to_json()),
            ("iso_storage", self.iso_storage.to_json()),
            ("iso_latency", self.iso_latency.to_json()),
            ("big", self.big.to_json()),
            ("tarsa_float", self.tarsa_float.to_json()),
            ("tarsa_ternary", self.tarsa_ternary.to_json()),
        ])
    }
}

impl FromJson for Fig11Row {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let setting = |k: &str| json.field(k).and_then(Setting::from_json);
        Ok(Self {
            bench: bench_from_json(json.field("bench")?)?,
            base: setting("base")?,
            iso_storage: setting("iso_storage")?,
            iso_latency: setting("iso_latency")?,
            big: setting("big")?,
            tarsa_float: setting("tarsa_float")?,
            tarsa_ternary: setting("tarsa_ternary")?,
        })
    }
}

/// One lane's [`Setting`] out of the per-trace multi-lane sim results.
///
/// The timing model drives its late predictor through exactly the
/// prediction/update sequence of a trace evaluation, so MPKI is
/// derived from each trace's `SimResult` counters
/// (via [`PredictionStats::from_counts`], merged weighted in trace
/// order) — byte-identical to a separate `hybrid_test_mpki` walk,
/// without paying for one. IPC stays an exact integer aggregate.
fn lane_setting(results: &[Vec<SimResult>], traces: &TraceSet, lane: usize) -> Setting {
    let mut agg = PredictionStats::new();
    for (per_lane, t) in results.iter().zip(&traces.test) {
        let r = &per_lane[lane];
        agg.merge_weighted(
            &PredictionStats::from_counts(
                r.branches as f64,
                r.mispredictions as f64,
                r.instructions as f64,
            ),
            t.weight(),
        );
    }
    let cycles: u64 = results.iter().map(|p| p[lane].cycles).sum();
    let insts: u64 = results.iter().map(|p| p[lane].instructions).sum();
    Setting { mpki: agg.mpki(), ipc: insts as f64 / cycles.max(1) as f64 }
}

fn engine_hybrid(pack: &MiniPack, baseline: &TageSclConfig) -> HybridPredictor {
    let mut hybrid = HybridPredictor::new(baseline);
    for (pc, q) in &pack.models {
        hybrid
            .attach(
                *pc,
                AttachedModel::Engine(InferenceEngine::new(q.clone()).expect("hashed config")),
            )
            .expect("hashed config");
    }
    hybrid
}

/// Runs Fig. 11 for the given benchmarks.
#[must_use]
pub fn run(scale: &Scale, benchmarks: &[Benchmark]) -> Vec<Fig11Row> {
    let cpu = CpuConfig::skylake_like();
    // Paper: local SC components disabled in the practical setting.
    let base64 = TageSclConfig::tage_sc_l_64kb().without_sc_local();
    let base56 = TageSclConfig::tage_sc_l_56kb().without_sc_local();

    parallel_map(benchmarks, |&bench| {
        let traces = trace_set(bench, scale);

        // iso-storage: 8 KB of engines on a 56 KB baseline.
        let pack8 = build_mini_pack(bench, &base56, scale, 8 * 1024);
        let iso_storage_h = engine_hybrid(&pack8, &base56);

        // iso-latency: 32 KB of engines on the 64 KB baseline (same
        // menu as iso-storage only when the baselines match, so the
        // two settings train separate menus as before).
        let pack32 = build_mini_pack(bench, &base64, scale, 32 * 1024);
        let iso_latency_h = engine_hybrid(&pack32, &base64);

        // Big-BranchNet float headroom.
        let big_pack = cached_pack(&BranchNetConfig::big_scaled(), &base64, bench, scale);
        let big_h = float_hybrid(&big_pack, &base64, usize::MAX);

        // Tarsa-Float.
        let tf_pack = cached_pack(&BranchNetConfig::tarsa_float(), &base64, bench, scale);
        let tf_h = float_hybrid(&tf_pack, &base64, usize::MAX);

        // Tarsa-Ternary: one config, up to 29 branches at
        // 5.125 KB/branch in the paper; we budget accordingly.
        let ternary_cfg = BranchNetConfig::tarsa_ternary();
        let ternary_bytes = (storage_breakdown(&ternary_cfg).total_bits() / 8) as usize;
        let menu = vec![(ternary_cfg, ternary_bytes)];
        let packt = build_pack_with_menu(bench, &base64, scale, 29 * ternary_bytes, &menu);
        let tt_h = engine_hybrid(&packt, &base64);

        // All six settings share one timing pass per test trace: the
        // baseline and five cold hybrid clones ride the same decode
        // behind one shared early predictor.
        let hybrids = [&iso_storage_h, &iso_latency_h, &big_h, &tf_h, &tt_h];
        let results: Vec<Vec<SimResult>> = parallel_map(&traces.test, |t: &Trace| {
            let start = std::time::Instant::now();
            let mut base = TageScL::new(&base64);
            let mut clones: Vec<HybridPredictor> =
                hybrids.iter().map(|h| h.fresh_runtime_clone()).collect();
            let mut lanes: Vec<&mut dyn DirectionSource> = Vec::with_capacity(1 + clones.len());
            lanes.push(&mut base);
            for h in &mut clones {
                lanes.push(h);
            }
            let out = simulate_many(t, &mut lanes, &cpu);
            metrics::record_pass(out.len(), start.elapsed());
            out
        });

        Fig11Row {
            bench,
            base: lane_setting(&results, &traces, 0),
            iso_storage: lane_setting(&results, &traces, 1),
            iso_latency: lane_setting(&results, &traces, 2),
            big: lane_setting(&results, &traces, 3),
            tarsa_float: lane_setting(&results, &traces, 4),
            tarsa_ternary: lane_setting(&results, &traces, 5),
        }
    })
}

/// Percentage improvements of a setting over the per-row baseline.
#[must_use]
pub fn improvements(row: &Fig11Row, s: &Setting) -> (f64, f64) {
    let mpki =
        if row.base.mpki > 0.0 { 100.0 * (row.base.mpki - s.mpki) / row.base.mpki } else { 0.0 };
    let ipc = if row.base.ipc > 0.0 { 100.0 * (s.ipc / row.base.ipc - 1.0) } else { 0.0 };
    (mpki, ipc)
}

/// Paper-style rendering.
#[must_use]
pub fn render(rows: &[Fig11Row]) -> String {
    let mut out = String::from(
        "Fig. 11 — MPKI / IPC improvement over 64KB TAGE-SC-L (SC local disabled)\n\
         benchmark    base-MPKI  isoStor(dMPKI%,dIPC%)  isoLat(dMPKI%,dIPC%)  Big(dMPKI%,dIPC%)  TarsaF(dMPKI%)  TarsaT(dMPKI%)\n",
    );
    for r in rows {
        let (s_m, s_i) = improvements(r, &r.iso_storage);
        let (l_m, l_i) = improvements(r, &r.iso_latency);
        let (b_m, b_i) = improvements(r, &r.big);
        let (tf_m, _) = improvements(r, &r.tarsa_float);
        let (tt_m, _) = improvements(r, &r.tarsa_ternary);
        out.push_str(&format!(
            "{:<12} {:>8.3}   {:>6.1}%, {:>5.2}%        {:>6.1}%, {:>5.2}%       {:>6.1}%, {:>5.2}%    {:>6.1}%        {:>6.1}%\n",
            r.bench.name(),
            r.base.mpki,
            s_m,
            s_i,
            l_m,
            l_i,
            b_m,
            b_i,
            tf_m,
            tt_m
        ));
    }
    if !rows.is_empty() {
        let mean =
            |f: &dyn Fn(&Fig11Row) -> f64| rows.iter().map(f).sum::<f64>() / rows.len() as f64;
        out.push_str(&format!(
            "mean dMPKI: isoStorage {:.1}% (paper 5.5%), isoLatency {:.1}% (paper 9.6%), Big {:.1}%\n",
            mean(&|r| improvements(r, &r.iso_storage).0),
            mean(&|r| improvements(r, &r.iso_latency).0),
            mean(&|r| improvements(r, &r.big).0),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iso_latency_beats_baseline_on_friendly_benchmark() {
        let scale =
            Scale { branches_per_trace: 20_000, candidates: 4, epochs: 6, max_examples: 1_000 };
        let rows = run(&scale, &[Benchmark::Xz]);
        let r = &rows[0];
        let (mpki_gain, _) = improvements(r, &r.iso_latency);
        assert!(mpki_gain > 0.0, "iso-latency must reduce MPKI on xz: {r:?}");
        // More budget should never lose to less budget by much.
        assert!(r.iso_latency.mpki <= r.iso_storage.mpki * 1.15, "{r:?}");
        // IPC should move the same direction as MPKI.
        assert!(r.iso_latency.ipc >= r.base.ipc * 0.99, "{r:?}");
    }
}
