//! Memoized experiment artifacts.
//!
//! Several figures need the same expensive intermediates — a
//! benchmark's [`TraceSet`], a trained Big/Tarsa model pack, a
//! Mini-BranchNet quantized-model menu. The serial reproduction
//! regenerated each of them every time it was needed (e.g. the Big
//! pack of Fig. 9 was retrained for Fig. 10, and Table IV trained the
//! identical pack twice). [`ArtifactCache`] memoizes them behind a
//! process-wide thread-safe map so each artifact is computed **exactly
//! once** per run and shared by `Arc`:
//!
//! * trace sets are keyed by `(benchmark, branches_per_trace)` — the
//!   only [`Scale`] field generation depends on, so Fig. 12's
//!   per-point scale tweaks still share one trace set;
//! * trained packs are keyed by `(model config, baseline config,
//!   benchmark, scale)`;
//! * Mini menus (the per-candidate quantized models Fig. 11/13 feed
//!   to the knapsack) are keyed by `(menu, baseline config, benchmark,
//!   scale)`, so a budget sweep trains the menu once and re-solves
//!   only the cheap knapsack per budget.
//!
//! Config keys use the configs' `Debug` fingerprint: two configs
//! collide only if every knob matches, in which case the artifacts
//! are interchangeable. Per-key [`OnceLock`] cells guarantee
//! compute-once semantics even when parallel experiment threads race
//! on the same key (losers block until the winner's value is ready).
//! Hit/miss counters feed the `reproduce` summary.

use crate::experiments::mini_pack::TrainedMenu;
use crate::harness::{Scale, TrainedPack};
use branchnet_core::config::BranchNetConfig;
use branchnet_tage::TageSclConfig;
use branchnet_trace::TraceSet;
use branchnet_workloads::spec::Benchmark;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// `(model-config fingerprint, baseline fingerprint, benchmark,
/// scale)`.
type PackKey = (String, String, Benchmark, Scale);
/// `(menu fingerprint, baseline fingerprint, benchmark, scale)`.
type MenuKey = (String, String, Benchmark, Scale);
/// A compute-once map: per-key [`OnceLock`] cells under one lock.
type Memo<K, V> = Mutex<HashMap<K, Arc<OnceLock<V>>>>;

/// Snapshot of the cache's hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Trace-set lookups served from the cache.
    pub trace_hits: u64,
    /// Trace-set generations performed.
    pub trace_misses: u64,
    /// Pack lookups served from the cache.
    pub pack_hits: u64,
    /// Pack trainings performed.
    pub pack_misses: u64,
    /// Menu lookups served from the cache.
    pub menu_hits: u64,
    /// Menu trainings performed.
    pub menu_misses: u64,
}

impl CacheStats {
    /// One-line summary for the `reproduce` report.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "trace sets: {} generated, {} reused | packs: {} trained, {} reused | \
             menus: {} trained, {} reused",
            self.trace_misses,
            self.trace_hits,
            self.pack_misses,
            self.pack_hits,
            self.menu_misses,
            self.menu_hits
        )
    }
}

/// Process-wide memo of trace sets, trained packs, and Mini menus.
#[derive(Default)]
pub struct ArtifactCache {
    traces: Memo<(Benchmark, usize), Arc<TraceSet>>,
    packs: Memo<PackKey, Arc<TrainedPack>>,
    menus: Memo<MenuKey, Arc<TrainedMenu>>,
    trace_hits: AtomicU64,
    trace_misses: AtomicU64,
    pack_hits: AtomicU64,
    pack_misses: AtomicU64,
    menu_hits: AtomicU64,
    menu_misses: AtomicU64,
}

/// Looks up `key`, computing the value at most once per key across
/// all threads. The map lock is held only to fetch the per-key cell,
/// never during `compute`, so distinct keys build concurrently while
/// racing lookups of one key block on its [`OnceLock`].
fn get_or_compute<K, V>(
    map: &Memo<K, V>,
    hits: &AtomicU64,
    misses: &AtomicU64,
    key: K,
    compute: impl FnOnce() -> V,
) -> V
where
    K: Eq + Hash,
    V: Clone,
{
    let cell = {
        let mut m = map.lock().expect("cache map poisoned");
        Arc::clone(m.entry(key).or_insert_with(|| Arc::new(OnceLock::new())))
    };
    let mut computed = false;
    let value = cell.get_or_init(|| {
        computed = true;
        compute()
    });
    if computed {
        misses.fetch_add(1, Ordering::Relaxed);
    } else {
        hits.fetch_add(1, Ordering::Relaxed);
    }
    value.clone()
}

impl ArtifactCache {
    /// The process-wide cache instance.
    #[must_use]
    pub fn global() -> &'static ArtifactCache {
        static GLOBAL: OnceLock<ArtifactCache> = OnceLock::new();
        GLOBAL.get_or_init(ArtifactCache::default)
    }

    /// The trace set for `bench` at `branches_per_trace` branches per
    /// trace, generating it on first use.
    pub fn trace_set(
        &self,
        bench: Benchmark,
        branches_per_trace: usize,
        compute: impl FnOnce() -> TraceSet,
    ) -> Arc<TraceSet> {
        get_or_compute(
            &self.traces,
            &self.trace_hits,
            &self.trace_misses,
            (bench, branches_per_trace),
            || Arc::new(compute()),
        )
    }

    /// The trained pack for `(config, baseline, bench, scale)`,
    /// training it on first use.
    pub fn pack(
        &self,
        config: &BranchNetConfig,
        baseline: &TageSclConfig,
        bench: Benchmark,
        scale: &Scale,
        compute: impl FnOnce() -> TrainedPack,
    ) -> Arc<TrainedPack> {
        get_or_compute(
            &self.packs,
            &self.pack_hits,
            &self.pack_misses,
            (format!("{config:?}"), format!("{baseline:?}"), bench, *scale),
            || Arc::new(compute()),
        )
    }

    /// The trained Mini menu for `(menu, baseline, bench, scale)`,
    /// training it on first use.
    pub fn menu(
        &self,
        menu: &[(BranchNetConfig, usize)],
        baseline: &TageSclConfig,
        bench: Benchmark,
        scale: &Scale,
        compute: impl FnOnce() -> TrainedMenu,
    ) -> Arc<TrainedMenu> {
        get_or_compute(
            &self.menus,
            &self.menu_hits,
            &self.menu_misses,
            (format!("{menu:?}"), format!("{baseline:?}"), bench, *scale),
            || Arc::new(compute()),
        )
    }

    /// Current hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            trace_hits: self.trace_hits.load(Ordering::Relaxed),
            trace_misses: self.trace_misses.load(Ordering::Relaxed),
            pack_hits: self.pack_hits.load(Ordering::Relaxed),
            pack_misses: self.pack_misses.load(Ordering::Relaxed),
            menu_hits: self.menu_hits.load(Ordering::Relaxed),
            menu_misses: self.menu_misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchnet_trace::Trace;

    fn tiny_trace_set() -> TraceSet {
        TraceSet { train: vec![Trace::new()], valid: vec![Trace::new()], test: vec![Trace::new()] }
    }

    #[test]
    fn trace_set_computed_once_and_shared() {
        let cache = ArtifactCache::default();
        let mut calls = 0u32;
        let a = cache.trace_set(Benchmark::Xz, 123, || {
            calls += 1;
            tiny_trace_set()
        });
        let b = cache.trace_set(Benchmark::Xz, 123, || {
            calls += 1;
            tiny_trace_set()
        });
        assert_eq!(calls, 1, "second lookup must hit the cache");
        assert!(Arc::ptr_eq(&a, &b), "hits share one allocation");
        let s = cache.stats();
        assert_eq!((s.trace_misses, s.trace_hits), (1, 1));
    }

    #[test]
    fn distinct_keys_compute_separately() {
        let cache = ArtifactCache::default();
        cache.trace_set(Benchmark::Xz, 10, tiny_trace_set);
        cache.trace_set(Benchmark::Xz, 20, tiny_trace_set);
        cache.trace_set(Benchmark::Leela, 10, tiny_trace_set);
        let s = cache.stats();
        assert_eq!((s.trace_misses, s.trace_hits), (3, 0));
    }

    #[test]
    fn racing_lookups_compute_exactly_once() {
        let cache = ArtifactCache::default();
        let computes = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    cache.trace_set(Benchmark::Mcf, 7, || {
                        computes.fetch_add(1, Ordering::Relaxed);
                        tiny_trace_set()
                    });
                });
            }
        });
        assert_eq!(computes.load(Ordering::Relaxed), 1);
        let s = cache.stats();
        assert_eq!(s.trace_misses, 1);
        assert_eq!(s.trace_hits, 7);
    }
}
