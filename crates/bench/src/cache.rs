//! Memoized experiment artifacts.
//!
//! Several figures need the same expensive intermediates — a
//! benchmark's [`TraceSet`], a trained Big/Tarsa model pack, a
//! Mini-BranchNet quantized-model menu. The serial reproduction
//! regenerated each of them every time it was needed (e.g. the Big
//! pack of Fig. 9 was retrained for Fig. 10, and Table IV trained the
//! identical pack twice). [`ArtifactCache`] memoizes them behind a
//! process-wide thread-safe map so each artifact is computed **exactly
//! once** per run and shared by `Arc`:
//!
//! * trace sets are keyed by `(benchmark, branches_per_trace)` — the
//!   only [`Scale`] field generation depends on, so Fig. 12's
//!   per-point scale tweaks still share one trace set;
//! * trained packs are keyed by `(model config, baseline config,
//!   benchmark, scale)`;
//! * Mini menus (the per-candidate quantized models Fig. 11/13 feed
//!   to the knapsack) are keyed by `(menu, baseline config, benchmark,
//!   scale)`, so a budget sweep trains the menu once and re-solves
//!   only the cheap knapsack per budget.
//!
//! Config keys use the configs' `Debug` fingerprint: two configs
//! collide only if every knob matches, in which case the artifacts
//! are interchangeable. Per-key [`OnceLock`] cells guarantee
//! compute-once semantics even when parallel experiment threads race
//! on the same key (losers block until the winner's value is ready).
//! Hit/miss counters feed the `reproduce` summary.
//!
//! Every lookup also carries a caller-supplied *validator*
//! (DESIGN.md §9): a cached artifact that fails validation is evicted
//! (guarded by `Arc::ptr_eq`, so a racing thread's fresh replacement
//! is never clobbered) and recomputed exactly once per lookup.
//! Evictions are counted in [`CacheStats::evictions`] and surfaced in
//! the degradation report.

use crate::experiments::mini_pack::TrainedMenu;
use crate::harness::{Scale, TrainedPack};
use branchnet_core::config::BranchNetConfig;
use branchnet_tage::TageSclConfig;
use branchnet_trace::TraceSet;
use branchnet_workloads::spec::Benchmark;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// `(model-config fingerprint, baseline fingerprint, benchmark,
/// scale)`.
type PackKey = (String, String, Benchmark, Scale);
/// `(menu fingerprint, baseline fingerprint, benchmark, scale)`.
type MenuKey = (String, String, Benchmark, Scale);
/// A compute-once map: per-key [`OnceLock`] cells under one lock.
type Memo<K, V> = Mutex<HashMap<K, Arc<OnceLock<V>>>>;

/// Snapshot of the cache's hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Trace-set lookups served from the cache.
    pub trace_hits: u64,
    /// Trace-set generations performed.
    pub trace_misses: u64,
    /// Pack lookups served from the cache.
    pub pack_hits: u64,
    /// Pack trainings performed.
    pub pack_misses: u64,
    /// Menu lookups served from the cache.
    pub menu_hits: u64,
    /// Menu trainings performed.
    pub menu_misses: u64,
    /// Entries evicted after failing validation (each one triggered a
    /// recompute).
    pub evictions: u64,
}

impl CacheStats {
    /// One-line summary for the `reproduce` report.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "trace sets: {} generated, {} reused | packs: {} trained, {} reused | \
             menus: {} trained, {} reused | {} evicted",
            self.trace_misses,
            self.trace_hits,
            self.pack_misses,
            self.pack_hits,
            self.menu_misses,
            self.menu_hits,
            self.evictions
        )
    }
}

/// Process-wide memo of trace sets, trained packs, and Mini menus.
#[derive(Default)]
pub struct ArtifactCache {
    traces: Memo<(Benchmark, usize), Arc<TraceSet>>,
    packs: Memo<PackKey, Arc<TrainedPack>>,
    menus: Memo<MenuKey, Arc<TrainedMenu>>,
    trace_hits: AtomicU64,
    trace_misses: AtomicU64,
    pack_hits: AtomicU64,
    pack_misses: AtomicU64,
    menu_hits: AtomicU64,
    menu_misses: AtomicU64,
    evictions: AtomicU64,
}

/// Looks up `key`, computing the value at most once per key across
/// all threads. The map lock is held only to fetch the per-key cell,
/// never during `compute`, so distinct keys build concurrently while
/// racing lookups of one key block on its [`OnceLock`].
///
/// A value that fails `validate` is evicted and recomputed **once**:
/// the eviction is guarded by `Arc::ptr_eq` against the fetched cell,
/// so if another thread already evicted and replaced the entry, its
/// fresh value is reused instead of being clobbered. If the recomputed
/// value fails validation too it is returned as-is (callers see their
/// own inputs' brokenness rather than looping).
fn get_or_compute<K, V>(
    map: &Memo<K, V>,
    hits: &AtomicU64,
    misses: &AtomicU64,
    evictions: &AtomicU64,
    key: K,
    compute: impl Fn() -> V,
    validate: impl Fn(&V) -> bool,
) -> V
where
    K: Eq + Hash + Clone,
    V: Clone,
{
    let cell = {
        let mut m = map.lock().expect("cache map poisoned");
        Arc::clone(m.entry(key.clone()).or_insert_with(|| Arc::new(OnceLock::new())))
    };
    let mut computed = false;
    let value = cell
        .get_or_init(|| {
            computed = true;
            compute()
        })
        .clone();
    if computed {
        misses.fetch_add(1, Ordering::Relaxed);
    } else {
        hits.fetch_add(1, Ordering::Relaxed);
    }
    if validate(&value) {
        return value;
    }
    evictions.fetch_add(1, Ordering::Relaxed);
    // Swap in a fresh cell unless another thread already did.
    let fresh_cell = {
        let mut m = map.lock().expect("cache map poisoned");
        let entry = m.entry(key).or_insert_with(|| Arc::new(OnceLock::new()));
        if Arc::ptr_eq(entry, &cell) {
            *entry = Arc::new(OnceLock::new());
        }
        Arc::clone(entry)
    };
    let mut recomputed = false;
    let value = fresh_cell
        .get_or_init(|| {
            recomputed = true;
            compute()
        })
        .clone();
    if recomputed {
        misses.fetch_add(1, Ordering::Relaxed);
    } else {
        hits.fetch_add(1, Ordering::Relaxed);
    }
    value
}

impl ArtifactCache {
    /// The process-wide cache instance.
    #[must_use]
    pub fn global() -> &'static ArtifactCache {
        static GLOBAL: OnceLock<ArtifactCache> = OnceLock::new();
        GLOBAL.get_or_init(ArtifactCache::default)
    }

    /// The trace set for `bench` at `branches_per_trace` branches per
    /// trace, generating it on first use. A cached set that fails
    /// `validate` is evicted and regenerated once.
    pub fn trace_set(
        &self,
        bench: Benchmark,
        branches_per_trace: usize,
        compute: impl Fn() -> TraceSet,
        validate: impl Fn(&TraceSet) -> bool,
    ) -> Arc<TraceSet> {
        get_or_compute(
            &self.traces,
            &self.trace_hits,
            &self.trace_misses,
            &self.evictions,
            (bench, branches_per_trace),
            || Arc::new(compute()),
            |v| validate(v),
        )
    }

    /// The trained pack for `(config, baseline, bench, scale)`,
    /// training it on first use. A cached pack that fails `validate`
    /// is evicted and retrained once.
    pub fn pack(
        &self,
        config: &BranchNetConfig,
        baseline: &TageSclConfig,
        bench: Benchmark,
        scale: &Scale,
        compute: impl Fn() -> TrainedPack,
        validate: impl Fn(&TrainedPack) -> bool,
    ) -> Arc<TrainedPack> {
        get_or_compute(
            &self.packs,
            &self.pack_hits,
            &self.pack_misses,
            &self.evictions,
            (format!("{config:?}"), format!("{baseline:?}"), bench, *scale),
            || Arc::new(compute()),
            |v| validate(v),
        )
    }

    /// The trained Mini menu for `(menu, baseline, bench, scale)`,
    /// training it on first use. A cached menu that fails `validate`
    /// is evicted and retrained once.
    pub fn menu(
        &self,
        menu: &[(BranchNetConfig, usize)],
        baseline: &TageSclConfig,
        bench: Benchmark,
        scale: &Scale,
        compute: impl Fn() -> TrainedMenu,
        validate: impl Fn(&TrainedMenu) -> bool,
    ) -> Arc<TrainedMenu> {
        get_or_compute(
            &self.menus,
            &self.menu_hits,
            &self.menu_misses,
            &self.evictions,
            (format!("{menu:?}"), format!("{baseline:?}"), bench, *scale),
            || Arc::new(compute()),
            |v| validate(v),
        )
    }

    /// Current hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            trace_hits: self.trace_hits.load(Ordering::Relaxed),
            trace_misses: self.trace_misses.load(Ordering::Relaxed),
            pack_hits: self.pack_hits.load(Ordering::Relaxed),
            pack_misses: self.pack_misses.load(Ordering::Relaxed),
            menu_hits: self.menu_hits.load(Ordering::Relaxed),
            menu_misses: self.menu_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchnet_trace::Trace;

    fn tiny_trace_set() -> TraceSet {
        TraceSet { train: vec![Trace::new()], valid: vec![Trace::new()], test: vec![Trace::new()] }
    }

    fn always_valid(_: &TraceSet) -> bool {
        true
    }

    #[test]
    fn trace_set_computed_once_and_shared() {
        let cache = ArtifactCache::default();
        let calls = AtomicU64::new(0);
        let a = cache.trace_set(
            Benchmark::Xz,
            123,
            || {
                calls.fetch_add(1, Ordering::Relaxed);
                tiny_trace_set()
            },
            always_valid,
        );
        let b = cache.trace_set(
            Benchmark::Xz,
            123,
            || {
                calls.fetch_add(1, Ordering::Relaxed);
                tiny_trace_set()
            },
            always_valid,
        );
        assert_eq!(calls.load(Ordering::Relaxed), 1, "second lookup must hit the cache");
        assert!(Arc::ptr_eq(&a, &b), "hits share one allocation");
        let s = cache.stats();
        assert_eq!((s.trace_misses, s.trace_hits, s.evictions), (1, 1, 0));
    }

    #[test]
    fn distinct_keys_compute_separately() {
        let cache = ArtifactCache::default();
        cache.trace_set(Benchmark::Xz, 10, tiny_trace_set, always_valid);
        cache.trace_set(Benchmark::Xz, 20, tiny_trace_set, always_valid);
        cache.trace_set(Benchmark::Leela, 10, tiny_trace_set, always_valid);
        let s = cache.stats();
        assert_eq!((s.trace_misses, s.trace_hits), (3, 0));
    }

    #[test]
    fn racing_lookups_compute_exactly_once() {
        let cache = ArtifactCache::default();
        let computes = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    cache.trace_set(
                        Benchmark::Mcf,
                        7,
                        || {
                            computes.fetch_add(1, Ordering::Relaxed);
                            tiny_trace_set()
                        },
                        always_valid,
                    );
                });
            }
        });
        assert_eq!(computes.load(Ordering::Relaxed), 1);
        let s = cache.stats();
        assert_eq!(s.trace_misses, 1);
        assert_eq!(s.trace_hits, 7);
    }

    #[test]
    fn invalid_entry_is_evicted_and_recomputed_once() {
        let cache = ArtifactCache::default();
        let computes = AtomicU64::new(0);
        // First build produces an "empty" (invalid) set; the validator
        // rejects it, forcing one eviction and one recompute.
        let got = cache.trace_set(
            Benchmark::Xz,
            5,
            || {
                let n = computes.fetch_add(1, Ordering::Relaxed);
                if n == 0 {
                    TraceSet { train: vec![], valid: vec![], test: vec![] }
                } else {
                    tiny_trace_set()
                }
            },
            |ts| !ts.train.is_empty(),
        );
        assert_eq!(computes.load(Ordering::Relaxed), 2);
        assert!(!got.train.is_empty(), "caller receives the recomputed value");
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.trace_misses, 2);

        // The healthy replacement stays cached: the next lookup hits.
        let again = cache.trace_set(
            Benchmark::Xz,
            5,
            || {
                computes.fetch_add(1, Ordering::Relaxed);
                tiny_trace_set()
            },
            |ts| !ts.train.is_empty(),
        );
        assert_eq!(computes.load(Ordering::Relaxed), 2);
        assert!(Arc::ptr_eq(&got, &again));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn persistently_invalid_entry_is_returned_after_one_retry() {
        // An artifact whose recompute is also invalid must not loop:
        // the caller gets the (still-invalid) value back and each
        // subsequent lookup pays exactly one more eviction + rebuild.
        let cache = ArtifactCache::default();
        let computes = AtomicU64::new(0);
        let build = || {
            computes.fetch_add(1, Ordering::Relaxed);
            TraceSet { train: vec![], valid: vec![], test: vec![] }
        };
        let got = cache.trace_set(Benchmark::Mcf, 9, build, |ts| !ts.train.is_empty());
        assert!(got.train.is_empty());
        assert_eq!(computes.load(Ordering::Relaxed), 2, "exactly one retry per lookup");
        assert_eq!(cache.stats().evictions, 1);
    }
}
