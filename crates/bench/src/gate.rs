//! Fidelity regression gate.
//!
//! Compares a fresh JSON run (see [`crate::report`]) against the
//! checked-in golden baselines under explicit per-metric tolerances,
//! so a code change that silently degrades MPKI reduction or
//! quantization accuracy fails CI with a table naming the offending
//! experiment and metric instead of slipping through as "tests still
//! green".
//!
//! Tolerance classes are selected by metric-name suffix:
//!
//! | metric suffix        | class        | default tolerance          |
//! |----------------------|--------------|----------------------------|
//! | `mpki` / `*_mpki`    | absolute     | ±0.05 MPKI                 |
//! | `*_reduction_pct`    | relative     | ±max(0.5 pt, 5% of value)  |
//! | `*_accuracy`         | abs. points  | ±1.0 percentage point      |
//! | `*_ipc`              | relative     | ±1% of value               |
//! | anything else        | exact        | byte/bit equality          |
//!
//! The gate is symmetric: an unexplained *improvement* is drift too —
//! it means the committed baselines no longer describe the tree and
//! must be regenerated (`scripts/regen_baselines.sh`), which is
//! exactly the review-visible event the gate exists to force.

use crate::report::{ExperimentReport, MetricValue, RunReport};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Per-class tolerance knobs. Loosen a knob (or regenerate baselines)
/// in the same PR as an intentional metric shift — see EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatePolicy {
    /// Absolute MPKI epsilon.
    pub mpki_abs: f64,
    /// Relative tolerance on reduction percentages (fraction of the
    /// baseline magnitude).
    pub reduction_rel: f64,
    /// Absolute floor on reduction-percentage drift, in percentage
    /// points (keeps near-zero baselines from demanding exactness).
    pub reduction_floor_pct: f64,
    /// Accuracy drift allowance in percentage points (accuracies are
    /// stored in `[0, 1]`).
    pub accuracy_points: f64,
    /// Relative IPC tolerance (fraction of the baseline value).
    pub ipc_rel: f64,
}

impl Default for GatePolicy {
    fn default() -> Self {
        Self {
            mpki_abs: 0.05,
            reduction_rel: 0.05,
            reduction_floor_pct: 0.5,
            accuracy_points: 1.0,
            ipc_rel: 0.01,
        }
    }
}

/// The tolerance class a metric name maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToleranceClass {
    /// Absolute-epsilon MPKI comparison.
    Mpki,
    /// Relative-with-floor reduction-percentage comparison.
    ReductionPct,
    /// Percentage-point accuracy comparison.
    Accuracy,
    /// Relative IPC comparison.
    Ipc,
    /// Exact equality (counts, addresses, rendered tables, and any
    /// metric the policy does not recognize — unknown names failing
    /// closed is deliberate).
    Exact,
}

impl GatePolicy {
    /// Classifies a metric name by suffix.
    #[must_use]
    pub fn classify(name: &str) -> ToleranceClass {
        if name == "mpki" || name.ends_with("_mpki") {
            ToleranceClass::Mpki
        } else if name.ends_with("_reduction_pct") {
            ToleranceClass::ReductionPct
        } else if name == "accuracy" || name.ends_with("_accuracy") {
            ToleranceClass::Accuracy
        } else if name == "ipc" || name.ends_with("_ipc") {
            ToleranceClass::Ipc
        } else {
            ToleranceClass::Exact
        }
    }

    /// The largest `|fresh - baseline|` this policy accepts for
    /// `name` given the baseline value.
    #[must_use]
    pub fn allowed_drift(&self, name: &str, baseline: f64) -> f64 {
        match Self::classify(name) {
            ToleranceClass::Mpki => self.mpki_abs,
            ToleranceClass::ReductionPct => {
                self.reduction_floor_pct.max(self.reduction_rel * baseline.abs())
            }
            ToleranceClass::Accuracy => self.accuracy_points / 100.0,
            ToleranceClass::Ipc => self.ipc_rel * baseline.abs(),
            ToleranceClass::Exact => 0.0,
        }
    }
}

/// Why a comparison failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Baseline and fresh runs were written under different schemas.
    SchemaVersion,
    /// Baseline and fresh runs used different scales.
    ScaleMismatch,
    /// An experiment present in the baselines is absent from the
    /// fresh run.
    MissingExperiment,
    /// The fresh run produced an experiment the baselines lack.
    ExtraExperiment,
    /// A metric present in the baselines is absent from the fresh run.
    MissingMetric,
    /// The fresh run produced a metric the baselines lack.
    ExtraMetric,
    /// A numeric metric moved beyond its tolerance.
    Drift,
    /// An exact-match (text) metric changed.
    TextDrift,
    /// A metric changed representation (number vs text).
    TypeMismatch,
}

impl ViolationKind {
    /// Short label for the violation table.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ViolationKind::SchemaVersion => "schema-version",
            ViolationKind::ScaleMismatch => "scale-mismatch",
            ViolationKind::MissingExperiment => "missing-experiment",
            ViolationKind::ExtraExperiment => "extra-experiment",
            ViolationKind::MissingMetric => "missing-metric",
            ViolationKind::ExtraMetric => "extra-metric",
            ViolationKind::Drift => "drift",
            ViolationKind::TextDrift => "text-drift",
            ViolationKind::TypeMismatch => "type-mismatch",
        }
    }
}

/// One gate failure, addressed down to the metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// What failed.
    pub kind: ViolationKind,
    /// Experiment (artifact) name.
    pub experiment: String,
    /// Row key within the experiment (`-` for run-level failures).
    pub row: String,
    /// Metric name (`-` for row/experiment-level failures).
    pub metric: String,
    /// Human-readable baseline-vs-fresh detail.
    pub detail: String,
}

fn violation(
    kind: ViolationKind,
    experiment: &str,
    row: &str,
    metric: &str,
    detail: String,
) -> Violation {
    Violation {
        kind,
        experiment: experiment.to_string(),
        row: row.to_string(),
        metric: metric.to_string(),
        detail,
    }
}

/// Diffs one experiment pair under the policy.
#[must_use]
pub fn diff_experiment(
    baseline: &ExperimentReport,
    fresh: &ExperimentReport,
    policy: &GatePolicy,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let name = &baseline.name;
    let base_metrics = baseline.data.metrics();
    let fresh_metrics = fresh.data.metrics();
    let mut fresh_by_key: HashMap<(&str, &str), &MetricValue> =
        fresh_metrics.iter().map(|m| ((m.row.as_str(), m.name.as_str()), &m.value)).collect();

    for m in &base_metrics {
        let Some(fresh_value) = fresh_by_key.remove(&(m.row.as_str(), m.name.as_str())) else {
            out.push(violation(
                ViolationKind::MissingMetric,
                name,
                &m.row,
                &m.name,
                "present in baseline, absent in fresh run".to_string(),
            ));
            continue;
        };
        match (&m.value, fresh_value) {
            (MetricValue::Num(b), MetricValue::Num(f)) => {
                let drift = f - b;
                let allowed = policy.allowed_drift(&m.name, *b);
                if drift.abs() > allowed || drift.is_nan() {
                    out.push(violation(
                        ViolationKind::Drift,
                        name,
                        &m.row,
                        &m.name,
                        format!(
                            "baseline {b} -> fresh {f} (drift {drift:+.6}, allowed ±{allowed})"
                        ),
                    ));
                }
            }
            (MetricValue::Text(b), MetricValue::Text(f)) => {
                if b != f {
                    out.push(violation(
                        ViolationKind::TextDrift,
                        name,
                        &m.row,
                        &m.name,
                        first_text_difference(b, f),
                    ));
                }
            }
            (b, f) => {
                out.push(violation(
                    ViolationKind::TypeMismatch,
                    name,
                    &m.row,
                    &m.name,
                    format!("baseline {b:?} vs fresh {f:?}"),
                ));
            }
        }
    }
    // Whatever the baseline did not claim is new surface the baselines
    // do not vouch for.
    for m in &fresh_metrics {
        if fresh_by_key.contains_key(&(m.row.as_str(), m.name.as_str())) {
            out.push(violation(
                ViolationKind::ExtraMetric,
                name,
                &m.row,
                &m.name,
                "absent in baseline, present in fresh run".to_string(),
            ));
        }
    }
    out
}

/// Points at the first line where two rendered texts diverge.
fn first_text_difference(baseline: &str, fresh: &str) -> String {
    for (i, (b, f)) in baseline.lines().zip(fresh.lines()).enumerate() {
        if b != f {
            return format!("first differing line {}: baseline {b:?} vs fresh {f:?}", i + 1);
        }
    }
    format!(
        "line count changed: baseline {} vs fresh {}",
        baseline.lines().count(),
        fresh.lines().count()
    )
}

/// Diffs a whole fresh run against the golden baselines.
#[must_use]
pub fn diff_runs(baseline: &RunReport, fresh: &RunReport, policy: &GatePolicy) -> Vec<Violation> {
    let mut out = Vec::new();
    let (bm, fm) = (&baseline.manifest, &fresh.manifest);
    if bm.schema_version != fm.schema_version {
        out.push(violation(
            ViolationKind::SchemaVersion,
            "manifest",
            "-",
            "-",
            format!("baseline schema {} vs fresh schema {}", bm.schema_version, fm.schema_version),
        ));
        // Cross-schema metric diffs would be noise on top of the real
        // problem; stop at the run level.
        return out;
    }
    if bm.scale != fm.scale {
        out.push(violation(
            ViolationKind::ScaleMismatch,
            "manifest",
            "-",
            "-",
            format!("baseline scale {:?} vs fresh scale {:?}", bm.scale, fm.scale),
        ));
        return out;
    }
    for base_exp in &baseline.experiments {
        match fresh.experiments.iter().find(|e| e.name == base_exp.name) {
            Some(fresh_exp) => out.extend(diff_experiment(base_exp, fresh_exp, policy)),
            None => out.push(violation(
                ViolationKind::MissingExperiment,
                &base_exp.name,
                "-",
                "-",
                "experiment present in baseline, absent in fresh run".to_string(),
            )),
        }
    }
    for fresh_exp in &fresh.experiments {
        if !baseline.experiments.iter().any(|e| e.name == fresh_exp.name) {
            out.push(violation(
                ViolationKind::ExtraExperiment,
                &fresh_exp.name,
                "-",
                "-",
                "experiment absent in baseline, present in fresh run".to_string(),
            ));
        }
    }
    out
}

/// Renders violations as the human-readable table the gate prints
/// before exiting non-zero.
#[must_use]
pub fn render_violations(violations: &[Violation]) -> String {
    let mut out = format!("FIDELITY GATE: {} violation(s)\n", violations.len());
    let width = |f: fn(&Violation) -> usize| violations.iter().map(f).max().unwrap_or(0);
    let (we, wr, wm) = (
        width(|v| v.experiment.len()).max("experiment".len()),
        width(|v| v.row.len()).max("row".len()),
        width(|v| v.metric.len()).max("metric".len()),
    );
    let _ = writeln!(
        out,
        "{:<we$}  {:<wr$}  {:<wm$}  {:<18}  detail",
        "experiment", "row", "metric", "kind"
    );
    for v in violations {
        let _ = writeln!(
            out,
            "{:<we$}  {:<wr$}  {:<wm$}  {:<18}  {}",
            v.experiment,
            v.row,
            v.metric,
            v.kind.label(),
            v.detail
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig01_headroom::Fig01Row;
    use crate::experiments::fig13_budget::{Fig13Point, MINI_PACK_LANE};
    use crate::report::{ExperimentData, ExperimentReport, RunManifest, RunReport};
    use crate::Scale;
    use branchnet_workloads::spec::Benchmark;

    fn fig01(mpki: f64) -> ExperimentReport {
        ExperimentReport::new(
            "fig01",
            ExperimentData::Fig01(vec![Fig01Row {
                bench: Benchmark::Xz,
                mpki,
                top8: 1.0,
                top25: 1.5,
                top50: 2.0,
            }]),
        )
    }

    fn fig13(reduction: f64, models: usize) -> ExperimentReport {
        ExperimentReport::new(
            "fig13",
            ExperimentData::Fig13(vec![Fig13Point {
                bench: Benchmark::Xz,
                lane: MINI_PACK_LANE,
                budget_kb: 32,
                mpki_reduction_pct: reduction,
                models,
            }]),
        )
    }

    fn run_of(experiments: Vec<ExperimentReport>) -> RunReport {
        let mut manifest = RunManifest::new(&Scale::quick(), 2);
        manifest.artifacts = experiments.iter().map(ExperimentReport::file_name).collect();
        RunReport { manifest, experiments }
    }

    #[test]
    fn classification_by_suffix() {
        assert_eq!(GatePolicy::classify("mpki"), ToleranceClass::Mpki);
        assert_eq!(GatePolicy::classify("mtage_sc_mpki"), ToleranceClass::Mpki);
        assert_eq!(GatePolicy::classify("mpki_reduction_pct"), ToleranceClass::ReductionPct);
        assert_eq!(GatePolicy::classify("cnn_set3_accuracy"), ToleranceClass::Accuracy);
        assert_eq!(GatePolicy::classify("base_ipc"), ToleranceClass::Ipc);
        assert_eq!(GatePolicy::classify("models"), ToleranceClass::Exact);
        assert_eq!(GatePolicy::classify("never_seen_before"), ToleranceClass::Exact);
    }

    #[test]
    fn mpki_drift_at_epsilon_passes_and_just_over_fails() {
        let policy = GatePolicy::default();
        let base = fig01(3.0);
        // Exactly at the epsilon: allowed (tolerances are inclusive).
        let at = fig01(3.0 + policy.mpki_abs);
        assert!(diff_experiment(&base, &at, &policy).is_empty());
        // Just beyond: flagged, naming experiment, row, and metric.
        let over = fig01(3.0 + policy.mpki_abs + 1e-6);
        let violations = diff_experiment(&base, &over, &policy);
        assert_eq!(violations.len(), 1);
        let v = &violations[0];
        assert_eq!(
            (v.kind, v.experiment.as_str(), v.row.as_str(), v.metric.as_str()),
            (ViolationKind::Drift, "fig01", "xz", "mpki")
        );
    }

    #[test]
    fn reduction_drift_is_flagged_in_both_directions() {
        let policy = GatePolicy::default();
        let base = fig13(10.0, 3);
        // allowed = max(0.5, 5% of 10.0) = 0.5 points.
        assert!(diff_experiment(&base, &fig13(10.4, 3), &policy).is_empty());
        assert!(diff_experiment(&base, &fig13(9.6, 3), &policy).is_empty());
        let worse = diff_experiment(&base, &fig13(9.4, 3), &policy);
        assert_eq!(worse.len(), 1);
        assert!(worse[0].detail.contains("drift -0.6"), "{}", worse[0].detail);
        // An unexplained improvement is drift too.
        let better = diff_experiment(&base, &fig13(10.6, 3), &policy);
        assert_eq!(better.len(), 1);
        assert!(better[0].detail.contains("drift +0.6"), "{}", better[0].detail);
    }

    #[test]
    fn reduction_floor_protects_near_zero_baselines() {
        let policy = GatePolicy::default();
        // 5% of 0.1 is 0.005 points, but the 0.5-point floor governs.
        assert!(diff_experiment(&fig13(0.1, 3), &fig13(0.4, 3), &policy).is_empty());
        assert_eq!(diff_experiment(&fig13(0.1, 3), &fig13(0.7, 3), &policy).len(), 1);
    }

    #[test]
    fn counts_are_exact() {
        let policy = GatePolicy::default();
        let violations = diff_experiment(&fig13(10.0, 3), &fig13(10.0, 4), &policy);
        assert_eq!(violations.len(), 1);
        assert_eq!(
            (violations[0].kind, violations[0].metric.as_str()),
            (ViolationKind::Drift, "models")
        );
    }

    #[test]
    fn missing_and_extra_metrics_are_flagged() {
        let policy = GatePolicy::default();
        let two = ExperimentReport::new(
            "fig13",
            ExperimentData::Fig13(vec![
                Fig13Point {
                    bench: Benchmark::Xz,
                    lane: MINI_PACK_LANE,
                    budget_kb: 8,
                    mpki_reduction_pct: 1.0,
                    models: 1,
                },
                Fig13Point {
                    bench: Benchmark::Xz,
                    lane: MINI_PACK_LANE,
                    budget_kb: 32,
                    mpki_reduction_pct: 2.0,
                    models: 2,
                },
            ]),
        );
        let one = fig13(2.0, 2);
        // Baseline has the 8KB row; fresh lost it.
        let missing = diff_experiment(&two, &one, &policy);
        assert_eq!(missing.len(), 2, "{missing:?}");
        assert!(missing.iter().all(|v| v.kind == ViolationKind::MissingMetric));
        assert!(missing.iter().all(|v| v.row == "xz@8KB"));
        // Fresh grew a row the baseline does not vouch for.
        let extra = diff_experiment(&one, &two, &policy);
        assert_eq!(extra.len(), 2, "{extra:?}");
        assert!(extra.iter().all(|v| v.kind == ViolationKind::ExtraMetric));
    }

    #[test]
    fn text_artifacts_compare_exactly() {
        let policy = GatePolicy::default();
        let a = ExperimentReport::new("table1", ExperimentData::Text("a\nb\n".into()));
        let b = ExperimentReport::new("table1", ExperimentData::Text("a\nc\n".into()));
        assert!(diff_experiment(&a, &a.clone(), &policy).is_empty());
        let violations = diff_experiment(&a, &b, &policy);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind, ViolationKind::TextDrift);
        assert!(violations[0].detail.contains("line 2"), "{}", violations[0].detail);
    }

    #[test]
    fn run_diff_flags_schema_scale_and_missing_experiments() {
        let policy = GatePolicy::default();
        let base = run_of(vec![fig01(1.0), fig13(10.0, 3)]);

        let mut newer = base.clone();
        newer.manifest.schema_version += 1;
        let violations = diff_runs(&base, &newer, &policy);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind, ViolationKind::SchemaVersion);

        let mut full = base.clone();
        full.manifest.scale = "full".to_string();
        assert_eq!(diff_runs(&base, &full, &policy)[0].kind, ViolationKind::ScaleMismatch);

        let fresh = run_of(vec![fig01(1.0)]);
        let violations = diff_runs(&base, &fresh, &policy);
        assert_eq!(violations.len(), 1);
        assert_eq!(
            (violations[0].kind, violations[0].experiment.as_str()),
            (ViolationKind::MissingExperiment, "fig13")
        );
        let violations = diff_runs(&fresh, &base, &policy);
        assert_eq!(
            (violations[0].kind, violations[0].experiment.as_str()),
            (ViolationKind::ExtraExperiment, "fig13")
        );
    }

    #[test]
    fn identical_runs_pass() {
        let policy = GatePolicy::default();
        let base = run_of(vec![fig01(1.234567), fig13(10.0, 3)]);
        assert!(diff_runs(&base, &base.clone(), &policy).is_empty());
    }

    #[test]
    fn render_names_the_offender() {
        let policy = GatePolicy::default();
        let violations = diff_experiment(&fig01(3.0), &fig01(4.0), &policy);
        let table = render_violations(&violations);
        assert!(table.contains("fig01") && table.contains("mpki") && table.contains("drift"));
    }
}
