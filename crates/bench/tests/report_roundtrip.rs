//! Round-trip guarantees of the report layer: every experiment
//! serializes to JSON and parses back equal, and a whole `--json` run
//! directory reads back as the `RunReport` that wrote it. Lossless
//! round-trips are what let the fidelity gate and the determinism CI
//! job treat the artifacts as the experiments themselves.

use branchnet_bench::experiments::fig01_headroom::Fig01Row;
use branchnet_bench::experiments::fig04_motivating::Fig04Point;
use branchnet_bench::experiments::fig09_headroom_mpki::Fig09Row;
use branchnet_bench::experiments::fig10_branch_accuracy::{Fig10Result, Fig10Row};
use branchnet_bench::experiments::fig11_practical::{Fig11Row, Setting};
use branchnet_bench::experiments::fig12_trainset::{Fig12Point, Fig12Sweep};
use branchnet_bench::experiments::fig13_budget::{Fig13Point, MINI_PACK_LANE};
use branchnet_bench::experiments::mini_pack::MiniPackReport;
use branchnet_bench::experiments::tables::{Table4Report, Table4Row};
use branchnet_bench::json::{FromJson, Json, ToJson};
use branchnet_bench::report::{
    ExperimentData, ExperimentReport, GauntletUsage, RunManifest, RunReport, SectionTime,
    SCHEMA_VERSION,
};
use branchnet_bench::Scale;
use branchnet_workloads::spec::Benchmark;

/// Synthetic data for every `ExperimentData` variant, with awkward
/// values on purpose: full-precision floats, PCs above 2^53 (exact in
/// hex, corrupted by a naive f64 number), and multi-line text.
fn all_variants() -> Vec<ExperimentData> {
    vec![
        ExperimentData::Text("Table I — knobs\nrow two\n".to_string()),
        ExperimentData::Fig01(vec![
            Fig01Row {
                bench: Benchmark::Leela,
                mpki: 5.123456789012345,
                top8: 2.5,
                top25: 3.25,
                top50: 4.0,
            },
            Fig01Row { bench: Benchmark::Xz, mpki: 0.1, top8: 0.05, top25: 0.075, top50: 0.0875 },
        ]),
        ExperimentData::Fig04(vec![Fig04Point {
            alpha: 0.75,
            tage: 0.87654321,
            cnn: [0.91, 0.92, 0.9999999999999999],
        }]),
        ExperimentData::Fig09(vec![Fig09Row {
            bench: Benchmark::Mcf,
            tage_sc_l_64kb: 10.5,
            mtage_sc: 9.25,
            mtage_plus_big: 7.125,
            gtage_only: 11.0,
            no_sc_local: 9.75,
            improved_branches: 17,
        }]),
        ExperimentData::Fig10(vec![Fig10Result {
            bench: Benchmark::Leela,
            rows: vec![Fig10Row {
                pc: (1u64 << 53) + 1,
                mtage_accuracy: 0.875,
                branchnet_accuracy: 0.9375,
                occurrences: 12345.0,
            }],
        }]),
        ExperimentData::Fig11(vec![Fig11Row {
            bench: Benchmark::Deepsjeng,
            base: Setting { mpki: 4.5, ipc: 1.25 },
            iso_storage: Setting { mpki: 4.25, ipc: 1.27 },
            iso_latency: Setting { mpki: 4.0, ipc: 1.3 },
            big: Setting { mpki: 3.5, ipc: 1.35 },
            tarsa_float: Setting { mpki: 4.125, ipc: 1.28 },
            tarsa_ternary: Setting { mpki: 4.375, ipc: 1.26 },
        }]),
        ExperimentData::Fig12(vec![Fig12Sweep {
            bench: Benchmark::Xz,
            points: vec![
                Fig12Point { examples: 200, mpki_reduction_pct: 3.5 },
                Fig12Point { examples: 1600, mpki_reduction_pct: 8.25 },
            ],
        }]),
        ExperimentData::Fig13(vec![
            Fig13Point {
                bench: Benchmark::Leela,
                lane: MINI_PACK_LANE,
                budget_kb: 32,
                mpki_reduction_pct: 12.345678901234567,
                models: 9,
            },
            Fig13Point {
                bench: Benchmark::Leela,
                lane: "o-gehl",
                budget_kb: 16,
                mpki_reduction_pct: -4.5,
                models: 0,
            },
        ]),
        ExperimentData::Table4(Table4Report {
            bench: Benchmark::Leela,
            rows: vec![
                Table4Row {
                    label: "Big-BranchNet: no branch capacity limit".to_string(),
                    mpki_reduction_pct: 35.8,
                },
                Table4Row {
                    label: "Mini-BranchNet: fully-quantized".to_string(),
                    mpki_reduction_pct: 15.7,
                },
            ],
        }),
        ExperimentData::MiniPack(vec![MiniPackReport {
            bench: Benchmark::Omnetpp,
            budget_bytes: 32 * 1024,
            total_bytes: 30_000,
            model_pcs: vec![0x4000_1234, u64::MAX, (1u64 << 60) | 3],
        }]),
    ]
}

#[test]
fn every_variant_round_trips_through_json_text() {
    for data in all_variants() {
        let report = ExperimentReport::new(data.kind(), data);
        let rendered = report.to_json().render();
        let parsed = ExperimentReport::from_json(&Json::parse(&rendered).expect("parse"))
            .expect("deserialize");
        assert_eq!(report, parsed, "round-trip changed {}", report.name);
        // Render → parse → render is a fixed point, the property the
        // byte-for-byte determinism and staleness checks lean on.
        assert_eq!(rendered, parsed.to_json().render());
    }
}

#[test]
fn every_variant_survives_metric_flattening() {
    for data in all_variants() {
        let metrics = data.metrics();
        assert!(!metrics.is_empty(), "{} flattened to nothing", data.kind());
    }
}

/// Manifests written before the per-section gauntlet counters existed
/// (the checked-in golden baselines) must still parse.
#[test]
fn section_time_without_gauntlet_field_still_parses() {
    let json = Json::parse(r#"{"name": "Fig. 9", "seconds": 12.5}"#).expect("parse");
    let section = SectionTime::from_json(&json).expect("deserialize");
    assert_eq!(section.name, "Fig. 9");
    assert_eq!(section.gauntlet, None);
}

#[test]
fn run_report_round_trips_through_a_directory() {
    let experiments: Vec<ExperimentReport> =
        all_variants().into_iter().map(|data| ExperimentReport::new(data.kind(), data)).collect();
    let mut manifest = RunManifest::new(&Scale::quick(), 3);
    manifest.artifacts = experiments.iter().map(ExperimentReport::file_name).collect();
    manifest.sections = vec![
        SectionTime {
            name: "Fig. 9".to_string(),
            seconds: 12.5,
            gauntlet: Some(GauntletUsage { passes: 6, lanes: 30, millis: 417 }),
        },
        SectionTime { name: "Table IV".to_string(), seconds: 3.25, gauntlet: None },
    ];
    let run = RunReport { manifest, experiments };

    let dir = std::env::temp_dir().join(format!("branchnet-roundtrip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    run.write(&dir).expect("write run");
    let read = RunReport::read(&dir).expect("read run");
    assert_eq!(run, read);
    assert_eq!(read.manifest.schema_version, SCHEMA_VERSION);

    // An unlisted artifact is corruption, not data.
    std::fs::write(dir.join("stray.json"), "{}").expect("write stray");
    let err = RunReport::read(&dir).expect_err("stray artifact must be rejected");
    assert!(err.contains("stray.json"), "{err}");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
