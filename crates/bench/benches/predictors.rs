//! Criterion benches: per-prediction throughput of every predictor in
//! the workspace, plus the BranchNet inference-engine datapath. These
//! quantify the software simulation cost (the paper's latency claims
//! are hardware-level and asserted analytically in `branchnet-core`).

use branchnet_core::config::BranchNetConfig;
use branchnet_core::dataset::extract;
use branchnet_core::engine::InferenceEngine;
use branchnet_core::quantize::QuantizedMini;
use branchnet_core::trainer::{train_model, TrainOptions};
use branchnet_tage::{Bimodal, Gshare, HashedPerceptron, Predictor, TageScL, TageSclConfig};
use branchnet_trace::{Gauntlet, Trace};
use branchnet_workloads::spec::{Benchmark, SpecSuite};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

fn workload_trace(n: usize) -> Trace {
    let bench = SpecSuite::benchmark(Benchmark::Leela);
    bench.generate(&bench.inputs().test[0], n)
}

fn run_trace(p: &mut dyn Predictor, trace: &Trace) -> u64 {
    let mut wrong = 0;
    for r in trace.iter().filter(|r| r.kind.is_conditional()) {
        let pred = p.predict(r.pc);
        if pred != r.taken {
            wrong += 1;
        }
        p.update(r, pred);
    }
    wrong
}

fn bench_predictor_throughput(c: &mut Criterion) {
    let trace = workload_trace(10_000);
    let mut group = c.benchmark_group("predict+update");
    group.throughput(Throughput::Elements(trace.len() as u64));

    group.bench_function("bimodal", |b| {
        b.iter_batched(
            || Bimodal::new(13, 2),
            |mut p| black_box(run_trace(&mut p, &trace)),
            BatchSize::LargeInput,
        );
    });
    group.bench_function("gshare-4kb", |b| {
        b.iter_batched(
            || Gshare::new(14, 12),
            |mut p| black_box(run_trace(&mut p, &trace)),
            BatchSize::LargeInput,
        );
    });
    group.bench_function("hashed-perceptron", |b| {
        b.iter_batched(
            HashedPerceptron::default_config,
            |mut p| black_box(run_trace(&mut p, &trace)),
            BatchSize::LargeInput,
        );
    });
    group.bench_function("tage-sc-l-64kb", |b| {
        b.iter_batched(
            || TageScL::new(&TageSclConfig::tage_sc_l_64kb()),
            |mut p| black_box(run_trace(&mut p, &trace)),
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

/// One decode pass with N gauntlet lanes versus N hand-rolled passes
/// (`run_trace`) over the same predictors: the criterion behind moving
/// every experiment onto the gauntlet. The win is the shared record
/// decode and the cache locality of touching each record once.
fn bench_single_pass_vs_n_pass(c: &mut Criterion) {
    let trace = workload_trace(10_000);
    let builders: Vec<Box<dyn Fn() -> Box<dyn Predictor>>> = vec![
        Box::new(|| Box::new(Bimodal::new(13, 2))),
        Box::new(|| Box::new(Gshare::new(14, 12))),
        Box::new(|| Box::new(HashedPerceptron::default_config())),
        Box::new(|| Box::new(TageScL::new(&TageSclConfig::tage_sc_l_64kb()))),
    ];

    let mut group = c.benchmark_group("multi-predictor");
    group.throughput(Throughput::Elements((trace.len() * builders.len()) as u64));
    group.bench_function("n-pass/4-predictors", |b| {
        b.iter(|| {
            let mut wrong = 0u64;
            for make in &builders {
                let mut p = make();
                wrong += run_trace(p.as_mut(), &trace);
            }
            black_box(wrong)
        });
    });
    group.bench_function("gauntlet/4-lanes", |b| {
        b.iter(|| {
            let mut gauntlet = Gauntlet::new();
            for make in &builders {
                gauntlet.add_boxed(make());
            }
            gauntlet.run(&trace);
            let wrong: f64 = gauntlet.finish().iter().map(|r| r.stats.mispredictions()).sum();
            black_box(wrong)
        });
    });
    group.finish();
}

fn trained_engine() -> InferenceEngine {
    let traces = SpecSuite::benchmark(Benchmark::Leela).trace_set(10_000);
    let cfg = BranchNetConfig::mini_1kb();
    let ds = extract(&traces.train, 0x1108, cfg.window_len(), cfg.pc_bits);
    let (model, _) = train_model(
        &cfg,
        &ds,
        &TrainOptions { epochs: 2, max_examples: 400, ..Default::default() },
    );
    InferenceEngine::new(QuantizedMini::from_model(&model)).expect("hashed config")
}

fn bench_engine_datapath(c: &mut Criterion) {
    let trace = workload_trace(5_000);
    let encoded: Vec<u32> =
        trace.iter().filter(|r| r.kind.is_conditional()).map(|r| r.encode(12)).collect();
    let mut engine = trained_engine();
    for &e in &encoded {
        engine.update(e);
    }

    let mut group = c.benchmark_group("inference-engine");
    group.throughput(Throughput::Elements(encoded.len() as u64));
    group.bench_function("update-stream", |b| {
        b.iter(|| {
            for &e in &encoded {
                engine.update(black_box(e));
            }
        });
    });
    group.finish();

    c.bench_function("inference-engine/predict", |b| {
        b.iter(|| black_box(engine.predict()));
    });
    c.bench_function("inference-engine/checkpoint", |b| {
        b.iter(|| black_box(engine.checkpoint()));
    });
}

criterion_group!(
    benches,
    bench_predictor_throughput,
    bench_single_pass_vs_n_pass,
    bench_engine_datapath
);
criterion_main!(benches);
