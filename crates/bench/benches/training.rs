//! Criterion benches for the offline-training machinery: dataset
//! extraction, one training step of Big-scaled and Mini models,
//! quantization/lowering, and the knapsack budget assignment.

use branchnet_core::config::BranchNetConfig;
use branchnet_core::dataset::extract;
use branchnet_core::model::BranchNetModel;
use branchnet_core::quantize::QuantizedMini;
use branchnet_core::selection::{assign_budget, BudgetItem};
use branchnet_core::trainer::{train_model, TrainOptions};
use branchnet_nn::loss::bce_with_logits;
use branchnet_nn::optim::{Adam, ParamVisitor};
use branchnet_workloads::spec::{Benchmark, SpecSuite};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_dataset_extraction(c: &mut Criterion) {
    let bench = SpecSuite::benchmark(Benchmark::Mcf);
    let trace = bench.generate(&bench.inputs().train[0], 30_000);
    let traces = vec![trace];
    let mut group = c.benchmark_group("dataset");
    group.throughput(Throughput::Elements(30_000));
    group.bench_function("extract-window-96", |b| {
        b.iter(|| black_box(extract(&traces, 0x2108, 96, 12)));
    });
    group.finish();
}

fn bench_training_step(c: &mut Criterion) {
    let bench = SpecSuite::benchmark(Benchmark::Xz);
    let traces = vec![bench.generate(&bench.inputs().train[0], 20_000)];
    for cfg in [BranchNetConfig::mini_1kb(), BranchNetConfig::big_scaled()] {
        let ds = extract(&traces, 0x4200, cfg.window_len(), cfg.pc_bits);
        let windows: Vec<&[u32]> =
            ds.examples.iter().take(64).map(|e| e.window.as_slice()).collect();
        let labels: Vec<f32> = ds.examples.iter().take(64).map(|e| e.label).collect();
        let mut model = BranchNetModel::new(&cfg, 1);
        let mut opt = Adam::new(0.01);
        let mut rng = SmallRng::seed_from_u64(0);
        c.bench_function(&format!("train-step-64/{}", cfg.name), |b| {
            b.iter(|| {
                let logits = model.forward(&windows, true, &mut rng);
                let (_, grad) = bce_with_logits(&logits, &labels);
                model.backward(&grad);
                opt.step(&mut model);
                model.zero_grad();
            });
        });
        c.bench_function(&format!("predict-1/{}", cfg.name), |b| {
            b.iter(|| black_box(model.predict_logit(windows[0])));
        });
    }
}

fn bench_quantization(c: &mut Criterion) {
    let bench = SpecSuite::benchmark(Benchmark::Xz);
    let traces = vec![bench.generate(&bench.inputs().train[0], 15_000)];
    let cfg = BranchNetConfig::mini_2kb();
    let ds = extract(&traces, 0x4200, cfg.window_len(), cfg.pc_bits);
    let (model, _) = train_model(
        &cfg,
        &ds,
        &TrainOptions { epochs: 2, max_examples: 500, ..Default::default() },
    );
    c.bench_function("quantize/lower-mini-2kb", |b| {
        b.iter(|| black_box(QuantizedMini::from_model(&model)));
    });
}

fn bench_budget_assignment(c: &mut Criterion) {
    // 40 branches x 4 menu choices, 32 KB budget — the iso-latency
    // assignment problem at paper scale.
    let items: Vec<BudgetItem> = (0..40)
        .map(|i| BudgetItem {
            pc: 0x1000 + i * 8,
            choices: vec![
                (2048, 100.0 - i as f64),
                (1024, 80.0 - i as f64),
                (512, 50.0 - i as f64),
                (256, 25.0 - i as f64),
            ],
        })
        .collect();
    c.bench_function("knapsack/40-branches-32kb", |b| {
        b.iter(|| black_box(assign_budget(&items, 32 * 1024)));
    });
}

criterion_group!(
    benches,
    bench_dataset_extraction,
    bench_training_step,
    bench_quantization,
    bench_budget_assignment
);
criterion_main!(benches);
