//! Criterion benches for the experiment substrate itself: workload
//! generation, baseline evaluation at figure scale, and the pipeline
//! timing model. (The figure binaries in `src/bin/` regenerate the
//! paper's tables/figures; these benches track how fast that machinery
//! runs.)

use branchnet_sim::{simulate, CpuConfig};
use branchnet_tage::{TageScL, TageSclConfig};
use branchnet_trace::{run_one as evaluate, run_one_per_branch as evaluate_per_branch};
use branchnet_workloads::spec::{Benchmark, SpecSuite};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_workload_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload-gen");
    group.throughput(Throughput::Elements(50_000));
    for bench in [Benchmark::Leela, Benchmark::Gcc, Benchmark::Exchange2] {
        let w = SpecSuite::benchmark(bench);
        let input = w.inputs().train[0].clone();
        group.bench_function(bench.name(), |b| {
            b.iter(|| black_box(w.generate(&input, 50_000)));
        });
    }
    group.finish();
}

fn bench_baseline_evaluation(c: &mut Criterion) {
    let w = SpecSuite::benchmark(Benchmark::Mcf);
    let trace = w.generate(&w.inputs().test[0], 20_000);
    let mut group = c.benchmark_group("evaluation");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("tage-sc-l/aggregate", |b| {
        b.iter(|| {
            let mut p = TageScL::new(&TageSclConfig::tage_sc_l_64kb());
            black_box(evaluate(&mut p, &trace))
        });
    });
    group.bench_function("tage-sc-l/per-branch", |b| {
        b.iter(|| {
            let mut p = TageScL::new(&TageSclConfig::tage_sc_l_64kb());
            black_box(evaluate_per_branch(&mut p, &trace))
        });
    });
    group.finish();
}

fn bench_pipeline_model(c: &mut Criterion) {
    let w = SpecSuite::benchmark(Benchmark::Xz);
    let trace = w.generate(&w.inputs().test[0], 20_000);
    let cpu = CpuConfig::skylake_like();
    let mut group = c.benchmark_group("pipeline-sim");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("tage-sc-l-64kb", |b| {
        b.iter(|| {
            let mut p = TageScL::new(&TageSclConfig::tage_sc_l_64kb());
            black_box(simulate(&trace, &mut p, &cpu))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_workload_generation,
    bench_baseline_evaluation,
    bench_pipeline_model
);
criterion_main!(benches);
