//! The hybrid predictor: TAGE-SC-L for everything, BranchNet for the
//! attached hard-to-predict branches (paper Section I: "a hybrid
//! approach, using CNNs to predict a few hard-to-predict static
//! branches and state-of-the-art runtime predictors for all other
//! branches").

use crate::engine::{InferenceEngine, NonHashedConfig};
use crate::model::BranchNetModel;
use crate::persist::ReadModelError;
use crate::quantize::{QuantMode, QuantizedMini};
use branchnet_tage::{Predictor, TageScL, TageSclConfig};
use branchnet_trace::BranchRecord;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Why a model could not be attached to the hybrid. Every rejection
/// leaves the branch on the TAGE-SC-L lane and is counted in
/// [`HybridStats::packs_rejected`] — the graceful-degradation contract
/// of DESIGN.md §9.
#[derive(Debug)]
pub enum AttachError {
    /// A quantized/engine model was built on a config without a
    /// convolution hash; its datapath cannot run.
    NonHashed(NonHashedConfig),
    /// The serialized model pack failed to decode or validate.
    BadPack(ReadModelError),
}

impl std::fmt::Display for AttachError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttachError::NonHashed(e) => write!(f, "cannot attach model: {e}"),
            AttachError::BadPack(e) => write!(f, "cannot attach model pack: {e}"),
        }
    }
}

impl std::error::Error for AttachError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AttachError::NonHashed(e) => Some(e),
            AttachError::BadPack(e) => Some(e),
        }
    }
}

/// A per-branch model attached to the hybrid predictor. Cloning
/// copies the frozen weights together with any runtime state (engine
/// histories); pair a clone with
/// [`HybridPredictor::reset_runtime_state`] to get a cold start.
#[derive(Debug, Clone)]
pub enum AttachedModel {
    /// Floating-point CNN (Big-BranchNet, Tarsa-Float, or Mini before
    /// quantization) evaluated on the live history window.
    Float(BranchNetModel),
    /// Conv-binarized model with a floating-point FC stage (the
    /// Table IV middle rung).
    ConvQuant(QuantizedMini),
    /// The fully-quantized streaming inference engine.
    Engine(InferenceEngine),
}

impl AttachedModel {
    fn window_len(&self) -> usize {
        match self {
            AttachedModel::Float(m) => m.config().window_len(),
            AttachedModel::ConvQuant(q) => q.config().window_len(),
            AttachedModel::Engine(e) => e.model().config().window_len(),
        }
    }

    fn pc_bits(&self) -> u32 {
        match self {
            AttachedModel::Float(m) => m.config().pc_bits,
            AttachedModel::ConvQuant(q) => q.config().pc_bits,
            AttachedModel::Engine(e) => e.model().config().pc_bits,
        }
    }
}

/// Prediction-source counters for diagnostics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HybridStats {
    /// Predictions served by an attached CNN.
    pub cnn_predictions: u64,
    /// Predictions served by the runtime baseline.
    pub baseline_predictions: u64,
    /// Model packs rejected at attach time; those branches stayed on
    /// the runtime baseline. Unlike the prediction counters this
    /// records a *configuration* outcome, so it survives
    /// [`Predictor::flush`] and fresh runtime clones.
    pub packs_rejected: u64,
}

/// TAGE-SC-L plus attached per-PC BranchNet models.
#[derive(Debug)]
pub struct HybridPredictor {
    baseline_cfg: TageSclConfig,
    base: TageScL,
    models: HashMap<u64, AttachedModel>,
    /// Raw (pc, direction) ring of recent conditional branches, long
    /// enough to assemble any attached model's window.
    raw: VecDeque<(u64, bool)>,
    max_window: usize,
    stats: HybridStats,
    name: &'static str,
}

impl HybridPredictor {
    /// Creates a hybrid around a fresh baseline.
    #[must_use]
    pub fn new(baseline_cfg: &TageSclConfig) -> Self {
        Self {
            baseline_cfg: baseline_cfg.clone(),
            base: TageScL::new(baseline_cfg),
            models: HashMap::new(),
            raw: VecDeque::new(),
            max_window: 0,
            stats: HybridStats::default(),
            name: "hybrid",
        }
    }

    /// Resets all *runtime* state — a fresh baseline predictor, empty
    /// histories, cleared engine pipelines — while keeping the
    /// offline-trained models attached. Used to evaluate multiple
    /// traces with per-trace cold starts (per-SimPoint methodology):
    /// BranchNet weights are frozen at runtime (Section V-E), so
    /// reusing them across traces is exactly the deployment model.
    pub fn reset_runtime_state(&mut self) {
        self.base = TageScL::new(&self.baseline_cfg);
        self.raw.clear();
        for model in self.models.values_mut() {
            if let AttachedModel::Engine(e) = model {
                e.reset();
            }
        }
    }

    /// Attaches a model for the static branch at `pc` (replacing any
    /// previous one). This is the OS "load BranchNet model" operation
    /// of Section V-F.
    ///
    /// # Errors
    ///
    /// Rejects (and counts in [`HybridStats::packs_rejected`]) a
    /// quantized/engine model built on a non-hashed config: those
    /// datapaths look up hashed convolution tables, so accepting such
    /// an attach would only defer the failure to the first prediction
    /// ([`InferenceEngine::new`] and [`QuantizedMini::from_model`]
    /// enforce the same invariant at construction time; this check
    /// keeps the predictor sound even for models built by other means,
    /// e.g. deserialization). On rejection the branch stays on the
    /// runtime-baseline lane.
    pub fn attach(&mut self, pc: u64, model: AttachedModel) -> Result<(), AttachError> {
        let hashed_cfg = match &model {
            AttachedModel::Float(_) => None,
            AttachedModel::ConvQuant(q) => Some(q.config()),
            AttachedModel::Engine(e) => Some(e.model().config()),
        };
        if let Some(cfg) = hashed_cfg {
            if !cfg.is_hashed() {
                return Err(self
                    .reject(AttachError::NonHashed(NonHashedConfig { config: cfg.name.clone() })));
            }
        }
        self.max_window = self.max_window.max(model.window_len());
        self.models.insert(pc, model);
        Ok(())
    }

    /// Decodes a serialized model pack and attaches it as a streaming
    /// engine at its recorded PC — the whole untrusted OS-load path in
    /// one call. Returns the pack's PC on success.
    ///
    /// # Errors
    ///
    /// Any decode/validation failure ([`ReadModelError`]) or a
    /// non-hashed config is counted in
    /// [`HybridStats::packs_rejected`] and leaves the predictor
    /// unchanged: the branch simply stays on the TAGE-SC-L lane.
    pub fn attach_pack_bytes(&mut self, bytes: &[u8]) -> Result<u64, AttachError> {
        let (pc, quant) = match crate::persist::read_model(&mut std::io::Cursor::new(bytes)) {
            Ok(decoded) => decoded,
            Err(e) => return Err(self.reject(AttachError::BadPack(e))),
        };
        let engine = match InferenceEngine::new(quant) {
            Ok(engine) => engine,
            Err(e) => return Err(self.reject(AttachError::NonHashed(e))),
        };
        self.attach(pc, AttachedModel::Engine(engine))?;
        Ok(pc)
    }

    /// Counts one rejected attach in the per-instance stats and the
    /// process-global degradation counters, passing the error through.
    fn reject(&mut self, err: AttachError) -> AttachError {
        self.stats.packs_rejected += 1;
        crate::degradation::record_pack_rejected();
        err
    }

    /// A cold copy for parallel evaluation: same attached (frozen)
    /// models, fresh baseline predictor, empty histories. Equivalent
    /// to `clone()` followed by
    /// [`reset_runtime_state`](Self::reset_runtime_state), so
    /// evaluating traces on clones gives bit-identical results to
    /// evaluating them serially on one predictor with per-trace
    /// resets.
    #[must_use]
    pub fn fresh_runtime_clone(&self) -> Self {
        let mut copy = Self {
            baseline_cfg: self.baseline_cfg.clone(),
            base: TageScL::new(&self.baseline_cfg),
            models: self.models.clone(),
            raw: VecDeque::new(),
            max_window: self.max_window,
            stats: HybridStats { packs_rejected: self.stats.packs_rejected, ..Default::default() },
            name: self.name,
        };
        for model in copy.models.values_mut() {
            if let AttachedModel::Engine(e) = model {
                e.reset();
            }
        }
        copy
    }

    /// Number of attached models.
    #[must_use]
    pub fn attached_count(&self) -> usize {
        self.models.len()
    }

    /// PCs with attached models.
    #[must_use]
    pub fn covered_pcs(&self) -> Vec<u64> {
        let mut pcs: Vec<u64> = self.models.keys().copied().collect();
        pcs.sort_unstable();
        pcs
    }

    /// Prediction-source counters.
    #[must_use]
    pub fn stats(&self) -> HybridStats {
        self.stats
    }

    /// Total modeled storage: baseline plus every attached engine.
    /// Float models report their impractical software footprint.
    #[must_use]
    pub fn storage_bits(&self) -> u64 {
        let mut bits = self.base.storage_bits();
        for m in self.models.values() {
            bits += match m {
                AttachedModel::Engine(e) => e.storage().total_bits(),
                AttachedModel::Float(m) => {
                    crate::storage::storage_breakdown(m.config()).total_bits()
                }
                AttachedModel::ConvQuant(q) => {
                    crate::storage::storage_breakdown(q.config()).total_bits()
                }
            };
        }
        bits
    }
}

/// Assembles the encoded window for an attached model from the raw
/// `(pc, direction)` ring. A free function (not a method) so
/// [`Predictor::predict`] can call it while holding a mutable borrow
/// of the model map.
fn assemble_window(raw: &VecDeque<(u64, bool)>, len: usize, bits: u32) -> Vec<u32> {
    let mut window = vec![0u32; len];
    let have = raw.len().min(len);
    for i in 0..have {
        let (pc, taken) = raw[raw.len() - have + i];
        let mask = (1u64 << bits) - 1;
        window[len - have + i] = (((pc & mask) as u32) << 1) | u32::from(taken);
    }
    window
}

impl Predictor for HybridPredictor {
    fn predict(&mut self, pc: u64) -> bool {
        // The baseline always performs its lookup (it trains on every
        // branch and its histories must advance), even when a CNN
        // overrides the direction.
        let base_pred = self.base.predict(pc);
        // Destructure so the single map lookup can borrow a model
        // mutably while the window is assembled from the raw ring.
        let Self { models, raw, stats, .. } = self;
        if let Some(model) = models.get_mut(&pc) {
            stats.cnn_predictions += 1;
            let window = if matches!(model, AttachedModel::Engine(_)) {
                Vec::new()
            } else {
                assemble_window(raw, model.window_len(), model.pc_bits())
            };
            match model {
                AttachedModel::Engine(e) => e.predict(),
                AttachedModel::ConvQuant(q) => q.predict(&window, QuantMode::ConvOnly),
                AttachedModel::Float(m) => m.predict(&window),
            }
        } else {
            stats.baseline_predictions += 1;
            base_pred
        }
    }

    fn update(&mut self, record: &BranchRecord, predicted: bool) {
        self.base.update(record, predicted);
        // Advance the shared raw history and every engine's
        // convolutional histories with the retiring branch.
        if self.max_window > 0 {
            if self.raw.len() == self.max_window {
                self.raw.pop_front();
            }
            self.raw.push_back((record.pc, record.taken));
        }
        for model in self.models.values_mut() {
            if let AttachedModel::Engine(e) = model {
                let bits = e.model().config().pc_bits;
                e.update(record.encode(bits));
            }
        }
    }

    fn note_unconditional(&mut self, record: &BranchRecord) {
        self.base.note_unconditional(record);
    }

    fn flush(&mut self) {
        // The attached (offline-trained, frozen) models survive, as
        // deployed BranchNet weights would; everything learned at
        // runtime goes. Rejection counts describe the attach-time
        // configuration, not the run, so they survive too.
        self.reset_runtime_state();
        self.stats =
            HybridStats { packs_rejected: self.stats.packs_rejected, ..Default::default() };
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn storage_bits(&self) -> u64 {
        HybridPredictor::storage_bits(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BranchNetConfig, SliceConfig};
    use crate::dataset::extract;
    use crate::trainer::{train_model, TrainOptions};
    use branchnet_trace::{run_one as evaluate, Trace};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn mini_config() -> BranchNetConfig {
        BranchNetConfig {
            name: "hy".into(),
            slices: vec![
                SliceConfig { history: 16, channels: 3, pool_width: 4, precise_pooling: true },
                SliceConfig { history: 48, channels: 3, pool_width: 8, precise_pooling: false },
            ],
            pc_bits: 8,
            conv_hash_bits: Some(7),
            embedding_dim: 0,
            conv_width: 3,
            hidden: vec![6],
            fc_quant_bits: Some(4),
            tanh_activations: true,
        }
    }

    /// Fig. 3-style trace: branch 0x90 is the exit of a loop whose
    /// trip count equals the not-taken count of branch 0x10, with
    /// noise in between.
    fn counting_trace(seed: u64, n: usize) -> Trace {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut t = Trace::new();
        while t.len() < n {
            let mut x = 0;
            for _ in 0..rng.gen_range(2..6) {
                let a = rng.gen_bool(0.5);
                t.push(BranchRecord::conditional(0x10, a));
                if !a {
                    x += 1;
                }
                for j in 0..4 {
                    t.push(BranchRecord::conditional(0x30 + j * 8, rng.gen_bool(0.5)));
                }
            }
            for j in 0..=x {
                t.push(BranchRecord::conditional(0x90, j < x));
            }
        }
        t
    }

    #[test]
    fn hybrid_beats_baseline_on_count_correlated_branch() {
        let train_trace = counting_trace(1, 30_000);
        let test_trace = counting_trace(99, 30_000);
        let cfg = mini_config();
        let ds = extract(&[train_trace], 0x90, cfg.window_len(), cfg.pc_bits);
        let (model, report) =
            train_model(&cfg, &ds, &TrainOptions { epochs: 24, lr: 0.02, ..Default::default() });
        // Quantization-aware training costs some headline accuracy;
        // the decisive check is the MPKI comparison below.
        assert!(report.train_accuracy > 0.78, "train accuracy {}", report.train_accuracy);

        let baseline_cfg = TageSclConfig::tage_sc_l_64kb();
        let mut baseline = TageScL::new(&baseline_cfg);
        let base_stats = evaluate(&mut baseline, &test_trace);

        let mut hybrid = HybridPredictor::new(&baseline_cfg);
        hybrid.attach(0x90, AttachedModel::Float(model)).unwrap();
        let hybrid_stats = evaluate(&mut hybrid, &test_trace);

        assert!(
            hybrid_stats.mpki() < base_stats.mpki(),
            "hybrid {:.3} MPKI must beat baseline {:.3} MPKI",
            hybrid_stats.mpki(),
            base_stats.mpki()
        );
    }

    #[test]
    fn hybrid_without_models_equals_baseline() {
        let trace = counting_trace(7, 5_000);
        let cfg = TageSclConfig::tage_sc_l_64kb();
        let a = evaluate(&mut TageScL::new(&cfg), &trace);
        let b = evaluate(&mut HybridPredictor::new(&cfg), &trace);
        assert_eq!(a.mispredictions(), b.mispredictions());
    }

    #[test]
    fn stats_attribute_predictions_to_sources() {
        let trace = counting_trace(3, 2_000);
        let cfg = mini_config();
        let ds = extract(&[counting_trace(1, 5_000)], 0x90, cfg.window_len(), cfg.pc_bits);
        let (model, _) = train_model(&cfg, &ds, &TrainOptions { epochs: 1, ..Default::default() });
        let mut hybrid = HybridPredictor::new(&TageSclConfig::tage_sc_l_64kb());
        hybrid.attach(0x90, AttachedModel::Float(model)).unwrap();
        let _ = evaluate(&mut hybrid, &trace);
        let s = hybrid.stats();
        let covered = trace.iter().filter(|r| r.pc == 0x90).count() as u64;
        assert_eq!(s.cnn_predictions, covered);
        assert_eq!(s.baseline_predictions, trace.len() as u64 - covered);
    }

    #[test]
    fn engine_attachment_predicts_like_streamed_quantized_model() {
        let cfg = mini_config();
        let ds = extract(&[counting_trace(1, 10_000)], 0x90, cfg.window_len(), cfg.pc_bits);
        let (model, _) = train_model(&cfg, &ds, &TrainOptions { epochs: 3, ..Default::default() });
        let quant = QuantizedMini::from_model(&model);
        let mut hybrid = HybridPredictor::new(&TageSclConfig::tage_sc_l_64kb());
        hybrid.attach(0x90, AttachedModel::Engine(InferenceEngine::new(quant).unwrap())).unwrap();
        let trace = counting_trace(5, 5_000);
        let stats = evaluate(&mut hybrid, &trace);
        assert!(stats.predictions() > 0.0);
        assert!(hybrid.stats().cnn_predictions > 0);
    }

    #[test]
    fn fresh_runtime_clone_matches_serial_reset_evaluation() {
        // Per-trace cold-start evaluation on clones must be
        // bit-identical to the serial reset-then-evaluate loop — this
        // is what lets the bench harness fan traces out across
        // threads without changing any reported number.
        let cfg = mini_config();
        let ds = extract(&[counting_trace(1, 8_000)], 0x90, cfg.window_len(), cfg.pc_bits);
        let (model, _) = train_model(&cfg, &ds, &TrainOptions { epochs: 2, ..Default::default() });
        let quant = QuantizedMini::from_model(&model);
        let mut hybrid = HybridPredictor::new(&TageSclConfig::tage_sc_l_64kb());
        hybrid.attach(0x90, AttachedModel::Engine(InferenceEngine::new(quant).unwrap())).unwrap();
        hybrid.attach(0x10, AttachedModel::Float(model)).unwrap();

        let traces = [counting_trace(11, 3_000), counting_trace(12, 3_000)];
        let serial: Vec<f64> = traces
            .iter()
            .map(|t| {
                hybrid.reset_runtime_state();
                evaluate(&mut hybrid, t).mispredictions()
            })
            .collect();
        for (t, &expected) in traces.iter().zip(&serial) {
            let mut clone = hybrid.fresh_runtime_clone();
            assert_eq!(evaluate(&mut clone, t).mispredictions(), expected);
        }
        // `flush` is the trait-level spelling of the same cold start.
        for (t, &expected) in traces.iter().zip(&serial) {
            hybrid.flush();
            assert_eq!(evaluate(&mut hybrid, t).mispredictions(), expected);
        }
    }

    #[test]
    fn attach_replaces_previous_model() {
        let cfg = mini_config();
        let ds = extract(&[counting_trace(1, 4_000)], 0x90, cfg.window_len(), cfg.pc_bits);
        let (m1, _) = train_model(&cfg, &ds, &TrainOptions { epochs: 1, ..Default::default() });
        let (m2, _) =
            train_model(&cfg, &ds, &TrainOptions { epochs: 1, seed: 5, ..Default::default() });
        let mut hybrid = HybridPredictor::new(&TageSclConfig::tage_sc_l_64kb());
        hybrid.attach(0x90, AttachedModel::Float(m1)).unwrap();
        hybrid.attach(0x90, AttachedModel::Float(m2)).unwrap();
        assert_eq!(hybrid.attached_count(), 1);
    }

    #[test]
    fn rejected_pack_is_counted_and_leaves_predictor_unchanged() {
        let mut hybrid = HybridPredictor::new(&TageSclConfig::tage_sc_l_64kb());
        let err = hybrid.attach_pack_bytes(b"definitely not a model pack").unwrap_err();
        assert!(matches!(err, AttachError::BadPack(_)));
        assert!(std::error::Error::source(&err).is_some());
        assert_eq!(hybrid.attached_count(), 0);
        assert_eq!(hybrid.stats().packs_rejected, 1);

        // The rejection count describes the attach-time configuration,
        // so it survives both spellings of a runtime cold start.
        hybrid.flush();
        assert_eq!(hybrid.stats().packs_rejected, 1);
        assert_eq!(hybrid.fresh_runtime_clone().stats().packs_rejected, 1);

        // And the degraded hybrid still behaves exactly like the pure
        // baseline: no model was attached.
        let trace = counting_trace(21, 3_000);
        let cfg = TageSclConfig::tage_sc_l_64kb();
        let base = evaluate(&mut TageScL::new(&cfg), &trace);
        let deg = evaluate(&mut hybrid, &trace);
        assert_eq!(base.mispredictions(), deg.mispredictions());
    }

    #[test]
    fn storage_includes_attached_engines() {
        let cfg = mini_config();
        let ds = extract(&[counting_trace(1, 4_000)], 0x90, cfg.window_len(), cfg.pc_bits);
        let (model, _) = train_model(&cfg, &ds, &TrainOptions { epochs: 1, ..Default::default() });
        let quant = QuantizedMini::from_model(&model);
        let baseline_cfg = TageSclConfig::tage_sc_l_64kb();
        let base_bits = TageScL::new(&baseline_cfg).storage_bits();
        let mut hybrid = HybridPredictor::new(&baseline_cfg);
        hybrid.attach(0x90, AttachedModel::Engine(InferenceEngine::new(quant).unwrap())).unwrap();
        assert!(hybrid.storage_bits() > base_bits);
    }
}
