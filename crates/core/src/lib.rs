//! BranchNet: offline-trained convolutional neural networks for
//! hard-to-predict branches (Zangeneh et al., MICRO 2020).
//!
//! This crate is the paper's primary contribution, built on the
//! workspace substrates:
//!
//! * [`config`] — the Table I architecture knobs and presets
//!   (Big-BranchNet, four Mini-BranchNet sizes, Tarsa baselines).
//! * [`model`] / [`trainer`] / [`dataset`] — the trainable CNN, its
//!   per-branch datasets, and minibatch training.
//! * [`quantize`] — lowering trained Mini models to binarized
//!   convolutions, fixed-point FC thresholds, and the final LUT
//!   (Table IV's quantization ladder).
//! * [`engine`] — the streaming on-chip inference engine with
//!   convolutional histories, precise & sliding sum-pooling, and
//!   flush recovery (Fig. 6/7, Table II via [`storage`]).
//! * [`selection`] — the offline pipeline: rank hard branches on
//!   validation traces, train per-branch models, keep the improved
//!   ones, and solve the storage-budget assignment (Section V-E).
//! * [`hybrid`] — TAGE-SC-L plus attached per-PC models, the predictor
//!   the paper actually evaluates.
//! * [`degradation`] — process-global counters for the graceful-
//!   degradation paths (rejected packs, retried trainings); see
//!   DESIGN.md §9 for the failure model they observe.
//!
//! # Example: train and attach a model for one hard branch
//!
//! ```no_run
//! use branchnet_core::config::BranchNetConfig;
//! use branchnet_core::dataset::extract;
//! use branchnet_core::hybrid::{AttachedModel, HybridPredictor};
//! use branchnet_core::trainer::{train_model, TrainOptions};
//! use branchnet_tage::TageSclConfig;
//! use branchnet_trace::Trace;
//!
//! # fn get_traces() -> (Vec<Trace>, Trace) { unimplemented!() }
//! let (train_traces, test_trace) = get_traces();
//! let cfg = BranchNetConfig::mini_1kb();
//! let hard_pc = 0x90;
//! let ds = extract(&train_traces, hard_pc, cfg.window_len(), cfg.pc_bits);
//! let (model, _report) = train_model(&cfg, &ds, &TrainOptions::default());
//! let mut hybrid = HybridPredictor::new(&TageSclConfig::tage_sc_l_64kb());
//! hybrid.attach(hard_pc, AttachedModel::Float(model)).expect("float models always attach");
//! ```

pub mod config;
pub mod dataset;
pub mod degradation;
pub mod engine;
pub mod hashing;
pub mod hybrid;
pub mod model;
pub mod persist;
pub mod quantize;
pub mod selection;
pub mod storage;
pub mod trainer;

pub use config::{BranchNetConfig, SliceConfig};
pub use dataset::{extract, BranchDataset, Example};
pub use degradation::DegradationSnapshot;
pub use engine::{EngineCheckpoint, InferenceEngine, NonHashedConfig};
pub use hybrid::{AttachError, AttachedModel, HybridPredictor, HybridStats};
pub use model::BranchNetModel;
pub use persist::{load_model, read_model, save_model, write_model, ReadModelError};
pub use quantize::{QuantMode, QuantizedMini};
pub use selection::{
    assign_budget, offline_train, rank_hard_branches, train_candidates, BudgetItem,
    CandidateResult, PipelineOptions,
};
pub use storage::{storage_breakdown, StorageBreakdown};
pub use trainer::{
    evaluate_accuracy, train_model, train_model_resilient, TrainOptions, TrainReport,
};
