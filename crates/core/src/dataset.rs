//! Per-branch training-example extraction.
//!
//! For every dynamic occurrence of a target static branch, the dataset
//! captures the `max_history` most recent encoded branches (oldest →
//! newest, zero-padded on the old side) and the resolved direction as
//! the label — the exact input/output pair BranchNet trains on
//! (Section III-B).

use branchnet_trace::Trace;
use serde::{Deserialize, Serialize};

/// One training example: an encoded history window and the branch
/// outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Example {
    /// Encoded `(PC, direction)` history, oldest first, zero-padded at
    /// the front; length = the dataset's `max_history`.
    pub window: Vec<u32>,
    /// 1.0 = taken, 0.0 = not taken.
    pub label: f32,
}

/// All examples extracted for one static branch.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BranchDataset {
    /// The static branch these examples belong to.
    pub pc: u64,
    /// History length of each example window.
    pub max_history: usize,
    /// The examples, in trace order.
    pub examples: Vec<Example>,
}

impl BranchDataset {
    /// Fraction of taken labels (for bias diagnostics).
    #[must_use]
    pub fn taken_rate(&self) -> f64 {
        if self.examples.is_empty() {
            return 0.0;
        }
        self.examples.iter().map(|e| f64::from(e.label)).sum::<f64>() / self.examples.len() as f64
    }

    /// Number of examples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether no examples were extracted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Uniformly subsamples down to at most `cap` examples (keeps every
    /// k-th example to preserve phase coverage rather than a prefix).
    pub fn subsample(&mut self, cap: usize) {
        if self.examples.len() > cap && cap > 0 {
            let stride = self.examples.len() as f64 / cap as f64;
            let picked: Vec<Example> =
                (0..cap).map(|i| self.examples[(i as f64 * stride) as usize].clone()).collect();
            self.examples = picked;
        }
    }
}

/// Extracts the dataset for `pc` from `traces`, with windows of
/// `max_history` encoded entries of `pc_bits`-bit PCs.
///
/// Only conditional branches enter the history (matching the predictor
/// configuration used throughout this workspace).
#[must_use]
pub fn extract(traces: &[Trace], pc: u64, max_history: usize, pc_bits: u32) -> BranchDataset {
    let mut ds = BranchDataset { pc, max_history, examples: Vec::new() };
    for trace in traces {
        // Rolling encoded history for this trace.
        let mut hist: Vec<u32> = Vec::with_capacity(trace.len());
        for r in trace.iter().filter(|r| r.kind.is_conditional()) {
            if r.pc == pc {
                let mut window = vec![0u32; max_history];
                let have = hist.len().min(max_history);
                window[max_history - have..].copy_from_slice(&hist[hist.len() - have..]);
                ds.examples.push(Example { window, label: f32::from(u8::from(r.taken)) });
            }
            hist.push(r.encode(pc_bits));
        }
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchnet_trace::BranchRecord;

    fn trace_with_target() -> Trace {
        // Pattern: two setup branches then the target, repeated.
        let mut t = Trace::new();
        for i in 0..10u64 {
            t.push(BranchRecord::conditional(0x10, i % 2 == 0));
            t.push(BranchRecord::conditional(0x20, true));
            t.push(BranchRecord::conditional(0x99, i % 2 == 0));
        }
        t
    }

    #[test]
    fn windows_exclude_the_predicted_branch_itself() {
        let ds = extract(&[trace_with_target()], 0x99, 4, 8);
        assert_eq!(ds.len(), 10);
        // First example: only two entries of context, zero-padded.
        let w = &ds.examples[0].window;
        assert_eq!(w.len(), 4);
        assert_eq!(w[0], 0);
        assert_eq!(w[1], 0);
        assert_eq!(w[2], BranchRecord::conditional(0x10, true).encode(8));
        assert_eq!(w[3], BranchRecord::conditional(0x20, true).encode(8));
    }

    #[test]
    fn labels_match_directions() {
        let ds = extract(&[trace_with_target()], 0x99, 4, 8);
        for (i, e) in ds.examples.iter().enumerate() {
            assert_eq!(e.label, if i % 2 == 0 { 1.0 } else { 0.0 });
        }
    }

    #[test]
    fn window_is_oldest_to_newest() {
        let ds = extract(&[trace_with_target()], 0x99, 6, 8);
        // Later examples have full 6-entry context; the newest entry
        // must be branch 0x20 (emitted immediately before the target).
        let w = &ds.examples[5].window;
        assert_eq!(w[5], BranchRecord::conditional(0x20, true).encode(8));
    }

    #[test]
    fn multiple_traces_concatenate_without_history_leak() {
        let t = trace_with_target();
        let ds = extract(&[t.clone(), t], 0x99, 4, 8);
        assert_eq!(ds.len(), 20);
        // The 11th example (first of the second trace) must again be
        // zero-padded: history does not leak across traces.
        assert_eq!(ds.examples[10].window[0], 0);
        assert_eq!(ds.examples[10].window[1], 0);
    }

    #[test]
    fn taken_rate_counts_labels() {
        let ds = extract(&[trace_with_target()], 0x99, 4, 8);
        assert!((ds.taken_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn subsample_preserves_spread() {
        let mut ds = extract(&[trace_with_target()], 0x99, 4, 8);
        ds.subsample(4);
        assert_eq!(ds.len(), 4);
        // Labels alternate in the original; a strided sample keeps a
        // mix rather than one phase... (indices 0, 2, 5, 7).
        let labels: Vec<f32> = ds.examples.iter().map(|e| e.label).collect();
        assert!(labels.contains(&0.0) && labels.contains(&1.0));
    }

    #[test]
    fn missing_branch_yields_empty_dataset() {
        let ds = extract(&[trace_with_target()], 0xDEAD, 4, 8);
        assert!(ds.is_empty());
    }
}
