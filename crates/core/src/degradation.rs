//! Process-global graceful-degradation counters.
//!
//! The failure model (DESIGN.md §9) allows exactly two responses to a
//! bad artifact or a diverged training run: reject it and fall back to
//! the runtime baseline, or retry it deterministically. Both are
//! silent by design on the prediction path — a rejected pack simply
//! leaves its PC on the TAGE-SC-L lane — so these counters are the
//! observability layer: every rejection and retry increments a
//! process-wide atomic, and the bench harness surfaces the totals in
//! the `reproduce` summary and the `--json` run manifest.
//!
//! On a healthy (no-fault) run every counter stays zero, which the
//! fidelity CI implicitly checks via the golden summary text.

use std::sync::atomic::{AtomicU64, Ordering};

static PACKS_REJECTED: AtomicU64 = AtomicU64::new(0);
static TRAININGS_RETRIED: AtomicU64 = AtomicU64::new(0);

/// A point-in-time copy of the degradation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradationSnapshot {
    /// Model packs rejected at load/attach time (the PC stayed on the
    /// runtime-baseline lane).
    pub packs_rejected: u64,
    /// Training attempts re-run with a reseeded init after divergence.
    pub trainings_retried: u64,
}

impl DegradationSnapshot {
    /// One-line summary for the `reproduce` report.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} packs rejected, {} trainings retried",
            self.packs_rejected, self.trainings_retried
        )
    }
}

/// Records one rejected model pack (bad bytes or invalid config; the
/// branch stays on the runtime baseline).
pub fn record_pack_rejected() {
    PACKS_REJECTED.fetch_add(1, Ordering::Relaxed);
}

/// Records one training retry after a divergence/NaN guard trip.
pub fn record_training_retry() {
    TRAININGS_RETRIED.fetch_add(1, Ordering::Relaxed);
}

/// The current counter values.
#[must_use]
pub fn snapshot() -> DegradationSnapshot {
    DegradationSnapshot {
        packs_rejected: PACKS_REJECTED.load(Ordering::Relaxed),
        trainings_retried: TRAININGS_RETRIED.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic() {
        // Other tests in the process may also increment; assert only
        // the delta this test causes.
        let before = snapshot();
        record_pack_rejected();
        record_training_retry();
        record_training_retry();
        let after = snapshot();
        assert!(after.packs_rejected > before.packs_rejected);
        assert!(after.trainings_retried >= before.trainings_retried + 2);
    }

    #[test]
    fn summary_names_both_counters() {
        let s = DegradationSnapshot { packs_rejected: 3, trainings_retried: 1 }.summary();
        assert!(s.contains("3 packs rejected"));
        assert!(s.contains("1 trainings retried"));
    }
}
