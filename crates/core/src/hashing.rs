//! The hashed-convolution input function (paper Section V-B,
//! Optimization 2).
//!
//! Mini-BranchNet replaces arithmetic convolution over embeddings with
//! a lookup table indexed by a hash of the `K` most recent encoded
//! branches. Training and the on-chip engine must agree bit-for-bit on
//! this function, so it lives here and is used by both.

/// Hashes the `k` encoded history entries ending at `end` (inclusive)
/// into `h_bits` bits. Entries before the start of `entries` are
/// treated as zero (the same zero-padding the dataset extraction
/// applies to short histories).
///
/// # Panics
///
/// Panics if `end >= entries.len()`, `k == 0`, or `h_bits` is not in
/// `1..=31`.
///
/// ```
/// use branchnet_core::hashing::conv_hash;
/// let entries = [3u32, 9, 12, 5];
/// let a = conv_hash(&entries, 3, 3, 8);
/// let b = conv_hash(&entries, 3, 3, 8);
/// assert_eq!(a, b);
/// assert!(a < 256);
/// ```
#[must_use]
pub fn conv_hash(entries: &[u32], end: usize, k: usize, h_bits: u32) -> u32 {
    assert!(end < entries.len(), "window end out of range");
    assert!(k > 0, "window width must be positive");
    assert!((1..=31).contains(&h_bits));
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for j in 0..k {
        let age = k - 1 - j;
        let v = if age > end { 0 } else { entries[end - age] };
        h ^= u64::from(v).wrapping_add(0x9E37_79B9_7F4A_7C15);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
        h ^= h >> 33;
    }
    (h >> 7) as u32 & ((1u32 << h_bits) - 1)
}

/// Hashes every position of a history window: output `t` is the hash
/// of the `k` entries ending at position `t`. The result has
/// `entries.len()` ids and feeds the Mini-BranchNet convolution table.
#[must_use]
pub fn conv_hash_sequence(entries: &[u32], k: usize, h_bits: u32) -> Vec<u32> {
    (0..entries.len()).map(|t| conv_hash(entries, t, k, h_bits)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn different_windows_hash_differently() {
        let a = conv_hash(&[1, 2, 3], 2, 3, 12);
        let b = conv_hash(&[1, 2, 4], 2, 3, 12);
        let c = conv_hash(&[4, 2, 3], 2, 3, 12);
        assert_ne!(a, b, "newest entry must matter");
        assert_ne!(a, c, "oldest entry must matter");
    }

    #[test]
    fn direction_bit_changes_hash() {
        // Encoded entries differ only in the direction (low) bit.
        let taken = conv_hash(&[0b1101], 0, 1, 8);
        let not_taken = conv_hash(&[0b1100], 0, 1, 8);
        assert_ne!(taken, not_taken);
    }

    #[test]
    fn out_of_range_ages_read_zero() {
        // Hash at position 0 with k=3 pads two zeros; equivalent to an
        // explicit zero-padded buffer.
        let short = conv_hash(&[7], 0, 3, 10);
        let padded = conv_hash(&[0, 0, 7], 2, 3, 10);
        assert_eq!(short, padded);
    }

    #[test]
    fn sequence_matches_pointwise_hash() {
        let entries = [5u32, 1, 9, 9, 2, 0, 4];
        let seq = conv_hash_sequence(&entries, 3, 9);
        assert_eq!(seq.len(), entries.len());
        for (t, &id) in seq.iter().enumerate() {
            assert_eq!(id, conv_hash(&entries, t, 3, 9));
        }
    }

    #[test]
    fn hash_respects_bit_width() {
        for h_bits in [2u32, 7, 8, 12] {
            for end in 0..8usize {
                let entries: Vec<u32> = (0..8).map(|i| i * 37 + 5).collect();
                let id = conv_hash(&entries, end, 7, h_bits);
                assert!(id < (1 << h_bits));
            }
        }
    }

    #[test]
    fn hash_spreads_over_table() {
        // 256 random-ish windows should hit a healthy fraction of a
        // 256-entry table.
        let mut seen = std::collections::HashSet::new();
        for i in 0..256u32 {
            let entries = [i.wrapping_mul(2654435761) % 8192, i, i ^ 0x55];
            seen.insert(conv_hash(&entries, 2, 3, 8));
        }
        assert!(seen.len() > 140, "only {} distinct buckets", seen.len());
    }
}
