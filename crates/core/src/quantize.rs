//! Quantization of trained Mini-BranchNet models (paper Section V-B,
//! Optimizations 2 and 4).
//!
//! A trained float [`BranchNetModel`] with hashed convolutions is
//! lowered to a [`QuantizedMini`]:
//!
//! * **Convolution binarization** — every `2^h`-entry convolution
//!   table row is reduced to the *sign* of its batch-norm-fused
//!   response (`1` bit per channel per entry). Sum-pooling then
//!   produces small integer counts in `[-P, +P]`.
//! * **Fixed-point fully-connected** — pooled features pass through
//!   the fused post-pool batch-norm + Tanh and are quantized to `q`
//!   bits; first-layer weights are quantized to `q` bits; each hidden
//!   neuron's batch norm and binarization collapse into a single
//!   integer threshold on the integer dot product; and the final layer
//!   becomes a `2^N`-entry lookup table over the binarized hidden
//!   vector.
//!
//! [`QuantMode`] selects how much of the ladder applies, which is what
//! the paper's Table IV measures.

use crate::config::{BranchNetConfig, SliceConfig};
use crate::hashing::conv_hash;
use crate::model::BranchNetModel;
use serde::{Deserialize, Serialize};

/// How far down the quantization ladder to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuantMode {
    /// Binarized convolutions, floating-point fully-connected stage
    /// (Table IV row "Quantized convolution").
    ConvOnly,
    /// Fully quantized: integer FC with thresholds and the final LUT
    /// (Table IV row "Fully-quantized"; what the engine executes).
    Full,
}

/// One quantized slice.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantSlice {
    /// Architecture of this slice.
    pub cfg: SliceConfig,
    /// Binarized convolution responses: `[2^h * C]`, each `-1` or `+1`.
    sign_table: Vec<i8>,
    /// Fused post-pool batch-norm scale per channel.
    bn2_scale: Vec<f32>,
    /// Fused post-pool batch-norm shift per channel.
    bn2_shift: Vec<f32>,
}

impl QuantSlice {
    /// The binarized response of table entry `id` on `channel`.
    #[must_use]
    pub fn sign(&self, id: u32, channel: usize) -> i8 {
        self.sign_table[id as usize * self.cfg.channels + channel]
    }
}

/// A fully-lowered Mini-BranchNet model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedMini {
    config: BranchNetConfig,
    slices: Vec<QuantSlice>,
    q: u32,
    // Float FC (for ConvOnly mode and LUT construction).
    fc1_w: Vec<f32>, // [N * total]
    fc1_b: Vec<f32>,
    bn3_scale: Vec<f32>,
    bn3_shift: Vec<f32>,
    out_w: Vec<f32>,
    out_b: f32,
    // Integer FC.
    fc1_wq: Vec<i32>, // [N * total]
    /// Per-neuron `(threshold, flipped)`: hidden bit = `dot >= t`
    /// (or `dot <= t` when flipped).
    thresholds: Vec<(i64, bool)>,
    /// Final-layer lookup table over binarized hidden vectors.
    lut: Vec<bool>,
}

impl QuantizedMini {
    /// Lowers a trained hashed-convolution model.
    ///
    /// # Panics
    ///
    /// Panics if the model is not a Mini-style (hashed, quantized,
    /// single-hidden-layer) model.
    #[must_use]
    pub fn from_model(model: &BranchNetModel) -> Self {
        let config = model.config().clone();
        assert!(
            config.is_hashed(),
            "quantization requires a hashed convolution (conv_hash_bits = Some): \
             config '{}' uses a float convolution and cannot be lowered",
            config.name
        );
        let q = config.fc_quant_bits.expect("quantization requires fc_quant_bits");
        assert_eq!(config.hidden.len(), 1, "Mini models have one hidden FC layer");
        let parts = model.mini_parts();
        let qmax = ((1i32 << (q - 1)) - 1) as f32;

        let mut slices = Vec::new();
        for sp in &parts.slices {
            let (scale1, shift1) = sp.bn1.affine_form();
            let (scale2, shift2) = sp.bn2.affine_form();
            let c = sp.cfg.channels;
            let entries = sp.table.len() / c;
            let mut sign_table = vec![0i8; entries * c];
            for id in 0..entries {
                for ch in 0..c {
                    let raw = sp.table.data()[id * c + ch];
                    let normed = scale1[ch] * raw + shift1[ch];
                    sign_table[id * c + ch] = if normed >= 0.0 { 1 } else { -1 };
                }
            }
            slices.push(QuantSlice {
                cfg: sp.cfg,
                sign_table,
                bn2_scale: scale2,
                bn2_shift: shift2,
            });
        }

        let (fc1, bn3) = parts.hidden[0];
        let (bn3_scale, bn3_shift) = bn3.affine_form();
        let n = fc1.out_features();
        let _ = fc1.in_features();
        let fc1_w = fc1.weight().data().to_vec();
        let fc1_b = fc1.bias().data().to_vec();

        // Symmetric per-layer weight quantization.
        let wmax = fc1_w.iter().fold(0.0f32, |m, w| m.max(w.abs())).max(1e-6);
        let wscale = wmax / qmax;
        let fc1_wq: Vec<i32> =
            fc1_w.iter().map(|w| (w / wscale).round().clamp(-qmax, qmax) as i32).collect();

        // Fuse bn3 + binarization into integer thresholds:
        // bit = [scale3*(s_w/Qmax · dot + b) + shift3 >= 0].
        let mut thresholds = Vec::with_capacity(n);
        for j in 0..n {
            let a = bn3_scale[j] * wscale / qmax; // coefficient on dot
            let b = bn3_scale[j] * fc1_b[j] + bn3_shift[j];
            if a.abs() < 1e-12 {
                // Degenerate neuron: constant bit.
                thresholds.push((if b >= 0.0 { i64::MIN } else { i64::MAX }, false));
            } else if a > 0.0 {
                thresholds.push(((-b / a).ceil() as i64, false));
            } else {
                thresholds.push(((-b / a).floor() as i64, true));
            }
        }

        let out_w = parts.out.weight().data().to_vec();
        let out_b = parts.out.bias().data()[0];
        // Final-layer LUT over all 2^N binarized hidden patterns.
        let lut: Vec<bool> = (0..(1usize << n))
            .map(|pattern| {
                let mut z = out_b;
                for (j, w) in out_w.iter().enumerate() {
                    let h = if pattern >> j & 1 == 1 { 1.0 } else { -1.0 };
                    z += w * h;
                }
                z >= 0.0
            })
            .collect();

        Self {
            config,
            slices,
            q,
            fc1_w,
            fc1_b,
            bn3_scale,
            bn3_shift,
            out_w,
            out_b,
            fc1_wq,
            thresholds,
            lut,
        }
    }

    /// The architecture this model implements.
    #[must_use]
    pub fn config(&self) -> &BranchNetConfig {
        &self.config
    }

    /// The quantized slices (used by the inference engine).
    #[must_use]
    pub fn slices(&self) -> &[QuantSlice] {
        &self.slices
    }

    /// Computes the pooled integer sums for a full-history window
    /// (oldest → newest), flattened `[slice][channel][window]` — the
    /// values an inference engine's pooling buffers would hold with
    /// prediction-aligned windows.
    #[must_use]
    pub fn pooled_sums(&self, window: &[u32]) -> Vec<i32> {
        assert_eq!(window.len(), self.config.window_len(), "window must be window_len long");
        let k = self.config.conv_width;
        let h_bits = self.config.conv_hash_bits.expect("hashed model");
        let mut sums = Vec::with_capacity(self.config.total_pooled());
        for s in &self.slices {
            let h = s.cfg.history;
            let c = s.cfg.channels;
            let p = s.cfg.pool_width;
            let windows = h / p;
            let end = window.len();
            // Conv signs for each of the H positions (older-than-stream
            // positions contribute 0, matching zero-padded training).
            let mut signs = vec![0i8; h * c];
            let have = end.min(h);
            for i in 0..have {
                let pos = end - have + i;
                let id = conv_hash(window, pos, k, h_bits);
                for ch in 0..c {
                    signs[(h - have + i) * c + ch] = s.sign(id, ch);
                }
            }
            for ch in 0..c {
                for w in 0..windows {
                    let mut acc = 0i32;
                    for t in 0..p {
                        acc += i32::from(signs[(w * p + t) * c + ch]);
                    }
                    sums.push(acc);
                }
            }
        }
        sums
    }

    /// Runs the fully-connected stage on pooled sums (flattened
    /// `[slice][channel][window]`) under the chosen quantization mode
    /// and returns the predicted direction.
    ///
    /// # Panics
    ///
    /// Panics if `sums.len()` differs from the config's total pooled
    /// feature count.
    #[must_use]
    pub fn predict_from_sums(&self, sums: &[i32], mode: QuantMode) -> bool {
        assert_eq!(sums.len(), self.config.total_pooled(), "pooled feature count mismatch");
        // Post-pool normalization + Tanh per channel.
        let mut feats = vec![0.0f32; sums.len()];
        let mut idx = 0;
        for s in &self.slices {
            let windows = s.cfg.pooled_len();
            for ch in 0..s.cfg.channels {
                for _ in 0..windows {
                    let x = s.bn2_scale[ch] * sums[idx] as f32 + s.bn2_shift[ch];
                    feats[idx] = x.tanh();
                    idx += 1;
                }
            }
        }
        let n = self.thresholds.len();
        match mode {
            QuantMode::ConvOnly => {
                // Float FC on the (binarized-conv) features.
                let total = feats.len();
                let mut logit = self.out_b;
                for j in 0..n {
                    let mut z = self.fc1_b[j];
                    for (i, f) in feats.iter().enumerate() {
                        z += self.fc1_w[j * total + i] * f;
                    }
                    let hval = (self.bn3_scale[j] * z + self.bn3_shift[j]).tanh();
                    logit += self.out_w[j] * hval;
                }
                logit >= 0.0
            }
            QuantMode::Full => {
                let qmax = ((1i32 << (self.q - 1)) - 1) as f32;
                let total = feats.len();
                let mut pattern = 0usize;
                for j in 0..n {
                    let mut dot = 0i64;
                    for (i, f) in feats.iter().enumerate() {
                        let xq = (f * qmax).round().clamp(-qmax, qmax) as i64;
                        dot += i64::from(self.fc1_wq[j * total + i]) * xq;
                    }
                    let (t, flipped) = self.thresholds[j];
                    let bit = if flipped { dot <= t } else { dot >= t };
                    if bit {
                        pattern |= 1 << j;
                    }
                }
                self.lut[pattern]
            }
        }
    }

    /// End-to-end prediction from a full-history window.
    #[must_use]
    pub fn predict(&self, window: &[u32], mode: QuantMode) -> bool {
        let sums = self.pooled_sums(window);
        self.predict_from_sums(&sums, mode)
    }

    /// Borrowed views of every table, for the model-file serializer.
    pub(crate) fn parts(&self) -> QuantPartsRef<'_> {
        QuantPartsRef {
            slices: self
                .slices
                .iter()
                .map(|s| QuantSlicePartsRef {
                    sign_table: &s.sign_table,
                    bn2_scale: &s.bn2_scale,
                    bn2_shift: &s.bn2_shift,
                })
                .collect(),
            q: self.q,
            fc1_w: &self.fc1_w,
            fc1_b: &self.fc1_b,
            bn3_scale: &self.bn3_scale,
            bn3_shift: &self.bn3_shift,
            out_w: &self.out_w,
            out_b: self.out_b,
            fc1_wq: &self.fc1_wq,
            thresholds: &self.thresholds,
            lut: &self.lut,
        }
    }

    /// Reassembles a model from deserialized tables, validating every
    /// cross-table size constraint. Returns a static description of
    /// the first violated constraint on failure.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        config: BranchNetConfig,
        sign_tables: Vec<Vec<i8>>,
        bn2: Vec<(Vec<f32>, Vec<f32>)>,
        q: u32,
        fc1_w: Vec<f32>,
        fc1_b: Vec<f32>,
        bn3_scale: Vec<f32>,
        bn3_shift: Vec<f32>,
        out_w: Vec<f32>,
        out_b: f32,
        fc1_wq: Vec<i32>,
        thresholds: Vec<(i64, bool)>,
        lut: Vec<bool>,
    ) -> Result<Self, &'static str> {
        if config.hidden.len() != 1 {
            return Err("mini models have one hidden layer");
        }
        let n = config.hidden[0];
        // The final-layer LUT has 2^n entries; an untrusted hidden
        // width past the widest real Mini would overflow the shift in
        // the size check below (and describe a nonsensical model).
        if n == 0 || n > 20 {
            return Err("implausible hidden width for a lut model");
        }
        let total = config.total_pooled();
        if sign_tables.len() != config.slices.len() || bn2.len() != config.slices.len() {
            return Err("slice table count mismatch");
        }
        if fc1_w.len() != n * total || fc1_wq.len() != n * total {
            return Err("fc1 weight size mismatch");
        }
        if fc1_b.len() != n || bn3_scale.len() != n || bn3_shift.len() != n || out_w.len() != n {
            return Err("hidden vector size mismatch");
        }
        if thresholds.len() != n {
            return Err("threshold count mismatch");
        }
        if lut.len() != 1 << n {
            return Err("lut size mismatch");
        }
        // Deserialized tables are untrusted: a flipped exponent bit
        // can smuggle a NaN or an absurd magnitude into the FC stage,
        // where it would silently poison every prediction. Healthy
        // trained weights are O(1), so the magnitude bound is generous.
        let finite = |v: &f32| v.is_finite() && v.abs() <= 1.0e9;
        let bn2_ok =
            bn2.iter().all(|(scale, shift)| scale.iter().all(finite) && shift.iter().all(finite));
        if !bn2_ok
            || !finite(&out_b)
            || ![&fc1_w, &fc1_b, &bn3_scale, &bn3_shift, &out_w]
                .iter()
                .all(|t| t.iter().all(finite))
        {
            return Err("non-finite or out-of-range weight");
        }
        let slices = config
            .slices
            .iter()
            .zip(sign_tables)
            .zip(bn2)
            .map(|((cfg, sign_table), (bn2_scale, bn2_shift))| QuantSlice {
                cfg: *cfg,
                sign_table,
                bn2_scale,
                bn2_shift,
            })
            .collect();
        Ok(Self {
            config,
            slices,
            q,
            fc1_w,
            fc1_b,
            bn3_scale,
            bn3_shift,
            out_w,
            out_b,
            fc1_wq,
            thresholds,
            lut,
        })
    }
}

/// Borrowed views of a [`QuantizedMini`]'s tables.
pub(crate) struct QuantPartsRef<'a> {
    pub slices: Vec<QuantSlicePartsRef<'a>>,
    pub q: u32,
    pub fc1_w: &'a [f32],
    pub fc1_b: &'a [f32],
    pub bn3_scale: &'a [f32],
    pub bn3_shift: &'a [f32],
    pub out_w: &'a [f32],
    pub out_b: f32,
    pub fc1_wq: &'a [i32],
    pub thresholds: &'a [(i64, bool)],
    pub lut: &'a [bool],
}

/// Borrowed views of one slice's tables.
pub(crate) struct QuantSlicePartsRef<'a> {
    pub sign_table: &'a [i8],
    pub bn2_scale: &'a [f32],
    pub bn2_shift: &'a [f32],
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SliceConfig;
    use crate::dataset::{BranchDataset, Example};
    use crate::trainer::{evaluate_accuracy, train_model, TrainOptions};

    fn tiny_config() -> BranchNetConfig {
        BranchNetConfig {
            name: "tq".into(),
            slices: vec![
                SliceConfig { history: 12, channels: 3, pool_width: 6, precise_pooling: true },
                SliceConfig { history: 24, channels: 3, pool_width: 6, precise_pooling: false },
            ],
            pc_bits: 4,
            conv_hash_bits: Some(6),
            embedding_dim: 0,
            conv_width: 3,
            hidden: vec![6],
            fc_quant_bits: Some(4),
            tanh_activations: true,
        }
    }

    fn counting_dataset(n: usize) -> BranchDataset {
        let a = 0b0_0101u32;
        let b = 0b0_1001u32;
        let mut examples = Vec::new();
        for i in 0..n {
            let ca = i % 10;
            let cb = (i / 10) % 10;
            let mut window = vec![0u32; 26];
            for slot in window.iter_mut().skip(14).take(ca) {
                *slot = a;
            }
            for slot in window.iter_mut().take(cb) {
                *slot = b;
            }
            examples.push(Example { window, label: if ca > cb { 1.0 } else { 0.0 } });
        }
        BranchDataset { pc: 0x7, max_history: 26, examples }
    }

    fn trained() -> (BranchNetModel, BranchDataset) {
        let ds = counting_dataset(600);
        let (model, _) = train_model(
            &tiny_config(),
            &ds,
            &TrainOptions { epochs: 50, batch_size: 32, lr: 0.02, ..Default::default() },
        );
        (model, ds)
    }

    #[test]
    #[should_panic(expected = "quantization requires a hashed convolution")]
    fn from_model_rejects_non_hashed_configs() {
        // A float-convolution (Big-style) model has no hashed tables
        // for the streaming datapath; lowering it must fail loudly at
        // construction instead of deep inside the first prediction.
        let mut cfg = tiny_config();
        cfg.conv_hash_bits = None;
        cfg.embedding_dim = 4;
        let ds = counting_dataset(60);
        let (model, _) = train_model(&cfg, &ds, &TrainOptions { epochs: 1, ..Default::default() });
        let _ = QuantizedMini::from_model(&model);
    }

    #[test]
    fn from_parts_rejects_non_finite_and_huge_weights() {
        let (model, _) = trained();
        let quant = QuantizedMini::from_model(&model);
        let rebuild = |m: &QuantizedMini| {
            QuantizedMini::from_parts(
                m.config.clone(),
                m.slices.iter().map(|s| s.sign_table.clone()).collect(),
                m.slices.iter().map(|s| (s.bn2_scale.clone(), s.bn2_shift.clone())).collect(),
                m.q,
                m.fc1_w.clone(),
                m.fc1_b.clone(),
                m.bn3_scale.clone(),
                m.bn3_shift.clone(),
                m.out_w.clone(),
                m.out_b,
                m.fc1_wq.clone(),
                m.thresholds.clone(),
                m.lut.clone(),
            )
        };
        // Positive control: the healthy tables reassemble cleanly.
        assert!(rebuild(&quant).is_ok());
        for poison in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1.0e30] {
            let mut bad = quant.clone();
            bad.fc1_w[0] = poison;
            assert_eq!(rebuild(&bad).unwrap_err(), "non-finite or out-of-range weight");
            let mut bad = quant.clone();
            bad.slices[0].bn2_shift[0] = poison;
            assert_eq!(rebuild(&bad).unwrap_err(), "non-finite or out-of-range weight");
            let mut bad = quant.clone();
            bad.out_b = poison;
            assert_eq!(rebuild(&bad).unwrap_err(), "non-finite or out-of-range weight");
        }
    }

    #[test]
    fn quantization_ladder_degrades_gracefully() {
        let (mut model, ds) = trained();
        let float_acc = evaluate_accuracy(&mut model, &ds);
        let quant = QuantizedMini::from_model(&model);
        let acc = |mode: QuantMode| {
            ds.examples
                .iter()
                .filter(|e| quant.predict(&e.window, mode) == (e.label >= 0.5))
                .count() as f64
                / ds.len() as f64
        };
        let conv_acc = acc(QuantMode::ConvOnly);
        let full_acc = acc(QuantMode::Full);
        assert!(float_acc > 0.9, "float accuracy {float_acc}");
        // Quantization costs something but not everything.
        assert!(conv_acc > 0.75, "conv-quantized accuracy {conv_acc}");
        assert!(full_acc > 0.7, "fully-quantized accuracy {full_acc}");
    }

    #[test]
    fn pooled_sums_are_bounded_by_pool_width() {
        let (model, ds) = trained();
        let quant = QuantizedMini::from_model(&model);
        let sums = quant.pooled_sums(&ds.examples[0].window);
        let mut idx = 0;
        for s in quant.slices() {
            for _ in 0..s.cfg.channels * s.cfg.pooled_len() {
                assert!(sums[idx].unsigned_abs() as usize <= s.cfg.pool_width);
                idx += 1;
            }
        }
    }

    #[test]
    fn sign_table_is_binary() {
        let (model, _) = trained();
        let quant = QuantizedMini::from_model(&model);
        for s in quant.slices() {
            for id in 0..(s.sign_table.len() / s.cfg.channels) {
                for ch in 0..s.cfg.channels {
                    let v = s.sign(id as u32, ch);
                    assert!(v == 1 || v == -1);
                }
            }
        }
    }

    #[test]
    fn full_mode_is_deterministic() {
        let (model, ds) = trained();
        let quant = QuantizedMini::from_model(&model);
        let w = &ds.examples[3].window;
        assert_eq!(quant.predict(w, QuantMode::Full), quant.predict(w, QuantMode::Full));
    }

    #[test]
    fn lut_covers_all_hidden_patterns() {
        let (model, _) = trained();
        let quant = QuantizedMini::from_model(&model);
        assert_eq!(quant.lut.len(), 1 << quant.thresholds.len());
    }

    #[test]
    fn ternary_quantization_supported() {
        // q=2 yields weights in {-1, 0, 1} (Tarsa-Ternary).
        let mut cfg = tiny_config();
        cfg.fc_quant_bits = Some(2);
        let ds = counting_dataset(200);
        let (model, _) = train_model(&cfg, &ds, &TrainOptions { epochs: 5, ..Default::default() });
        let quant = QuantizedMini::from_model(&model);
        assert!(quant.fc1_wq.iter().all(|&w| (-1..=1).contains(&w)));
    }
}
