//! Model files: serializing quantized models for deployment.
//!
//! The paper's system story (Section V-F) attaches trained BranchNet
//! models to the program binary; the OS loads them into the on-chip
//! engine at load time or on context switches. This module defines
//! that artifact: a compact, versioned binary encoding of a
//! [`QuantizedMini`] plus its target branch PC.
//!
//! ```text
//! magic "BNMD" | version u8 | pc u64 | config ... | tables ...
//! ```

use crate::config::{BranchNetConfig, SliceConfig};
use crate::quantize::QuantizedMini;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"BNMD";
const VERSION: u8 = 1;

/// Errors from reading a model file.
#[derive(Debug)]
pub enum ReadModelError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a model file.
    BadMagic,
    /// Unsupported version.
    BadVersion(u8),
    /// Structurally invalid content.
    Corrupt(&'static str),
}

impl std::fmt::Display for ReadModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadModelError::Io(e) => write!(f, "i/o error reading model: {e}"),
            ReadModelError::BadMagic => write!(f, "not a BranchNet model file"),
            ReadModelError::BadVersion(v) => write!(f, "unsupported model version {v}"),
            ReadModelError::Corrupt(what) => write!(f, "corrupt model file: {what}"),
        }
    }
}

impl std::error::Error for ReadModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadModelError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadModelError {
    fn from(e: io::Error) -> Self {
        ReadModelError::Io(e)
    }
}

struct Enc<W: Write>(W);

impl<W: Write> Enc<W> {
    fn u8(&mut self, v: u8) -> io::Result<()> {
        self.0.write_all(&[v])
    }
    fn u32(&mut self, v: u32) -> io::Result<()> {
        self.0.write_all(&v.to_le_bytes())
    }
    fn u64(&mut self, v: u64) -> io::Result<()> {
        self.0.write_all(&v.to_le_bytes())
    }
    fn i64(&mut self, v: i64) -> io::Result<()> {
        self.0.write_all(&v.to_le_bytes())
    }
    fn f32(&mut self, v: f32) -> io::Result<()> {
        self.0.write_all(&v.to_le_bytes())
    }
    fn str(&mut self, s: &str) -> io::Result<()> {
        self.u32(s.len() as u32)?;
        self.0.write_all(s.as_bytes())
    }
    fn f32s(&mut self, v: &[f32]) -> io::Result<()> {
        self.u32(v.len() as u32)?;
        for &x in v {
            self.f32(x)?;
        }
        Ok(())
    }
    fn i8s(&mut self, v: &[i8]) -> io::Result<()> {
        self.u32(v.len() as u32)?;
        for &x in v {
            self.u8(x as u8)?;
        }
        Ok(())
    }
    fn i32s(&mut self, v: &[i32]) -> io::Result<()> {
        self.u32(v.len() as u32)?;
        for &x in v {
            self.u32(x as u32)?;
        }
        Ok(())
    }
    fn bools(&mut self, v: &[bool]) -> io::Result<()> {
        self.u32(v.len() as u32)?;
        // Bit-packed: the final-layer LUT is exactly this in hardware.
        let mut byte = 0u8;
        for (i, &b) in v.iter().enumerate() {
            byte |= u8::from(b) << (i % 8);
            if i % 8 == 7 {
                self.u8(byte)?;
                byte = 0;
            }
        }
        if !v.len().is_multiple_of(8) {
            self.u8(byte)?;
        }
        Ok(())
    }
}

struct Dec<R: Read>(R);

impl<R: Read> Dec<R> {
    fn u8(&mut self) -> Result<u8, ReadModelError> {
        let mut b = [0u8; 1];
        self.0.read_exact(&mut b)?;
        Ok(b[0])
    }
    fn u32(&mut self) -> Result<u32, ReadModelError> {
        let mut b = [0u8; 4];
        self.0.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }
    fn u64(&mut self) -> Result<u64, ReadModelError> {
        let mut b = [0u8; 8];
        self.0.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
    fn i64(&mut self) -> Result<i64, ReadModelError> {
        Ok(self.u64()? as i64)
    }
    fn f32(&mut self) -> Result<f32, ReadModelError> {
        let mut b = [0u8; 4];
        self.0.read_exact(&mut b)?;
        Ok(f32::from_le_bytes(b))
    }
    fn len(&mut self) -> Result<usize, ReadModelError> {
        let n = self.u32()? as usize;
        if n > 1 << 28 {
            return Err(ReadModelError::Corrupt("implausible array length"));
        }
        Ok(n)
    }
    fn str(&mut self) -> Result<String, ReadModelError> {
        let n = self.len()?;
        let mut buf = vec![0u8; n];
        self.0.read_exact(&mut buf)?;
        String::from_utf8(buf).map_err(|_| ReadModelError::Corrupt("string not utf-8"))
    }
    fn f32s(&mut self) -> Result<Vec<f32>, ReadModelError> {
        let n = self.len()?;
        (0..n).map(|_| self.f32()).collect()
    }
    fn i8s(&mut self) -> Result<Vec<i8>, ReadModelError> {
        let n = self.len()?;
        (0..n).map(|_| self.u8().map(|v| v as i8)).collect()
    }
    fn i32s(&mut self) -> Result<Vec<i32>, ReadModelError> {
        let n = self.len()?;
        (0..n).map(|_| self.u32().map(|v| v as i32)).collect()
    }
    fn bools(&mut self) -> Result<Vec<bool>, ReadModelError> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n);
        let mut byte = 0u8;
        for i in 0..n {
            if i % 8 == 0 {
                byte = self.u8()?;
            }
            out.push(byte >> (i % 8) & 1 == 1);
        }
        Ok(out)
    }
}

fn write_config<W: Write>(e: &mut Enc<W>, c: &BranchNetConfig) -> io::Result<()> {
    e.str(&c.name)?;
    e.u32(c.slices.len() as u32)?;
    for s in &c.slices {
        e.u32(s.history as u32)?;
        e.u32(s.channels as u32)?;
        e.u32(s.pool_width as u32)?;
        e.u8(u8::from(s.precise_pooling))?;
    }
    e.u32(c.pc_bits)?;
    e.u32(c.conv_hash_bits.map_or(u32::MAX, |h| h))?;
    e.u32(c.embedding_dim as u32)?;
    e.u32(c.conv_width as u32)?;
    e.u32(c.hidden.len() as u32)?;
    for &h in &c.hidden {
        e.u32(h as u32)?;
    }
    e.u32(c.fc_quant_bits.map_or(u32::MAX, |q| q))?;
    e.u8(u8::from(c.tanh_activations))
}

fn read_config<R: Read>(d: &mut Dec<R>) -> Result<BranchNetConfig, ReadModelError> {
    let name = d.str()?;
    let n_slices = d.len()?;
    let mut slices = Vec::with_capacity(n_slices);
    for _ in 0..n_slices {
        slices.push(SliceConfig {
            history: d.u32()? as usize,
            channels: d.u32()? as usize,
            pool_width: d.u32()? as usize,
            precise_pooling: d.u8()? != 0,
        });
    }
    let pc_bits = d.u32()?;
    let conv_hash_bits = match d.u32()? {
        u32::MAX => None,
        h => Some(h),
    };
    let embedding_dim = d.u32()? as usize;
    let conv_width = d.u32()? as usize;
    let n_hidden = d.len()?;
    let hidden = (0..n_hidden).map(|_| d.u32().map(|v| v as usize)).collect::<Result<_, _>>()?;
    let fc_quant_bits = match d.u32()? {
        u32::MAX => None,
        q => Some(q),
    };
    let tanh_activations = d.u8()? != 0;
    let config = BranchNetConfig {
        name,
        slices,
        pc_bits,
        conv_hash_bits,
        embedding_dim,
        conv_width,
        hidden,
        fc_quant_bits,
        tanh_activations,
    };
    // The decoded knobs are untrusted: a corrupted pool width or
    // hidden size would panic (divide-by-zero, shift overflow) in the
    // table-size arithmetic below instead of degrading cleanly.
    config.check().map_err(ReadModelError::Corrupt)?;
    Ok(config)
}

/// Writes a `(pc, model)` pair as a model file.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_model<W: Write>(w: W, pc: u64, model: &QuantizedMini) -> io::Result<()> {
    let mut e = Enc(w);
    e.0.write_all(MAGIC)?;
    e.u8(VERSION)?;
    e.u64(pc)?;
    write_config(&mut e, model.config())?;
    let p = model.parts();
    e.u32(p.slices.len() as u32)?;
    for s in p.slices {
        e.i8s(s.sign_table)?;
        e.f32s(s.bn2_scale)?;
        e.f32s(s.bn2_shift)?;
    }
    e.u32(p.q)?;
    e.f32s(p.fc1_w)?;
    e.f32s(p.fc1_b)?;
    e.f32s(p.bn3_scale)?;
    e.f32s(p.bn3_shift)?;
    e.f32s(p.out_w)?;
    e.f32(p.out_b)?;
    e.i32s(p.fc1_wq)?;
    e.u32(p.thresholds.len() as u32)?;
    for &(t, flipped) in p.thresholds {
        e.i64(t)?;
        e.u8(u8::from(flipped))?;
    }
    e.bools(p.lut)
}

/// Reads a model file back into a `(pc, model)` pair.
///
/// # Errors
///
/// Returns [`ReadModelError`] on I/O failure or malformed content.
pub fn read_model<R: Read>(r: R) -> Result<(u64, QuantizedMini), ReadModelError> {
    let mut d = Dec(r);
    let mut magic = [0u8; 4];
    d.0.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ReadModelError::BadMagic);
    }
    let version = d.u8()?;
    if version != VERSION {
        return Err(ReadModelError::BadVersion(version));
    }
    let pc = d.u64()?;
    let config = read_config(&mut d)?;
    let n_slices = d.len()?;
    if n_slices != config.slices.len() {
        return Err(ReadModelError::Corrupt("slice count mismatch"));
    }
    let mut sign_tables = Vec::with_capacity(n_slices);
    let mut bn2 = Vec::with_capacity(n_slices);
    for s in &config.slices {
        let table = d.i8s()?;
        let expected = s.channels
            << config
                .conv_hash_bits
                .ok_or(ReadModelError::Corrupt("model files require hashed configs"))?;
        if table.len() != expected {
            return Err(ReadModelError::Corrupt("sign table size mismatch"));
        }
        if table.iter().any(|&v| v != 1 && v != -1) {
            return Err(ReadModelError::Corrupt("non-binary sign table entry"));
        }
        let scale = d.f32s()?;
        let shift = d.f32s()?;
        if scale.len() != s.channels || shift.len() != s.channels {
            return Err(ReadModelError::Corrupt("bn2 size mismatch"));
        }
        sign_tables.push(table);
        bn2.push((scale, shift));
    }
    let q = d.u32()?;
    let fc1_w = d.f32s()?;
    let fc1_b = d.f32s()?;
    let bn3_scale = d.f32s()?;
    let bn3_shift = d.f32s()?;
    let out_w = d.f32s()?;
    let out_b = d.f32()?;
    let fc1_wq = d.i32s()?;
    let n_thresh = d.len()?;
    let mut thresholds = Vec::with_capacity(n_thresh);
    for _ in 0..n_thresh {
        let t = d.i64()?;
        let flipped = d.u8()? != 0;
        thresholds.push((t, flipped));
    }
    let lut = d.bools()?;
    let model = QuantizedMini::from_parts(
        config,
        sign_tables,
        bn2,
        q,
        fc1_w,
        fc1_b,
        bn3_scale,
        bn3_shift,
        out_w,
        out_b,
        fc1_wq,
        thresholds,
        lut,
    )
    .map_err(ReadModelError::Corrupt)?;
    Ok((pc, model))
}

/// Writes a `(pc, model)` pair to `path` atomically: the bytes land in
/// a `.tmp` sibling first and are renamed into place only after a
/// successful flush, so a crash mid-write can never leave a torn model
/// file where a loader would find it.
///
/// # Errors
///
/// Propagates any I/O error; on failure the temporary is removed and
/// any previous file at `path` is untouched.
pub fn save_model(path: &std::path::Path, pc: u64, model: &QuantizedMini) -> io::Result<()> {
    branchnet_trace::io::atomic_write(path, |w| write_model(w, pc, model))
}

/// Reads a model file from `path` back into a `(pc, model)` pair.
///
/// # Errors
///
/// Returns [`ReadModelError`] on I/O failure or malformed content.
pub fn load_model(path: &std::path::Path) -> Result<(u64, QuantizedMini), ReadModelError> {
    let file = std::fs::File::open(path)?;
    read_model(io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SliceConfig;
    use crate::dataset::{BranchDataset, Example};
    use crate::quantize::QuantMode;
    use crate::trainer::{train_model, TrainOptions};

    fn trained() -> QuantizedMini {
        let cfg = BranchNetConfig {
            name: "persist-test".into(),
            slices: vec![
                SliceConfig { history: 8, channels: 2, pool_width: 4, precise_pooling: true },
                SliceConfig { history: 16, channels: 2, pool_width: 8, precise_pooling: false },
            ],
            pc_bits: 5,
            conv_hash_bits: Some(6),
            embedding_dim: 0,
            conv_width: 3,
            hidden: vec![4],
            fc_quant_bits: Some(4),
            tanh_activations: true,
        };
        let examples = (0..60u32)
            .map(|i| Example {
                window: (0..cfg.window_len() as u32).map(|j| (i * 11 + j * 3) % 64).collect(),
                label: f32::from(u8::from(i % 2 == 0)),
            })
            .collect();
        let ds = BranchDataset { pc: 9, max_history: cfg.window_len(), examples };
        let (m, _) = train_model(&cfg, &ds, &TrainOptions { epochs: 2, ..Default::default() });
        QuantizedMini::from_model(&m)
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let model = trained();
        let mut buf = Vec::new();
        write_model(&mut buf, 0x4200, &model).unwrap();
        let (pc, back) = read_model(buf.as_slice()).unwrap();
        assert_eq!(pc, 0x4200);
        assert_eq!(back.config(), model.config());
        for i in 0..50u32 {
            let window: Vec<u32> =
                (0..model.config().window_len() as u32).map(|j| (i * 7 + j) % 64).collect();
            for mode in [QuantMode::ConvOnly, QuantMode::Full] {
                assert_eq!(
                    model.predict(&window, mode),
                    back.predict(&window, mode),
                    "prediction diverged after round trip"
                );
            }
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(read_model(&b"XXXX0"[..]), Err(ReadModelError::BadMagic)));
    }

    #[test]
    fn truncation_is_an_error() {
        let model = trained();
        let mut buf = Vec::new();
        write_model(&mut buf, 1, &model).unwrap();
        for cut in [4usize, 13, buf.len() / 3, buf.len() - 2] {
            assert!(read_model(&buf[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn corrupted_sign_table_rejected() {
        let model = trained();
        let mut buf = Vec::new();
        write_model(&mut buf, 1, &model).unwrap();
        // Flip a sign-table byte to an invalid value (0). The table
        // starts after magic+version+pc+config; find a 0x01 byte in the
        // first chunk and zero it.
        let start = 50;
        if let Some(pos) = buf[start..start + 200].iter().position(|&b| b == 1) {
            buf[start + pos] = 0;
            // Either a corrupt error or (if we hit a length/other
            // field) some other clean error — never a panic.
            let _ = read_model(buf.as_slice());
        }
    }

    #[test]
    fn save_and_load_round_trip_without_leaving_a_temporary() {
        let model = trained();
        let dir = std::env::temp_dir().join("branchnet-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bnmd");
        save_model(&path, 0x88, &model).unwrap();
        assert!(!dir.join("model.bnmd.tmp").exists(), "temporary must be renamed away");
        let (pc, back) = load_model(&path).unwrap();
        assert_eq!(pc, 0x88);
        assert_eq!(back.config(), model.config());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_model_reports_missing_file_as_io_error() {
        let err = load_model(std::path::Path::new("/nonexistent/model.bnmd")).unwrap_err();
        assert!(matches!(err, ReadModelError::Io(_)));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn model_file_is_reasonably_small() {
        let model = trained();
        let mut buf = Vec::new();
        write_model(&mut buf, 1, &model).unwrap();
        // Tiny test model: the file must be a few KB at most.
        assert!(buf.len() < 8 * 1024, "{} bytes", buf.len());
    }
}
