//! The on-chip Mini-BranchNet inference engine (paper Section V-B,
//! Fig. 6/7).
//!
//! The engine processes branches **one at a time** as they retire
//! (Optimization 1): each incoming branch is hashed with its `K−1`
//! predecessors, looked up in the binarized convolution tables, and
//! accumulated into per-slice *convolutional histories* —
//!
//! * **precise-pooling slices** buffer the last `H` binary convolution
//!   outputs so prediction-time windows align exactly to the newest
//!   branch;
//! * **sliding-pooling slices** (Optimization 3) keep only completed
//!   `P`-wide window sums plus one running partial sum, so the most
//!   recent `0..P−1` branches may be excluded from a prediction —
//!   the nondeterminism the training-time randomization prepares the
//!   model for.
//!
//! Prediction runs the fully-quantized datapath of
//! [`QuantizedMini`]. [`InferenceEngine::checkpoint`] /
//! [`restore`](InferenceEngine::restore) model the pipeline-flush
//! recovery mechanism of Section V-C.

use crate::hashing::conv_hash;
use crate::quantize::{QuantMode, QuantizedMini};
use crate::storage::{storage_breakdown, StorageBreakdown};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A quantized/engine model was built on a config without a
/// convolution hash: the streaming datapaths look up hashed
/// convolution tables, so such a model can never run on the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonHashedConfig {
    /// Name of the offending config.
    pub config: String,
}

impl std::fmt::Display for NonHashedConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "config '{}' has no convolution hash (conv_hash_bits = None) and cannot stream",
            self.config
        )
    }
}

impl std::error::Error for NonHashedConfig {}

/// Per-slice streaming state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum SliceState {
    /// Last `H` per-channel binary convolution outputs, newest at the
    /// back.
    Precise { signs: VecDeque<Vec<i8>> },
    /// Completed window sums (newest at the back, up to `H/P`), the
    /// running partial sum, and the window phase counter.
    Sliding { completed: VecDeque<Vec<i32>>, partial: Vec<i32>, phase: usize },
}

/// Cold per-slice streaming state for `model`.
fn fresh_slices(model: &QuantizedMini) -> Vec<SliceState> {
    model
        .slices()
        .iter()
        .map(|s| {
            if s.cfg.precise_pooling {
                SliceState::Precise { signs: VecDeque::with_capacity(s.cfg.history) }
            } else {
                SliceState::Sliding {
                    completed: VecDeque::with_capacity(s.cfg.pooled_len()),
                    partial: vec![0; s.cfg.channels],
                    phase: 0,
                }
            }
        })
        .collect()
}

/// A snapshot of engine state for misprediction recovery.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineCheckpoint {
    recent: VecDeque<u32>,
    slices: Vec<SliceState>,
}

/// The streaming inference engine for one attached static branch.
#[derive(Debug, Clone)]
pub struct InferenceEngine {
    model: QuantizedMini,
    /// The last `K` encoded branches, for convolution hashing.
    recent: VecDeque<u32>,
    slices: Vec<SliceState>,
}

impl InferenceEngine {
    /// Wraps a quantized model with fresh streaming state.
    ///
    /// # Errors
    ///
    /// Returns [`NonHashedConfig`] if the model's config is not hashed
    /// (`conv_hash_bits: None`): the streaming update path looks up
    /// hashed convolution tables, so a float/Big-style config can
    /// never run on the engine. Rejecting it here (rather than deep in
    /// [`update`](Self::update)) gives the caller a typed, actionable
    /// error at construction time — the OS-load failure model of
    /// Section V-F, where a bad pack must degrade to the runtime
    /// baseline instead of crashing.
    pub fn new(model: QuantizedMini) -> Result<Self, NonHashedConfig> {
        if !model.config().is_hashed() {
            return Err(NonHashedConfig { config: model.config().name.clone() });
        }
        let slices = fresh_slices(&model);
        Ok(Self { recent: VecDeque::with_capacity(8), model, slices })
    }

    /// The quantized model this engine executes.
    #[must_use]
    pub fn model(&self) -> &QuantizedMini {
        &self.model
    }

    /// Feeds one retired branch (already encoded as the `(p+1)`-bit
    /// `(PC, direction)` integer) through the update pipeline. This is
    /// the single-cycle operation of the paper's update path.
    pub fn update(&mut self, encoded: u32) {
        let k = self.model.config().conv_width;
        if self.recent.len() == k {
            self.recent.pop_front();
        }
        self.recent.push_back(encoded);
        let window = self.recent.make_contiguous();
        let end = window.len() - 1;
        // Validated in `new`: engines are only constructed around
        // hashed configs.
        let h_bits = self.model.config().conv_hash_bits.expect("validated in InferenceEngine::new");
        let id = conv_hash(window, end, k, h_bits);
        for (s, state) in self.model.slices().iter().zip(&mut self.slices) {
            let c = s.cfg.channels;
            match state {
                SliceState::Precise { signs } => {
                    if signs.len() == s.cfg.history {
                        signs.pop_front();
                    }
                    signs.push_back((0..c).map(|ch| s.sign(id, ch)).collect());
                }
                SliceState::Sliding { completed, partial, phase } => {
                    for (ch, p) in partial.iter_mut().enumerate() {
                        *p += i32::from(s.sign(id, ch));
                    }
                    *phase += 1;
                    if *phase == s.cfg.pool_width {
                        if completed.len() == s.cfg.pooled_len() {
                            completed.pop_front();
                        }
                        completed.push_back(std::mem::replace(partial, vec![0; c]));
                        *phase = 0;
                    }
                }
            }
        }
    }

    /// Predicts the attached branch's direction from the current
    /// convolutional histories (the multi-cycle prediction path).
    #[must_use]
    pub fn predict(&self) -> bool {
        let mut sums = Vec::with_capacity(self.model.config().total_pooled());
        for (s, state) in self.model.slices().iter().zip(&self.slices) {
            let c = s.cfg.channels;
            let windows = s.cfg.pooled_len();
            let p = s.cfg.pool_width;
            match state {
                SliceState::Precise { signs } => {
                    // Zero-pad at the old end, then window sums aligned
                    // so the newest window ends at the newest branch.
                    let have = signs.len();
                    let pad = s.cfg.history - have;
                    // `ch` indexes the *inner* per-branch sign vectors,
                    // not `signs` itself, so an iterator doesn't apply.
                    #[allow(clippy::needless_range_loop)]
                    for ch in 0..c {
                        for w in 0..windows {
                            let mut acc = 0i32;
                            for t in 0..p {
                                let pos = w * p + t;
                                if pos >= pad {
                                    acc += i32::from(signs[pos - pad][ch]);
                                }
                            }
                            sums.push(acc);
                        }
                    }
                }
                SliceState::Sliding { completed, .. } => {
                    let have = completed.len();
                    let pad = windows - have;
                    // As above: `ch` indexes the inner window sums.
                    #[allow(clippy::needless_range_loop)]
                    for ch in 0..c {
                        for w in 0..windows {
                            sums.push(if w >= pad { completed[w - pad][ch] } else { 0 });
                        }
                    }
                }
            }
        }
        self.model.predict_from_sums(&sums, QuantMode::Full)
    }

    /// Clears all streaming state (e.g. at a context switch, before
    /// the OS reloads models for another process — Section V-F).
    pub fn reset(&mut self) {
        self.recent = VecDeque::with_capacity(8);
        self.slices = fresh_slices(&self.model);
    }

    /// Captures the streaming state (Section V-C recovery: shadow
    /// space holding recently shifted-out entries).
    #[must_use]
    pub fn checkpoint(&self) -> EngineCheckpoint {
        EngineCheckpoint { recent: self.recent.clone(), slices: self.slices.clone() }
    }

    /// Restores a previously captured state after a pipeline flush.
    pub fn restore(&mut self, checkpoint: &EngineCheckpoint) {
        self.recent = checkpoint.recent.clone();
        self.slices = checkpoint.slices.clone();
    }

    /// Table II storage of this engine instance.
    #[must_use]
    pub fn storage(&self) -> StorageBreakdown {
        storage_breakdown(self.model.config())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BranchNetConfig, SliceConfig};
    use crate::dataset::{BranchDataset, Example};
    use crate::trainer::{train_model, TrainOptions};

    fn tiny_config(all_precise: bool) -> BranchNetConfig {
        BranchNetConfig {
            name: "te".into(),
            slices: vec![
                SliceConfig { history: 8, channels: 2, pool_width: 4, precise_pooling: true },
                SliceConfig {
                    history: 16,
                    channels: 2,
                    pool_width: 8,
                    precise_pooling: all_precise,
                },
            ],
            pc_bits: 4,
            conv_hash_bits: Some(6),
            embedding_dim: 0,
            conv_width: 3,
            hidden: vec![4],
            fc_quant_bits: Some(4),
            tanh_activations: true,
        }
    }

    fn quick_model(all_precise: bool) -> QuantizedMini {
        let mut examples = Vec::new();
        for i in 0..120u32 {
            let window: Vec<u32> = (0..18).map(|j| (i * 13 + j * 5) % 32).collect();
            examples.push(Example { window, label: f32::from(u8::from(i % 3 == 0)) });
        }
        let ds = BranchDataset { pc: 1, max_history: 18, examples };
        let (model, _) = train_model(
            &tiny_config(all_precise),
            &ds,
            &TrainOptions { epochs: 2, ..Default::default() },
        );
        QuantizedMini::from_model(&model)
    }

    /// Stream of encoded branches used across tests.
    fn stream(n: usize) -> Vec<u32> {
        (0..n as u32).map(|i| (i * 7 + 3) % 32).collect()
    }

    #[test]
    fn precise_engine_matches_batch_path_exactly() {
        // With every slice precise, the streaming engine must agree
        // with QuantizedMini::predict on the same history window.
        let quant = quick_model(true);
        let mut engine = InferenceEngine::new(quant.clone()).unwrap();
        let s = stream(64);
        for (i, &e) in s.iter().enumerate() {
            engine.update(e);
            if i + 1 >= 18 {
                let window: Vec<u32> = s[i + 1 - 18..=i].to_vec();
                assert_eq!(
                    engine.predict(),
                    quant.predict(&window, QuantMode::Full),
                    "diverged at stream position {i}"
                );
            }
        }
    }

    #[test]
    fn sliding_slices_tolerate_window_misalignment() {
        // With sliding pooling the engine may lag up to P-1 branches;
        // it must still produce *a* stable prediction every cycle.
        let quant = quick_model(false);
        let mut engine = InferenceEngine::new(quant).unwrap();
        for &e in &stream(100) {
            engine.update(e);
            let a = engine.predict();
            let b = engine.predict();
            assert_eq!(a, b, "prediction must be a pure function of state");
        }
    }

    #[test]
    fn checkpoint_restore_round_trips() {
        let quant = quick_model(false);
        let mut engine = InferenceEngine::new(quant).unwrap();
        let s = stream(40);
        for &e in &s[..20] {
            engine.update(e);
        }
        let ckpt = engine.checkpoint();
        let pred_at_ckpt = engine.predict();
        // Wrong-path execution: pollute state.
        for &e in &s[20..] {
            engine.update(e);
        }
        engine.restore(&ckpt);
        assert_eq!(engine.predict(), pred_at_ckpt);
        assert_eq!(engine.checkpoint(), ckpt);
    }

    #[test]
    fn restore_then_replay_equals_straight_run() {
        let quant = quick_model(false);
        let s = stream(60);
        // Straight run.
        let mut a = InferenceEngine::new(quant.clone()).unwrap();
        for &e in &s {
            a.update(e);
        }
        // Checkpointed run with a flush in the middle.
        let mut b = InferenceEngine::new(quant).unwrap();
        for &e in &s[..30] {
            b.update(e);
        }
        let ckpt = b.checkpoint();
        for &e in &s[30..45] {
            b.update(e); // wrong path
        }
        b.restore(&ckpt);
        for &e in &s[30..] {
            b.update(e); // correct path replay
        }
        assert_eq!(a.checkpoint(), b.checkpoint());
        assert_eq!(a.predict(), b.predict());
    }

    #[test]
    fn cold_engine_still_predicts() {
        let quant = quick_model(true);
        let engine = InferenceEngine::new(quant).unwrap();
        // No updates at all: zero-padded state must not panic.
        let _ = engine.predict();
    }

    #[test]
    fn storage_matches_config_breakdown() {
        let quant = quick_model(false);
        let engine = InferenceEngine::new(quant.clone()).unwrap();
        assert_eq!(engine.storage().total_bits(), storage_breakdown(quant.config()).total_bits());
    }
}
