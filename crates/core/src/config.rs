//! BranchNet architecture knobs (paper Table I).
//!
//! A [`BranchNetConfig`] fully describes one CNN model: the geometric
//! history lengths and channel/pooling structure of its five slices,
//! the PC/hash widths, embedding size, convolution width, hidden layer
//! sizes, and quantization precision. Presets reproduce the paper's
//! configurations; histories are rounded to multiples of their pooling
//! widths (the paper's nominal H values are not divisible by P — see
//! DESIGN.md) and the compute-heavy Big preset has a `big_scaled`
//! sibling for fast experimentation.

use serde::{Deserialize, Serialize};

/// One feature-extraction slice: embedding → convolution → sum-pool
/// over a particular history length (paper Section V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SliceConfig {
    /// History length H (branches fed to this slice).
    pub history: usize,
    /// Convolution output channels C.
    pub channels: usize,
    /// Sum-pooling width and stride P.
    pub pool_width: usize,
    /// Precise pooling (windows aligned to the prediction point)
    /// versus sliding pooling (stream-aligned windows; Optimization 3).
    pub precise_pooling: bool,
}

impl SliceConfig {
    /// Number of pooled outputs this slice feeds the fully-connected
    /// stage (per channel).
    #[must_use]
    pub fn pooled_len(&self) -> usize {
        self.history / self.pool_width
    }

    /// Non-panicking structural validation. Model files decode into
    /// this type, so the bounds here are the first line of defense
    /// against corrupted packs (DESIGN.md §9): a zero pool width would
    /// divide by zero in [`Self::pooled_len`], an absurd history would
    /// drive giant allocations downstream.
    ///
    /// # Errors
    ///
    /// Returns a static description of the first violated invariant.
    pub fn check(&self) -> Result<(), &'static str> {
        if self.history == 0 || self.channels == 0 || self.pool_width == 0 {
            return Err("slice knobs must be positive");
        }
        if self.history > 1 << 20 || self.channels > 1 << 12 {
            return Err("implausible slice size");
        }
        if !self.history.is_multiple_of(self.pool_width) {
            return Err("slice history must be a multiple of pool width");
        }
        Ok(())
    }

    /// Validates divisibility of history by pooling width.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant (see [`Self::check`] for
    /// the non-panicking form).
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e} (history {}, pool width {})", self.history, self.pool_width);
        }
    }
}

/// Complete architecture description of one BranchNet model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BranchNetConfig {
    /// Display name ("big", "mini-2kb", ...).
    pub name: String,
    /// The feature-extraction slices, shortest history first.
    pub slices: Vec<SliceConfig>,
    /// Bits of branch PC in each history element (knob `p`).
    pub pc_bits: u32,
    /// Hashed-convolution input width (knob `h`); `None` selects the
    /// full embedding + arithmetic convolution of Big-BranchNet,
    /// `Some(h)` the lookup-table convolution of Mini-BranchNet
    /// (Optimization 2).
    pub conv_hash_bits: Option<u32>,
    /// Embedding dimensionality E (Big only).
    pub embedding_dim: usize,
    /// Convolution width K.
    pub conv_width: usize,
    /// Hidden fully-connected layer sizes N.
    pub hidden: Vec<usize>,
    /// Fixed-point precision q of sum-pool outputs and FC weights;
    /// `None` keeps the model floating-point (Big, Tarsa-Float).
    pub fc_quant_bits: Option<u32>,
    /// Tanh activations (Mini, quantization-friendly) versus ReLU
    /// (Big).
    pub tanh_activations: bool,
}

impl BranchNetConfig {
    /// Big-BranchNet with the paper's Table I knobs (H rounded to pool
    /// multiples): 5 slices × 32 channels, E=32, K=7, hidden 128+128.
    /// Pure software model; training it is compute-heavy.
    #[must_use]
    pub fn big() -> Self {
        Self {
            name: "big".into(),
            slices: [(42, 3), (78, 6), (132, 12), (288, 24), (384, 48)]
                .into_iter()
                .map(|(h, p)| SliceConfig {
                    history: h,
                    channels: 32,
                    pool_width: p,
                    precise_pooling: true,
                })
                .collect(),
            pc_bits: 12,
            conv_hash_bits: None,
            embedding_dim: 32,
            conv_width: 7,
            hidden: vec![128, 128],
            fc_quant_bits: None,
            tanh_activations: false,
        }
    }

    /// A compute-scaled Big-BranchNet used by default in experiments:
    /// same structure, smaller E/C/H so CPU training finishes in
    /// seconds rather than hours. DESIGN.md documents this
    /// substitution.
    #[must_use]
    pub fn big_scaled() -> Self {
        Self {
            name: "big-scaled".into(),
            slices: [(24, 3), (48, 6), (96, 12), (192, 24), (288, 48)]
                .into_iter()
                .map(|(h, p)| SliceConfig {
                    history: h,
                    channels: 8,
                    pool_width: p,
                    precise_pooling: true,
                })
                .collect(),
            pc_bits: 12,
            conv_hash_bits: None,
            embedding_dim: 8,
            conv_width: 7,
            hidden: vec![32, 32],
            fc_quant_bits: None,
            tanh_activations: false,
        }
    }

    /// Shared Mini scaffold. The paper's Table I uses a 7-wide hashed
    /// convolution; this reproduction's Mini presets use a 1-wide one
    /// because the synthetic workloads' noise branches have i.i.d.
    /// directions, so wide hashed n-grams almost never recur between
    /// training and test and carry no generalizable signal (real
    /// programs re-execute the same local branch sequences, which is
    /// what makes K=7 hashing work there). See DESIGN.md.
    fn mini(
        name: &str,
        channels: [usize; 5],
        hash_bits: u32,
        hidden: usize,
        q: u32,
        precise: [bool; 5],
    ) -> Self {
        let histories = [36usize, 72, 144, 288, 576];
        let pools = [6usize, 12, 24, 48, 96];
        Self {
            name: name.into(),
            slices: (0..5)
                .map(|i| SliceConfig {
                    history: histories[i],
                    channels: channels[i],
                    pool_width: pools[i],
                    precise_pooling: precise[i],
                })
                .collect(),
            pc_bits: 12,
            conv_hash_bits: Some(hash_bits),
            embedding_dim: 0,
            conv_width: 1,
            hidden: vec![hidden],
            fc_quant_bits: Some(q),
            tanh_activations: true,
        }
    }

    /// The 2 KB Mini-BranchNet configuration.
    #[must_use]
    pub fn mini_2kb() -> Self {
        Self::mini("mini-2kb", [8, 6, 5, 5, 4], 8, 10, 4, [true, true, false, false, false])
    }

    /// The 1 KB Mini-BranchNet configuration.
    #[must_use]
    pub fn mini_1kb() -> Self {
        Self::mini("mini-1kb", [4, 3, 3, 3, 3], 8, 8, 4, [true, true, false, false, false])
    }

    /// The 0.5 KB Mini-BranchNet configuration.
    #[must_use]
    pub fn mini_05kb() -> Self {
        Self::mini("mini-0.5kb", [3, 2, 2, 2, 2], 7, 8, 3, [true, false, false, false, false])
    }

    /// The 0.25 KB Mini-BranchNet configuration.
    #[must_use]
    pub fn mini_025kb() -> Self {
        Self::mini("mini-0.25kb", [2, 2, 1, 1, 1], 7, 6, 3, [true, false, false, false, false])
    }

    /// Tarsa et al.'s CNN in BranchNet terms (Table I, last column):
    /// a single 200-branch history, no pooling, narrow PC field, one
    /// fully-connected stage. `tarsa_float` is the oracular software
    /// version; [`Self::tarsa_ternary`] its quantized counterpart.
    #[must_use]
    pub fn tarsa_float() -> Self {
        Self {
            name: "tarsa-float".into(),
            slices: vec![SliceConfig {
                history: 200,
                channels: 2,
                pool_width: 1,
                precise_pooling: true,
            }],
            pc_bits: 7,
            conv_hash_bits: None,
            embedding_dim: 32,
            conv_width: 3,
            hidden: vec![4],
            fc_quant_bits: None,
            tanh_activations: false,
        }
    }

    /// Tarsa-Ternary: the hashed, quantized variant (2-bit ternary
    /// weights, hashed 1-wide convolution).
    #[must_use]
    pub fn tarsa_ternary() -> Self {
        Self {
            name: "tarsa-ternary".into(),
            slices: vec![SliceConfig {
                history: 200,
                channels: 2,
                pool_width: 1,
                precise_pooling: true,
            }],
            pc_bits: 7,
            conv_hash_bits: Some(8),
            embedding_dim: 0,
            conv_width: 1,
            hidden: vec![4],
            fc_quant_bits: Some(2),
            tanh_activations: true,
        }
    }

    /// All Mini presets, largest first, with their nominal per-branch
    /// storage budgets in bytes — the menu the budget-assignment step
    /// draws from (Section V-B "Optimal Architecture Knobs").
    #[must_use]
    pub fn mini_menu() -> Vec<(BranchNetConfig, usize)> {
        vec![
            (Self::mini_2kb(), 2048),
            (Self::mini_1kb(), 1024),
            (Self::mini_05kb(), 512),
            (Self::mini_025kb(), 256),
        ]
    }

    /// Longest history any slice consumes.
    #[must_use]
    pub fn max_history(&self) -> usize {
        self.slices.iter().map(|s| s.history).max().unwrap_or(0)
    }

    /// History-window length models and datasets exchange: the longest
    /// slice history plus `K−1` extra context entries so every
    /// convolution position hashes a full `K`-window — making the
    /// batch path agree bit-for-bit with the streaming engine.
    #[must_use]
    pub fn window_len(&self) -> usize {
        self.max_history() + self.conv_width - 1
    }

    /// Total pooled features entering the first FC layer.
    #[must_use]
    pub fn total_pooled(&self) -> usize {
        self.slices.iter().map(|s| s.channels * s.pooled_len()).sum()
    }

    /// Vocabulary of the (PC, direction) input encoding.
    #[must_use]
    pub fn vocab(&self) -> usize {
        1usize << (self.pc_bits + 1)
    }

    /// Whether this is a hashed-convolution (Mini-style) model.
    #[must_use]
    pub fn is_hashed(&self) -> bool {
        self.conv_hash_bits.is_some()
    }

    /// Non-panicking structural validation. Deserialized configs are
    /// untrusted (a corrupted model pack decodes into this type), so
    /// every knob a datapath divides by, shifts by, or allocates from
    /// is bounded here; `read_model` turns a failure into a typed
    /// `Corrupt` error instead of a downstream panic (DESIGN.md §9).
    ///
    /// # Errors
    ///
    /// Returns a static description of the first violated invariant.
    pub fn check(&self) -> Result<(), &'static str> {
        if self.slices.is_empty() {
            return Err("at least one slice required");
        }
        if self.slices.len() > 16 {
            return Err("implausible slice count");
        }
        for s in &self.slices {
            s.check()?;
        }
        if !(1..=20).contains(&self.pc_bits) {
            return Err("pc bits out of range");
        }
        if self.conv_width == 0 || self.conv_width.is_multiple_of(2) || self.conv_width > 63 {
            return Err("odd conv width required");
        }
        match self.conv_hash_bits {
            Some(h) if !(2..=16).contains(&h) => return Err("hash bits out of range"),
            None if self.embedding_dim == 0 => {
                return Err("embedding required without hashed convolution")
            }
            _ => {}
        }
        if self.embedding_dim > 1 << 12 {
            return Err("implausible embedding size");
        }
        if let Some(q) = self.fc_quant_bits {
            if !(2..=8).contains(&q) {
                return Err("fc quant bits out of range");
            }
        }
        if self.hidden.is_empty() {
            return Err("at least one hidden FC layer required");
        }
        if self.hidden.iter().any(|&n| n == 0 || n > 1 << 12) {
            return Err("implausible hidden width");
        }
        Ok(())
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent knobs (see [`Self::check`] for the
    /// non-panicking form untrusted decoders use).
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("invalid config '{}': {e}", self.name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for cfg in [
            BranchNetConfig::big(),
            BranchNetConfig::big_scaled(),
            BranchNetConfig::mini_2kb(),
            BranchNetConfig::mini_1kb(),
            BranchNetConfig::mini_05kb(),
            BranchNetConfig::mini_025kb(),
            BranchNetConfig::tarsa_float(),
            BranchNetConfig::tarsa_ternary(),
        ] {
            cfg.validate();
        }
    }

    #[test]
    fn big_matches_paper_knobs() {
        let b = BranchNetConfig::big();
        assert_eq!(b.slices.len(), 5);
        assert!(b.slices.iter().all(|s| s.channels == 32));
        assert_eq!(b.embedding_dim, 32);
        assert_eq!(b.conv_width, 7);
        assert_eq!(b.hidden, vec![128, 128]);
        assert_eq!(b.pc_bits, 12);
        assert!(b.fc_quant_bits.is_none());
    }

    #[test]
    fn histories_are_geometric_and_pool_divisible() {
        for cfg in [BranchNetConfig::big(), BranchNetConfig::mini_1kb()] {
            let hs: Vec<usize> = cfg.slices.iter().map(|s| s.history).collect();
            assert!(hs.windows(2).all(|w| w[0] < w[1]), "{hs:?} must grow");
            for s in &cfg.slices {
                assert_eq!(s.history % s.pool_width, 0);
            }
        }
    }

    #[test]
    fn mini_menu_is_sorted_by_budget() {
        let menu = BranchNetConfig::mini_menu();
        assert_eq!(menu.len(), 4);
        assert!(menu.windows(2).all(|w| w[0].1 > w[1].1));
    }

    #[test]
    fn mini_uses_longer_histories_than_big() {
        // Paper Section V-D: sum-pooling savings let Mini use longer
        // histories than both Big's nominal knobs and Tarsa.
        assert!(
            BranchNetConfig::mini_1kb().max_history()
                > BranchNetConfig::tarsa_ternary().max_history()
        );
    }

    #[test]
    fn total_pooled_counts_channels() {
        let cfg = BranchNetConfig::mini_1kb();
        let expect: usize =
            cfg.slices.iter().map(|s| s.channels * (s.history / s.pool_width)).sum();
        assert_eq!(cfg.total_pooled(), expect);
    }

    #[test]
    #[should_panic(expected = "multiple of pool width")]
    fn indivisible_history_rejected() {
        let mut cfg = BranchNetConfig::mini_1kb();
        cfg.slices[0].history = 37; // the paper's nominal, indivisible value
        cfg.validate();
    }
}
