//! The offline training pipeline (paper Section V-E).
//!
//! Three steps, exactly as the paper describes:
//!
//! 1. **Rank** — run the baseline predictor over the *validation*
//!    traces and select the most-mispredicting static branches.
//! 2. **Train** — fit one CNN per hard branch on the *training*
//!    traces (one thread per candidate; models are independent).
//! 3. **Select / assign** — keep the branches whose validation
//!    misprediction count actually improves, and for the practical
//!    Mini settings solve the per-branch model-size assignment under a
//!    total storage budget ("we try all possible assignments of top
//!    hard-to-predict branches to configurations" — here an exact
//!    knapsack over the menu).
//!
//! All reported numbers are then measured on the *test* traces by the
//! caller (e.g. via [`HybridPredictor`](crate::hybrid::HybridPredictor)).

use crate::config::BranchNetConfig;
use crate::dataset::extract;
use crate::model::BranchNetModel;
use crate::trainer::{evaluate_accuracy, train_model_resilient, TrainOptions};
use branchnet_tage::{TageScL, TageSclConfig};
use branchnet_trace::{BranchStats, Gauntlet, Trace, TraceSet};
use serde::{Deserialize, Serialize};

/// Pipeline knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineOptions {
    /// How many top-MPKI validation branches to consider (the paper
    /// uses 100; synthetic workloads have far fewer hot branches).
    pub candidates: usize,
    /// Cap on attached models (41 for iso-latency Mini-BranchNet).
    pub max_models: usize,
    /// Skip branches with fewer validation occurrences than this.
    pub min_occurrences: usize,
    /// Required validation-accuracy margin over the baseline before a
    /// model is considered an improvement. Guards against validation
    /// noise promoting useless models (the paper's much larger
    /// validation sets achieve the same implicitly).
    pub selection_margin: f64,
    /// Training hyperparameters.
    pub train: TrainOptions,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        Self {
            candidates: 12,
            max_models: 41,
            min_occurrences: 100,
            selection_margin: 0.02,
            train: TrainOptions::default(),
        }
    }
}

/// Validation outcome for one candidate branch/model pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidateResult {
    /// The static branch.
    pub pc: u64,
    /// Baseline accuracy on the validation traces.
    pub baseline_accuracy: f64,
    /// CNN accuracy on the validation traces.
    pub model_accuracy: f64,
    /// Dynamic occurrences in the validation traces.
    pub occurrences: f64,
    /// Estimated validation mispredictions avoided by attaching the
    /// model (can be negative; such models are dropped).
    pub mispredictions_avoided: f64,
}

/// Ranks static branches by misprediction count under `baseline_cfg`
/// over `traces` and returns per-branch stats for the top `k`.
#[must_use]
pub fn rank_hard_branches(
    baseline_cfg: &TageSclConfig,
    traces: &[Trace],
    k: usize,
) -> (Vec<u64>, BranchStats) {
    let mut gauntlet = Gauntlet::new();
    let lane = gauntlet.add_tracked(TageScL::new(baseline_cfg));
    for t in traces {
        gauntlet.run(t);
        // Each trace gets a cold predictor, like per-SimPoint
        // evaluation in the paper's methodology.
        gauntlet.flush();
    }
    let stats = gauntlet
        .finish()
        .swap_remove(lane)
        .branch_stats
        .expect("ranking lane collects per-branch stats");
    (stats.rank_by_mispredictions().top_pcs(k), stats)
}

/// Trains one model per candidate branch (in parallel threads) and
/// scores each on the validation traces.
///
/// Returns `(result, model, dataset_len)` tuples in candidate order;
/// branches with too few examples are skipped.
#[must_use]
pub fn train_candidates(
    config: &BranchNetConfig,
    traces: &TraceSet,
    candidates: &[(u64, f64, f64)], // (pc, baseline_accuracy, valid_occurrences)
    opts: &PipelineOptions,
) -> Vec<(CandidateResult, BranchNetModel)> {
    let window = config.window_len();
    let results: Vec<Option<(CandidateResult, BranchNetModel)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = candidates
            .iter()
            .map(|&(pc, baseline_accuracy, occurrences)| {
                let train_traces = &traces.train;
                let valid_traces = &traces.valid;
                let cfg = config.clone();
                // Deterministic per-candidate seeding: each branch's
                // training stream is a pure function of (base seed,
                // pc), so neither thread scheduling nor the number of
                // worker threads can perturb any result. The odd
                // multiplier (golden-ratio constant) decorrelates
                // nearby PCs.
                let mut topts = opts.train;
                topts.seed = opts.train.seed ^ pc.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let min_occ = opts.min_occurrences;
                let margin = opts.selection_margin;
                scope.spawn(move || {
                    let train_ds = extract(train_traces, pc, window, cfg.pc_bits);
                    if train_ds.len() < min_occ {
                        return None;
                    }
                    // Resilient training: a diverged run is retried
                    // with a reseeded init, and a candidate whose every
                    // attempt diverges is skipped — its branch simply
                    // stays on the runtime baseline (DESIGN.md §9).
                    let (mut model, _report) = train_model_resilient(&cfg, &train_ds, &topts)?;
                    let mut valid_ds = extract(valid_traces, pc, window, cfg.pc_bits);
                    valid_ds.subsample(topts.max_examples);
                    let model_accuracy = evaluate_accuracy(&mut model, &valid_ds);
                    let avoided = occurrences * (model_accuracy - baseline_accuracy - margin);
                    Some((
                        CandidateResult {
                            pc,
                            baseline_accuracy,
                            model_accuracy,
                            occurrences,
                            mispredictions_avoided: avoided,
                        },
                        model,
                    ))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("training thread panicked")).collect()
    });
    results.into_iter().flatten().collect()
}

/// The end-to-end Big-BranchNet-style pipeline: rank on validation,
/// train `config` per branch, keep improved models up to
/// `opts.max_models`, best first.
#[must_use]
pub fn offline_train(
    config: &BranchNetConfig,
    baseline_cfg: &TageSclConfig,
    traces: &TraceSet,
    opts: &PipelineOptions,
) -> Vec<(CandidateResult, BranchNetModel)> {
    let (pcs, stats) = rank_hard_branches(baseline_cfg, &traces.valid, opts.candidates);
    let candidates: Vec<(u64, f64, f64)> = pcs
        .iter()
        .filter_map(|pc| stats.get(*pc).map(|s| (*pc, s.accuracy(), s.predictions())))
        .collect();
    let mut trained = train_candidates(config, traces, &candidates, opts);
    trained.retain(|(r, _)| r.mispredictions_avoided > 0.0);
    trained.sort_by(|a, b| {
        b.0.mispredictions_avoided
            .partial_cmp(&a.0.mispredictions_avoided)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    trained.truncate(opts.max_models);
    trained
}

/// One branch's menu of trained models: `(bytes, avoided)` per config
/// choice (same order as the menu used to train them).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BudgetItem {
    /// The static branch.
    pub pc: u64,
    /// `(storage bytes, validation mispredictions avoided)` per menu
    /// entry.
    pub choices: Vec<(usize, f64)>,
}

/// Exact knapsack assignment of per-branch model sizes under a total
/// byte budget (the paper's "best combination of models"). Returns,
/// per item, `Some(choice index)` or `None` (branch gets no model).
///
/// Runs in `O(items × budget/granularity × choices)` with a 64-byte
/// granularity.
#[must_use]
pub fn assign_budget(items: &[BudgetItem], budget_bytes: usize) -> Vec<Option<usize>> {
    const GRAIN: usize = 64;
    let cap = budget_bytes / GRAIN;
    let n = items.len();
    // value[i][w]: best avoided-count using items[..i] within w grains;
    // choice[i][w]: the menu index item i picked on the optimal path.
    let mut value: Vec<Vec<f64>> = vec![vec![0.0; cap + 1]];
    let mut choice: Vec<Vec<Option<usize>>> = Vec::with_capacity(n);
    for item in items {
        let prev = value.last().expect("seeded").clone();
        let mut cur = prev.clone();
        let mut ch = vec![None; cap + 1];
        for (ci, &(bytes, avoided)) in item.choices.iter().enumerate() {
            if avoided <= 0.0 {
                continue;
            }
            let grains = bytes.div_ceil(GRAIN);
            for w in grains..=cap {
                let cand = prev[w - grains] + avoided;
                if cand > cur[w] + 1e-12 {
                    cur[w] = cand;
                    ch[w] = Some(ci);
                }
            }
        }
        value.push(cur);
        choice.push(ch);
    }
    let mut picks = vec![None; n];
    let mut w = cap;
    for i in (0..n).rev() {
        if let Some(ci) = choice[i][w] {
            picks[i] = Some(ci);
            w -= items[i].choices[ci].0.div_ceil(GRAIN);
        }
    }
    picks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(pc: u64, choices: &[(usize, f64)]) -> BudgetItem {
        BudgetItem { pc, choices: choices.to_vec() }
    }

    #[test]
    fn knapsack_prefers_high_value_per_byte() {
        // Two branches, budget fits only one large or two small.
        let items =
            vec![item(1, &[(2048, 100.0), (1024, 90.0)]), item(2, &[(2048, 100.0), (1024, 90.0)])];
        let picks = assign_budget(&items, 2048);
        // Two 1KB models (180) beat one 2KB model (100).
        assert_eq!(picks, vec![Some(1), Some(1)]);
    }

    #[test]
    fn knapsack_respects_budget() {
        let items =
            vec![item(1, &[(2048, 10.0)]), item(2, &[(2048, 9.0)]), item(3, &[(2048, 8.0)])];
        let picks = assign_budget(&items, 4096);
        let taken = picks.iter().filter(|p| p.is_some()).count();
        assert_eq!(taken, 2, "only two 2KB models fit in 4KB");
        assert_eq!(picks[0], Some(0));
        assert_eq!(picks[1], Some(0));
        assert_eq!(picks[2], None);
    }

    #[test]
    fn knapsack_skips_useless_models() {
        let items = vec![item(1, &[(256, -5.0), (128, 0.0)])];
        let picks = assign_budget(&items, 10_000);
        assert_eq!(picks, vec![None]);
    }

    #[test]
    fn knapsack_empty_budget_takes_nothing() {
        let items = vec![item(1, &[(256, 5.0)])];
        assert_eq!(assign_budget(&items, 0), vec![None]);
    }

    #[test]
    fn knapsack_picks_best_single_choice() {
        let items = vec![item(1, &[(2048, 50.0), (1024, 49.0), (512, 20.0)])];
        // 2KB fits: its 50 beats the 1KB's 49.
        assert_eq!(assign_budget(&items, 2048), vec![Some(0)]);
        // Only 1KB fits.
        assert_eq!(assign_budget(&items, 1024), vec![Some(1)]);
    }
}
