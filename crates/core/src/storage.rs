//! Inference-engine storage accounting (paper Table II).
//!
//! The Mini-BranchNet engine stores, per attached static branch:
//!
//! * **Convolution tables** — one `2^h`-entry table per channel holding
//!   the binarized convolution response of every possible hashed
//!   `K`-branch window: `Σ_i C_i · 2^h` bits.
//! * **Precise pooling buffers** — slices with prediction-aligned
//!   windows keep the last `P_i` binary convolution outputs (to slide
//!   the window) plus `H_i/P_i` q-bit window sums per channel:
//!   `Σ_i C_i · (P_i + q·H_i/P_i)` bits.
//! * **Sliding pooling buffers** — stream-aligned slices keep only
//!   `H_i/P_i` completed q-bit sums, one q-bit running accumulator per
//!   channel, and a shared `log2(P_i)` phase counter:
//!   `Σ_i (C_i · q·(H_i/P_i + 1) + ⌈log2 P_i⌉)` bits.
//! * **Fully-connected storage** — q-bit first-layer weights over all
//!   pooled features plus an integer threshold per hidden neuron
//!   (batch-norm fused, Optimization 4), and the final-layer lookup
//!   table indexed by the binarized hidden vector:
//!   `q·N·Σ_i C_i·H_i/P_i + 16·N + 2^N` bits.

use crate::config::BranchNetConfig;
use serde::{Deserialize, Serialize};

/// Bit-level storage breakdown of one attached model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StorageBreakdown {
    /// Convolution lookup tables.
    pub conv_tables_bits: u64,
    /// Precise pooling buffers.
    pub precise_pooling_bits: u64,
    /// Sliding pooling buffers.
    pub sliding_pooling_bits: u64,
    /// Fully-connected weights, thresholds, and final LUT.
    pub fully_connected_bits: u64,
}

impl StorageBreakdown {
    /// Total bits.
    #[must_use]
    pub fn total_bits(&self) -> u64 {
        self.conv_tables_bits
            + self.precise_pooling_bits
            + self.sliding_pooling_bits
            + self.fully_connected_bits
    }

    /// Total in kilobytes.
    #[must_use]
    pub fn total_kb(&self) -> f64 {
        self.total_bits() as f64 / 8.0 / 1024.0
    }
}

/// Computes the Table II storage breakdown for a (quantized) config.
///
/// Float configs (Big, Tarsa-Float) are costed as if stored at 32-bit
/// precision with arithmetic convolution state — they are software
/// models, and this is only used to demonstrate why they are
/// impractical.
#[must_use]
pub fn storage_breakdown(config: &BranchNetConfig) -> StorageBreakdown {
    let q = u64::from(config.fc_quant_bits.unwrap_or(32));
    let hidden = config.hidden[0] as u64;

    let conv_tables_bits = match config.conv_hash_bits {
        Some(h) => config.slices.iter().map(|s| (s.channels as u64) << h).sum(),
        // Arithmetic convolution: embedding table + filters at float32.
        None => {
            let emb = (config.vocab() * config.embedding_dim) as u64 * 32;
            let filt: u64 = config
                .slices
                .iter()
                .map(|s| (s.channels * config.embedding_dim * config.conv_width) as u64 * 32)
                .sum();
            emb + filt
        }
    };

    let mut precise = 0u64;
    let mut sliding = 0u64;
    for s in &config.slices {
        let windows = (s.history / s.pool_width) as u64;
        let c = s.channels as u64;
        if s.precise_pooling {
            precise += c * (s.pool_width as u64 + q * windows);
        } else {
            let phase = (usize::BITS - (s.pool_width - 1).leading_zeros()).max(1) as u64;
            sliding += c * q * (windows + 1) + phase;
        }
    }

    let fc1 = q * hidden * config.total_pooled() as u64;
    let thresholds = 16 * hidden;
    let lut = 1u64 << hidden.min(20);
    // Deeper hidden stacks (not used by Mini presets) are costed as
    // dense q-bit weights.
    let extra: u64 = config.hidden.windows(2).map(|w| q * (w[0] * w[1]) as u64).sum();

    StorageBreakdown {
        conv_tables_bits,
        precise_pooling_bits: precise,
        sliding_pooling_bits: sliding,
        fully_connected_bits: fc1 + thresholds + lut + extra,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mini_presets_land_near_their_nominal_budgets() {
        for (cfg, budget_bytes) in BranchNetConfig::mini_menu() {
            let kb = storage_breakdown(&cfg).total_kb();
            let nominal = budget_bytes as f64 / 1024.0;
            assert!(
                kb > nominal * 0.5 && kb < nominal * 1.5,
                "{} computes to {kb:.2} KB, nominal {nominal} KB",
                cfg.name
            );
        }
    }

    #[test]
    fn budgets_are_monotone_across_presets() {
        let sizes: Vec<u64> = BranchNetConfig::mini_menu()
            .iter()
            .map(|(c, _)| storage_breakdown(c).total_bits())
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] > w[1]), "{sizes:?}");
    }

    #[test]
    fn big_is_impractically_large() {
        let kb = storage_breakdown(&BranchNetConfig::big()).total_kb();
        assert!(kb > 100.0, "Big-BranchNet must dwarf hardware budgets, got {kb:.1} KB");
    }

    #[test]
    fn sliding_buffers_are_smaller_than_precise() {
        // Section V-D: sliding sum-pooling is what makes long histories
        // affordable. Compare one slice both ways.
        let mut precise_cfg = BranchNetConfig::mini_1kb();
        for s in &mut precise_cfg.slices {
            s.precise_pooling = true;
        }
        let mut sliding_cfg = BranchNetConfig::mini_1kb();
        for s in &mut sliding_cfg.slices {
            s.precise_pooling = false;
        }
        let p = storage_breakdown(&precise_cfg);
        let s = storage_breakdown(&sliding_cfg);
        assert!(s.sliding_pooling_bits < p.precise_pooling_bits);
        assert!(s.total_bits() < p.total_bits());
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let b = storage_breakdown(&BranchNetConfig::mini_2kb());
        assert_eq!(
            b.total_bits(),
            b.conv_tables_bits
                + b.precise_pooling_bits
                + b.sliding_pooling_bits
                + b.fully_connected_bits
        );
    }
}
