//! Minibatch training of BranchNet models.

use crate::config::BranchNetConfig;
use crate::dataset::BranchDataset;
use crate::model::BranchNetModel;
use branchnet_nn::loss::bce_with_logits;
use branchnet_nn::optim::{Adam, ParamVisitor};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainOptions {
    /// Passes over the dataset.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed (shuffling, sliding-pool randomization, init).
    pub seed: u64,
    /// Cap on training examples (subsampled with phase-preserving
    /// stride when exceeded).
    pub max_examples: usize,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self { epochs: 8, batch_size: 64, lr: 0.01, seed: 0xB5A9, max_examples: 3000 }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Final-epoch mean training loss.
    pub final_loss: f32,
    /// Training-set accuracy after the final epoch.
    pub train_accuracy: f64,
    /// Epochs actually run (early stop counts).
    pub epochs_run: usize,
}

/// Trains a fresh model of `config` on `dataset`.
///
/// Returns the trained model and a [`TrainReport`]. The dataset is
/// subsampled to `opts.max_examples` first (phase-preserving stride).
///
/// # Panics
///
/// Panics if the dataset is empty or its window length differs from
/// the config's `max_history`.
#[must_use]
pub fn train_model(
    config: &BranchNetConfig,
    dataset: &BranchDataset,
    opts: &TrainOptions,
) -> (BranchNetModel, TrainReport) {
    assert!(!dataset.is_empty(), "cannot train on an empty dataset");
    assert_eq!(
        dataset.max_history,
        config.window_len(),
        "dataset window length must match the model's window_len"
    );
    let mut ds = dataset.clone();
    ds.subsample(opts.max_examples);

    let mut model = BranchNetModel::new(config, opts.seed);
    // Progressive quantization for hashed (Mini) models: the first
    // half of training runs with the soft Tanh convolution activation,
    // the second half with the binarized (engine-exact) one. Training
    // directly against binarized outputs from a cold start optimizes
    // poorly; warm-up recovers the accuracy (standard QAT practice).
    let qat_switch = opts.epochs / 2;
    if config.is_hashed() {
        model.set_conv_binarize(qat_switch == 0);
    }
    let mut opt = Adam::new(opts.lr);
    let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0xDA7A);
    let mut order: Vec<usize> = (0..ds.len()).collect();
    let mut final_loss = f32::NAN;
    let mut epochs_run = 0;
    // Best inference-exact model seen so far, selected by binarized
    // eval-mode accuracy. Binarized fine-tuning is oscillatory (sign
    // flips are discrete events, so loss does not descend monotonically
    // and can diverge late), and train-mode loss can disagree with
    // eval-mode behavior while batch-norm running statistics settle;
    // snapshotting the best epoch under inference semantics makes the
    // returned model robust to where training happens to stop.
    let mut best: Option<(f64, f32, BranchNetModel)> = None;
    for epoch in 0..opts.epochs {
        if config.is_hashed() && epoch == qat_switch && qat_switch > 0 {
            model.set_conv_binarize(true);
            // Binarization is a discontinuity: the pooled features jump
            // from tanh-scaled values to ±1 sums, so fine-tuning at the
            // warm-up learning rate thrashes (sign flips dominate the
            // Adam updates and the warm-up fit never re-converges).
            // Fine-tune the binarized phase at a tenth of the rate.
            opt.set_lr(opts.lr * 0.1);
        }
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for chunk in order.chunks(opts.batch_size) {
            let windows: Vec<&[u32]> =
                chunk.iter().map(|&i| ds.examples[i].window.as_slice()).collect();
            let labels: Vec<f32> = chunk.iter().map(|&i| ds.examples[i].label).collect();
            let logits = model.forward(&windows, true, &mut rng);
            let (loss, grad) = bce_with_logits(&logits, &labels);
            model.backward(&grad);
            opt.step(&mut model);
            model.zero_grad();
            epoch_loss += f64::from(loss);
            batches += 1;
        }
        final_loss = (epoch_loss / batches.max(1) as f64) as f32;
        epochs_run = epoch + 1;
        // Score this epoch under inference semantics (binarized conv,
        // eval-mode batch norm) — the exact datapath callers will run.
        let warm = config.is_hashed() && epoch < qat_switch;
        if warm {
            model.set_conv_binarize(true);
        }
        let epoch_acc = evaluate_accuracy(&mut model, &ds);
        if warm {
            model.set_conv_binarize(false);
        }
        if best.as_ref().is_none_or(|(a, _, _)| epoch_acc > *a) {
            best = Some((epoch_acc, final_loss, model.clone()));
        }
        // Early stop on a converged fit — only once the binarized
        // (inference-exact) phase is active.
        if final_loss < 0.01 && epoch >= qat_switch {
            break;
        }
    }
    let (acc, best_loss, mut model) = best.unwrap_or_else(|| {
        let a = evaluate_accuracy(&mut model, &ds);
        (a, final_loss, model)
    });
    model.set_conv_binarize(true);
    (model, TrainReport { final_loss: best_loss, train_accuracy: acc, epochs_run })
}

/// Maximum reseeded retries [`train_model_resilient`] attempts after a
/// diverged run before giving up.
pub const MAX_TRAIN_RETRIES: usize = 2;

/// Whether a training outcome is numerically healthy: finite loss and
/// accuracy, and a sane logit on a probe example. A NaN anywhere here
/// means the optimizer diverged; a finite logit of absurd magnitude
/// (healthy models emit O(10)) means the weights blew up without quite
/// overflowing. The 1e9 bound matches the deserialization-time weight
/// validation in `QuantizedMini::from_parts`.
fn diverged(model: &mut BranchNetModel, report: &TrainReport, dataset: &BranchDataset) -> bool {
    if !report.final_loss.is_finite() || !report.train_accuracy.is_finite() {
        return true;
    }
    dataset.examples.first().is_some_and(|e| {
        let z = model.predict_logit(&e.window);
        !z.is_finite() || z.abs() > 1.0e9
    })
}

/// [`train_model`] with a divergence guard and bounded
/// retry-with-reseeded-init (the training half of the DESIGN.md §9
/// failure model).
///
/// Attempt 0 uses `opts.seed` unchanged, so a run that never diverges
/// is byte-identical to plain [`train_model`]. Each retry perturbs the
/// seed deterministically (`seed ^ (attempt · golden-ratio odd
/// constant)`), records itself in the process-global degradation
/// counters, and re-trains from a fresh init. Returns `None` when all
/// `1 + MAX_TRAIN_RETRIES` attempts diverge — callers should skip the
/// candidate, leaving its branch on the runtime baseline.
#[must_use]
pub fn train_model_resilient(
    config: &BranchNetConfig,
    dataset: &BranchDataset,
    opts: &TrainOptions,
) -> Option<(BranchNetModel, TrainReport)> {
    for attempt in 0..=MAX_TRAIN_RETRIES {
        let attempt_opts = TrainOptions {
            seed: if attempt == 0 {
                opts.seed
            } else {
                opts.seed ^ (attempt as u64).wrapping_mul(0xA076_1D64_78BD_642F)
            },
            ..*opts
        };
        if attempt > 0 {
            crate::degradation::record_training_retry();
        }
        let (mut model, report) = train_model(config, dataset, &attempt_opts);
        if !diverged(&mut model, &report, dataset) {
            return Some((model, report));
        }
    }
    None
}

/// Accuracy of `model` on every example of `dataset` (eval mode).
#[must_use]
pub fn evaluate_accuracy(model: &mut BranchNetModel, dataset: &BranchDataset) -> f64 {
    if dataset.is_empty() {
        return 1.0;
    }
    let mut rng = SmallRng::seed_from_u64(0);
    let mut correct = 0usize;
    for chunk in dataset.examples.chunks(256) {
        let windows: Vec<&[u32]> = chunk.iter().map(|e| e.window.as_slice()).collect();
        let logits = model.forward(&windows, false, &mut rng);
        for (z, e) in logits.data().iter().zip(chunk) {
            if (*z >= 0.0) == (e.label >= 0.5) {
                correct += 1;
            }
        }
    }
    correct as f64 / dataset.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SliceConfig;
    use crate::dataset::Example;

    fn tiny_config() -> BranchNetConfig {
        BranchNetConfig {
            name: "t".into(),
            slices: vec![SliceConfig {
                history: 12,
                channels: 3,
                pool_width: 12,
                precise_pooling: true,
            }],
            pc_bits: 4,
            conv_hash_bits: Some(5),
            embedding_dim: 0,
            conv_width: 1,
            hidden: vec![4],
            fc_quant_bits: Some(4),
            tanh_activations: true,
        }
    }

    /// Synthesizes the Fig. 3 structure: label = (count of entries
    /// with id A) > (count of entries with id B).
    fn counting_dataset(n: usize) -> BranchDataset {
        let a = 0b0101u32; // "branch A, taken"
        let b = 0b1001u32;
        let mut examples = Vec::new();
        for i in 0..n {
            let ca = i % 7;
            let cb = (i / 7) % 7;
            let mut window = vec![0u32; 12];
            for slot in window.iter_mut().take(ca) {
                *slot = a;
            }
            for slot in window.iter_mut().skip(7).take(cb.min(5)) {
                *slot = b;
            }
            let label = if ca > cb.min(5) { 1.0 } else { 0.0 };
            examples.push(Example { window, label });
        }
        BranchDataset { pc: 0x99, max_history: 12, examples }
    }

    #[test]
    fn learns_count_comparison() {
        let ds = counting_dataset(400);
        let (mut model, report) = train_model(
            &tiny_config(),
            &ds,
            &TrainOptions { epochs: 40, batch_size: 32, lr: 0.02, ..Default::default() },
        );
        assert!(report.train_accuracy > 0.93, "accuracy {}", report.train_accuracy);
        assert!(evaluate_accuracy(&mut model, &ds) > 0.93);
    }

    #[test]
    fn report_tracks_epochs() {
        let ds = counting_dataset(100);
        let opts = TrainOptions { epochs: 3, ..Default::default() };
        let (_, report) = train_model(&tiny_config(), &ds, &opts);
        assert!(report.epochs_run <= 3 && report.epochs_run >= 1);
        assert!(report.final_loss.is_finite());
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let ds = counting_dataset(100);
        let opts = TrainOptions { epochs: 2, ..Default::default() };
        let (mut a, ra) = train_model(&tiny_config(), &ds, &opts);
        let (mut b, rb) = train_model(&tiny_config(), &ds, &opts);
        assert_eq!(ra.final_loss, rb.final_loss);
        let w = &ds.examples[0].window;
        assert_eq!(a.predict_logit(w), b.predict_logit(w));
    }

    #[test]
    fn resilient_training_is_byte_identical_when_healthy() {
        // Attempt 0 must reuse the caller's seed unchanged, so on the
        // (overwhelmingly common) no-divergence path the resilient
        // wrapper produces bit-identical weights to plain train_model —
        // the property the fidelity gate's byte-identity check relies on.
        let ds = counting_dataset(100);
        let opts = TrainOptions { epochs: 2, ..Default::default() };
        let (mut plain, plain_report) = train_model(&tiny_config(), &ds, &opts);
        let (mut resilient, resilient_report) =
            train_model_resilient(&tiny_config(), &ds, &opts).expect("healthy run");
        assert_eq!(plain_report, resilient_report);
        let w = &ds.examples[0].window;
        assert_eq!(plain.predict_logit(w), resilient.predict_logit(w));
    }

    #[test]
    fn resilient_training_gives_up_after_bounded_retries() {
        // An absurd learning rate blows the weights up to non-finite
        // values on every attempt, so the guard must retry exactly
        // MAX_TRAIN_RETRIES times (counted globally) and then report
        // failure instead of returning poisoned weights.
        let ds = counting_dataset(60);
        let before = crate::degradation::snapshot().trainings_retried;
        let opts = TrainOptions { epochs: 1, lr: 1.0e30, ..Default::default() };
        assert!(train_model_resilient(&tiny_config(), &ds, &opts).is_none());
        let after = crate::degradation::snapshot().trainings_retried;
        assert!(after >= before + MAX_TRAIN_RETRIES as u64);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let ds = BranchDataset { pc: 0, max_history: 12, examples: vec![] };
        let _ = train_model(&tiny_config(), &ds, &TrainOptions::default());
    }
}
