//! The BranchNet CNN model (paper Fig. 5 / Section V).
//!
//! A [`BranchNetModel`] is built from a [`BranchNetConfig`] and covers
//! both variants:
//!
//! * **Big-BranchNet** — per slice: embedding → arithmetic `Conv1d` →
//!   batch-norm → ReLU → sum-pool; slice outputs concatenate into two
//!   fully-connected layers.
//! * **Mini-BranchNet (float)** — per slice: hashed convolution
//!   *table* (an embedding keyed by [`conv_hash`] of each K-window) →
//!   batch-norm → Tanh → sum-pool → batch-norm → Tanh; then one
//!   quantization-friendly hidden FC layer.
//!
//! Training-time sliding-pool randomization (Optimization 3) is
//! applied here: slices flagged non-precise drop `0..P-1` of the most
//! recent branches per example so the trained weights tolerate the
//! engine's nondeterministic window boundaries.

use crate::config::{BranchNetConfig, SliceConfig};
use crate::hashing::conv_hash;
use branchnet_nn::layers::{Activation, BatchNorm1d, Conv1d, Dense, Embedding, SumPool1d};
use branchnet_nn::optim::ParamVisitor;
use branchnet_nn::tensor::Tensor;
use rand::rngs::SmallRng;
use rand::Rng;

/// One feature-extraction slice.
#[derive(Debug, Clone)]
struct Slice {
    cfg: SliceConfig,
    /// Big: the (PC,dir)-vocabulary embedding. Mini: the hashed
    /// convolution table (vocab `2^h`, dim = channels).
    embedding: Embedding,
    /// Arithmetic convolution (Big only).
    conv: Option<Conv1d>,
    bn1: BatchNorm1d,
    /// Soft activation (warm-up phase of quantization-aware training).
    act1_soft: Activation,
    /// Binarized activation (QAT phase + inference for Mini models).
    act1_bin: Option<Activation>,
    pool: SumPool1d,
    /// Post-pool normalization + Tanh (Mini only, Optimization 4).
    bn2: Option<BatchNorm1d>,
    act2: Option<Activation>,
}

impl Slice {
    fn act1(&mut self, binarize: bool) -> &mut Activation {
        match (&mut self.act1_bin, binarize) {
            (Some(b), true) => b,
            _ => &mut self.act1_soft,
        }
    }
}

/// A trainable BranchNet model for one static branch. Cloning copies
/// the frozen weights, so one trained model can be evaluated from
/// several threads at once (each clone carries its own forward
/// scratch state).
#[derive(Debug, Clone)]
pub struct BranchNetModel {
    config: BranchNetConfig,
    slices: Vec<Slice>,
    hidden: Vec<(Dense, BatchNorm1d, Activation)>,
    out: Dense,
    /// Cached per-slice flatten shapes for backward.
    last_batch: usize,
    /// Whether hashed models binarize convolution outputs (true for
    /// inference and the QAT phase; the trainer disables it during
    /// warm-up so optimization has smooth gradients to start from).
    conv_binarize: bool,
    /// Which activation the last forward used (backward must match).
    last_binarize: bool,
}

impl BranchNetModel {
    /// Builds a model with weights seeded from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the config fails validation.
    #[must_use]
    pub fn new(config: &BranchNetConfig, seed: u64) -> Self {
        config.validate();
        let mut slices = Vec::with_capacity(config.slices.len());
        for (i, s) in config.slices.iter().enumerate() {
            let sseed = seed.wrapping_add(i as u64 * 0x9E37);
            let (embedding, conv) = match config.conv_hash_bits {
                None => (
                    Embedding::new(config.vocab(), config.embedding_dim, sseed),
                    Some(Conv1d::new(
                        config.embedding_dim,
                        s.channels,
                        config.conv_width,
                        sseed ^ 0x55,
                    )),
                ),
                Some(h) => (Embedding::new(1 << h, s.channels, sseed), None),
            };
            // Mini models train quantization-aware: the convolution
            // output is binarized in the forward pass exactly as the
            // inference engine will binarize it (straight-through
            // gradients keep it trainable); the soft sibling is used
            // for optimization warm-up.
            let act1_soft =
                if config.tanh_activations { Activation::tanh() } else { Activation::relu() };
            slices.push(Slice {
                cfg: *s,
                embedding,
                conv,
                bn1: BatchNorm1d::new(s.channels),
                act1_soft,
                act1_bin: config.is_hashed().then(Activation::binary_ste),
                pool: SumPool1d::new(s.pool_width),
                bn2: config.is_hashed().then(|| BatchNorm1d::new(s.channels)),
                act2: config.is_hashed().then(Activation::tanh),
            });
        }
        let mut hidden = Vec::new();
        let mut in_features = config.total_pooled();
        for (i, &n) in config.hidden.iter().enumerate() {
            let act = if config.tanh_activations { Activation::tanh } else { Activation::relu };
            hidden.push((
                Dense::new(in_features, n, seed.wrapping_add(0xF00 + i as u64)),
                BatchNorm1d::new(n),
                act(),
            ));
            in_features = n;
        }
        let out = Dense::new(in_features, 1, seed ^ 0xABCD);
        Self {
            config: config.clone(),
            slices,
            hidden,
            out,
            last_batch: 0,
            conv_binarize: true,
            last_binarize: true,
        }
    }

    /// Switches hashed models between binarized convolution outputs
    /// (inference semantics, the default) and the soft warm-up
    /// activation used early in quantization-aware training. No effect
    /// on non-hashed (Big) models.
    pub fn set_conv_binarize(&mut self, binarize: bool) {
        self.conv_binarize = binarize;
    }

    /// The architecture this model implements.
    #[must_use]
    pub fn config(&self) -> &BranchNetConfig {
        &self.config
    }

    /// Builds the integer input ids for slice `slice_idx` from a full
    /// `max_history` window (oldest → newest), dropping the
    /// `drop_newest` most recent entries (sliding-pool training
    /// randomization).
    fn slice_ids(&self, slice_idx: usize, window: &[u32], drop_newest: usize) -> Vec<u32> {
        let s = &self.config.slices[slice_idx];
        let h = s.history;
        let end = window.len() - drop_newest.min(window.len().saturating_sub(1));
        match self.config.conv_hash_bits {
            None => {
                // Last H entries before `end`, zero-padded at front.
                let mut ids = vec![0u32; h];
                let have = end.min(h);
                for (i, slot) in ids[h - have..].iter_mut().enumerate() {
                    *slot = window[end - have + i];
                }
                ids
            }
            Some(bits) => {
                // Hash of each K-window ending at the position.
                let k = self.config.conv_width;
                let mut ids = vec![0u32; h];
                let have = end.min(h);
                for i in 0..have {
                    let pos = end - have + i;
                    ids[h - have + i] = conv_hash(window, pos, k, bits);
                }
                ids
            }
        }
    }

    /// Forward pass over a batch of full-history windows. In training
    /// mode, batch-norm uses batch statistics and sliding slices apply
    /// random window dropping via `rng`.
    ///
    /// Returns logits shaped `[batch, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if windows are not all `max_history` long.
    #[must_use]
    pub fn forward(&mut self, windows: &[&[u32]], train: bool, rng: &mut SmallRng) -> Tensor {
        let batch = windows.len();
        assert!(batch > 0, "empty batch");
        let want = self.config.window_len();
        for w in windows {
            assert_eq!(w.len(), want, "all windows must be window_len long");
        }
        self.last_batch = batch;
        let mut features = Tensor::zeros(&[batch, self.config.total_pooled()]);
        let mut offset = 0usize;
        for si in 0..self.slices.len() {
            let s_cfg = self.slices[si].cfg;
            let h = s_cfg.history;
            // Assemble ids for the whole batch.
            let mut ids = Vec::with_capacity(batch * h);
            for w in windows {
                let drop = if train && !s_cfg.precise_pooling {
                    rng.gen_range(0..s_cfg.pool_width)
                } else {
                    0
                };
                ids.extend(self.slice_ids(si, w, drop));
            }
            let binarize = self.conv_binarize;
            self.last_binarize = binarize;
            let slice = &mut self.slices[si];
            let mut x = slice.embedding.forward(&ids, batch, h); // [B, dim, H]
            if let Some(conv) = slice.conv.as_mut() {
                x = conv.forward(&x); // [B, C, H]
            }
            let x = slice.bn1.forward(&x, train);
            let x = slice.act1(binarize).forward(&x);
            let mut x = slice.pool.forward(&x); // [B, C, H/P]
            if let Some(bn2) = slice.bn2.as_mut() {
                x = bn2.forward(&x, train);
            }
            if let Some(act2) = slice.act2.as_mut() {
                x = act2.forward(&x);
            }
            // Flatten into the feature tensor.
            let per = s_cfg.channels * s_cfg.pooled_len();
            for b in 0..batch {
                let src = &x.data()[b * per..(b + 1) * per];
                let dst_base = b * self.config.total_pooled() + offset;
                features.data_mut()[dst_base..dst_base + per].copy_from_slice(src);
            }
            offset += per;
        }
        let mut x = features;
        for (dense, bn, act) in &mut self.hidden {
            let a = dense.forward(&x);
            let a = bn.forward(&a, train);
            x = act.forward(&a);
        }
        self.out.forward(&x)
    }

    /// Backward pass from the loss gradient on the logits. Must follow
    /// a training-mode [`forward`](Self::forward) on the same batch.
    pub fn backward(&mut self, grad_logits: &Tensor) {
        let mut g = self.out.backward(grad_logits);
        for (dense, bn, act) in self.hidden.iter_mut().rev() {
            let ga = act.backward(&g);
            let ga = bn.backward(&ga);
            g = dense.backward(&ga);
        }
        // Split the feature gradient back into slices.
        let batch = self.last_batch;
        let total = self.config.total_pooled();
        let mut offset = 0usize;
        for slice in &mut self.slices {
            let per = slice.cfg.channels * slice.cfg.pooled_len();
            let mut gs = Tensor::zeros(&[batch, slice.cfg.channels, slice.cfg.pooled_len()]);
            for b in 0..batch {
                let src = &g.data()[b * total + offset..b * total + offset + per];
                gs.data_mut()[b * per..(b + 1) * per].copy_from_slice(src);
            }
            let mut gx = gs;
            if let Some(act2) = slice.act2.as_mut() {
                gx = act2.backward(&gx);
            }
            if let Some(bn2) = slice.bn2.as_mut() {
                gx = bn2.backward(&gx);
            }
            let gx = slice.pool.backward(&gx);
            let binarize = self.last_binarize;
            let gx = slice.act1(binarize).backward(&gx);
            let gx = slice.bn1.backward(&gx);
            let gx = match slice.conv.as_mut() {
                Some(conv) => conv.backward(&gx),
                None => gx,
            };
            slice.embedding.backward(&gx);
            offset += per;
        }
    }

    /// Inference on a single full-history window (eval mode, no
    /// sliding randomization). Returns the raw logit; `>= 0` predicts
    /// taken.
    #[must_use]
    pub fn predict_logit(&mut self, window: &[u32]) -> f32 {
        let mut rng = <SmallRng as rand::SeedableRng>::seed_from_u64(0);
        let logits = self.forward(&[window], false, &mut rng);
        logits.data()[0]
    }

    /// Convenience direction prediction.
    #[must_use]
    pub fn predict(&mut self, window: &[u32]) -> bool {
        self.predict_logit(window) >= 0.0
    }

    /// Total trainable parameters.
    #[must_use]
    pub fn param_count(&mut self) -> usize {
        self.num_params()
    }

    /// Read access for quantization: per-slice `(conv table, bn1,
    /// bn2)` and the FC stack. Only meaningful for hashed (Mini)
    /// models.
    #[must_use]
    pub(crate) fn mini_parts(&self) -> MiniParts<'_> {
        assert!(self.config.is_hashed(), "mini_parts requires a hashed model");
        MiniParts {
            slices: self
                .slices
                .iter()
                .map(|s| MiniSliceParts {
                    cfg: s.cfg,
                    table: s.embedding.table(),
                    bn1: &s.bn1,
                    bn2: s.bn2.as_ref().expect("mini slices carry bn2"),
                })
                .collect(),
            hidden: self.hidden.iter().map(|(d, bn, _)| (d, bn)).collect(),
            out: &self.out,
        }
    }
}

/// Borrowed views of a trained Mini model used by quantization.
pub(crate) struct MiniParts<'a> {
    pub slices: Vec<MiniSliceParts<'a>>,
    pub hidden: Vec<(&'a Dense, &'a BatchNorm1d)>,
    pub out: &'a Dense,
}

/// Borrowed views of one Mini slice.
pub(crate) struct MiniSliceParts<'a> {
    pub cfg: SliceConfig,
    pub table: &'a Tensor,
    pub bn1: &'a BatchNorm1d,
    pub bn2: &'a BatchNorm1d,
}

impl ParamVisitor for BranchNetModel {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        for s in &mut self.slices {
            s.embedding.visit_params(f);
            if let Some(conv) = s.conv.as_mut() {
                conv.visit_params(f);
            }
            s.bn1.visit_params(f);
            if let Some(bn2) = s.bn2.as_mut() {
                bn2.visit_params(f);
            }
        }
        for (dense, bn, _) in &mut self.hidden {
            dense.visit_params(f);
            bn.visit_params(f);
        }
        self.out.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_big_config() -> BranchNetConfig {
        BranchNetConfig {
            name: "tiny-big".into(),
            slices: vec![
                SliceConfig { history: 8, channels: 3, pool_width: 2, precise_pooling: true },
                SliceConfig { history: 16, channels: 2, pool_width: 4, precise_pooling: false },
            ],
            pc_bits: 4,
            conv_hash_bits: None,
            embedding_dim: 4,
            conv_width: 3,
            hidden: vec![6],
            fc_quant_bits: None,
            tanh_activations: false,
        }
    }

    fn tiny_mini_config() -> BranchNetConfig {
        BranchNetConfig {
            name: "tiny-mini".into(),
            slices: vec![
                SliceConfig { history: 8, channels: 3, pool_width: 2, precise_pooling: true },
                SliceConfig { history: 16, channels: 2, pool_width: 4, precise_pooling: false },
            ],
            pc_bits: 4,
            conv_hash_bits: Some(6),
            embedding_dim: 0,
            conv_width: 3,
            hidden: vec![5],
            fc_quant_bits: Some(4),
            tanh_activations: true,
        }
    }

    fn window(seed: u32) -> Vec<u32> {
        // window_len = max_history (16) + K-1 (2) = 18.
        (0..18).map(|i| (i * 7 + seed) % 32).collect()
    }

    #[test]
    fn forward_produces_one_logit_per_example() {
        for cfg in [tiny_big_config(), tiny_mini_config()] {
            let mut m = BranchNetModel::new(&cfg, 42);
            let w1 = window(1);
            let w2 = window(9);
            let mut rng = SmallRng::seed_from_u64(0);
            let out = m.forward(&[&w1, &w2], true, &mut rng);
            assert_eq!(out.shape(), &[2, 1]);
            assert!(out.data().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn eval_forward_is_deterministic() {
        let mut m = BranchNetModel::new(&tiny_mini_config(), 7);
        let w = window(3);
        assert_eq!(m.predict_logit(&w), m.predict_logit(&w));
    }

    #[test]
    fn backward_accumulates_gradients_everywhere() {
        for cfg in [tiny_big_config(), tiny_mini_config()] {
            let mut m = BranchNetModel::new(&cfg, 1);
            let w1 = window(1);
            let w2 = window(2);
            let mut rng = SmallRng::seed_from_u64(0);
            let logits = m.forward(&[&w1, &w2], true, &mut rng);
            let (_, grad) = branchnet_nn::loss::bce_with_logits(&logits, &[1.0, 0.0]);
            m.backward(&grad);
            let mut nonzero_params = 0;
            m.visit_params(&mut |_, g| {
                if g.max_abs() > 0.0 {
                    nonzero_params += 1;
                }
            });
            assert!(nonzero_params >= 6, "{}: only {nonzero_params} grads", cfg.name);
        }
    }

    #[test]
    fn model_can_fit_a_simple_counting_rule() {
        // Label = 1 iff the window contains more odd entries (taken
        // branches) than even in the last 8 — exactly the counting
        // structure BranchNet exists for.
        let cfg = tiny_mini_config();
        let mut m = BranchNetModel::new(&cfg, 3);
        let mut opt = branchnet_nn::optim::Adam::new(0.02);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut data = Vec::new();
        for i in 0..200u32 {
            let mut w: Vec<u32> = (0..18).map(|j| ((i * 31 + j * 7) % 16) * 2).collect();
            let taken_cnt = (i % 9) as usize;
            for slot in w.iter_mut().take(8).skip(8 - taken_cnt.min(8)) {
                *slot |= 1;
            }
            // Shuffle the tail a bit so positions vary.
            let label = if taken_cnt > 4 { 1.0f32 } else { 0.0 };
            data.push((w, label));
        }
        for _ in 0..60 {
            for chunk in data.chunks(32) {
                let windows: Vec<&[u32]> = chunk.iter().map(|(w, _)| w.as_slice()).collect();
                let labels: Vec<f32> = chunk.iter().map(|(_, l)| *l).collect();
                let logits = m.forward(&windows, true, &mut rng);
                let (_, grad) = branchnet_nn::loss::bce_with_logits(&logits, &labels);
                m.backward(&grad);
                opt.step(&mut m);
                m.zero_grad();
            }
        }
        let correct = data.iter().filter(|(w, l)| m.predict(w) == (*l >= 0.5)).count();
        let acc = correct as f64 / data.len() as f64;
        assert!(acc > 0.9, "counting-rule accuracy only {acc}");
    }

    #[test]
    fn param_count_is_positive_and_config_dependent() {
        let mut small = BranchNetModel::new(&tiny_mini_config(), 0);
        let mut big = BranchNetModel::new(&tiny_big_config(), 0);
        assert!(small.param_count() > 0);
        assert!(big.param_count() > small.param_count());
    }

    #[test]
    #[should_panic(expected = "window_len")]
    fn wrong_window_length_rejected() {
        let mut m = BranchNetModel::new(&tiny_mini_config(), 0);
        let short = vec![0u32; 3];
        let _ = m.predict_logit(&short);
    }
}
