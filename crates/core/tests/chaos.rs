//! Chaos suite for the model-pack load/attach/predict pipeline: any
//! corruption of a serialized pack must end in a typed error (branch
//! stays on the TAGE-SC-L lane, rejection counted) or a hybrid that
//! still predicts without panicking — never a crash. This is the
//! e2e half of DESIGN.md §9, driven by the deterministic
//! [`FaultPlan`] corruption recipes.

use branchnet_core::config::{BranchNetConfig, SliceConfig};
use branchnet_core::dataset::{BranchDataset, Example};
use branchnet_core::hybrid::HybridPredictor;
use branchnet_core::persist::{read_model, write_model, ReadModelError};
use branchnet_core::quantize::QuantizedMini;
use branchnet_core::trainer::{train_model, train_model_resilient, TrainOptions};
use branchnet_tage::{TageScL, TageSclConfig};
use branchnet_trace::{
    run_one as evaluate, BranchRecord, CorruptingReader, Fault, FaultPlan, Trace,
};
use proptest::prelude::*;

/// The branch PC the chaos packs target.
const PACK_PC: u64 = 0x90;

/// A small trained + quantized model (the payload every corruption
/// test mutilates).
fn trained() -> QuantizedMini {
    let cfg = BranchNetConfig {
        name: "chaos".into(),
        slices: vec![
            SliceConfig { history: 8, channels: 2, pool_width: 4, precise_pooling: true },
            SliceConfig { history: 16, channels: 2, pool_width: 8, precise_pooling: false },
        ],
        pc_bits: 5,
        conv_hash_bits: Some(6),
        embedding_dim: 0,
        conv_width: 3,
        hidden: vec![4],
        fc_quant_bits: Some(4),
        tanh_activations: true,
    };
    let examples = (0..60u32)
        .map(|i| Example {
            window: (0..cfg.window_len() as u32).map(|j| (i * 11 + j * 3) % 64).collect(),
            label: f32::from(u8::from(i % 2 == 0)),
        })
        .collect();
    let ds = BranchDataset { pc: PACK_PC, max_history: cfg.window_len(), examples };
    let (m, _) = train_model(&cfg, &ds, &TrainOptions { epochs: 2, ..Default::default() });
    QuantizedMini::from_model(&m)
}

fn pack_bytes() -> Vec<u8> {
    let mut buf = Vec::new();
    write_model(&mut buf, PACK_PC, &trained()).unwrap();
    buf
}

/// A short deterministic trace that visits the pack's branch.
fn chaos_trace() -> Trace {
    let mut t = Trace::new();
    let mut x = 1u64;
    for i in 0..2_000u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        t.push(BranchRecord::conditional(0x10 + (i % 5) * 8, x >> 60 > 7));
        t.push(BranchRecord::conditional(PACK_PC, x >> 33 & 1 == 1));
    }
    t
}

proptest! {
    /// Arbitrary bytes must never panic the model reader.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = read_model(bytes.as_slice());
    }

    /// Arbitrary bytes behind a valid header reach the config/table
    /// decoders; they too must fail (or succeed) cleanly.
    #[test]
    fn arbitrary_bytes_after_valid_header_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut framed = b"BNMD\x01".to_vec();
        framed.extend_from_slice(&bytes);
        let _ = read_model(framed.as_slice());
    }

    /// Any seeded multi-fault corruption of a real pack either decodes
    /// to a model whose prediction path runs, or errors with a
    /// formattable message.
    #[test]
    fn corrupted_pack_decodes_or_degrades(seed in any::<u64>()) {
        let buf = pack_bytes();
        let plan = FaultPlan::generate(seed, buf.len() as u64);
        match read_model(plan.corrupt(&buf).as_slice()) {
            Ok((_pc, model)) => {
                let window: Vec<u32> =
                    (0..model.config().window_len() as u32).map(|j| j % 64).collect();
                let _ = model.predict(&window, branchnet_core::quantize::QuantMode::Full);
            }
            Err(e) => prop_assert!(!e.to_string().is_empty(), "classes {:?}", plan.classes()),
        }
    }
}

/// Every proper prefix of a pack is a clean error (torn OS load).
#[test]
fn pack_truncation_at_every_byte_is_a_clean_error() {
    let buf = pack_bytes();
    for cut in 0..buf.len() {
        assert!(read_model(&buf[..cut]).is_err(), "cut at {cut} must not parse");
    }
    assert!(read_model(buf.as_slice()).is_ok(), "the full pack must still parse");
}

/// The end-to-end OS-load contract, per fault class: a corrupted pack
/// either attaches (and the hybrid predicts through it without
/// panicking) or is rejected — and on rejection the hybrid is
/// bit-identical to the pure TAGE-SC-L lane, with the rejection
/// counted in both the per-instance stats and the global counters.
#[test]
fn every_fault_class_leaves_the_hybrid_sound() {
    let buf = pack_bytes();
    let trace = chaos_trace();
    let baseline_cfg = TageSclConfig::tage_sc_l_64kb();
    let pure_tage = evaluate(&mut TageScL::new(&baseline_cfg), &trace);

    let before = branchnet_core::degradation::snapshot().packs_rejected;
    let mut rejected = 0u64;
    for seed in 0..10u64 {
        for plan in FaultPlan::one_of_each(seed, buf.len() as u64) {
            let mut hybrid = HybridPredictor::new(&baseline_cfg);
            match hybrid.attach_pack_bytes(&plan.corrupt(&buf)) {
                Ok(pc) => {
                    // The corruption happened to keep the pack valid:
                    // the model must actually predict, not defer a
                    // crash to the hot path.
                    assert_eq!(hybrid.attached_count(), 1);
                    let stats = evaluate(&mut hybrid, &trace);
                    assert!(stats.predictions() > 0.0, "seed {seed} pc {pc:#x}");
                }
                Err(e) => {
                    rejected += 1;
                    assert!(!e.to_string().is_empty());
                    assert_eq!(
                        hybrid.attached_count(),
                        0,
                        "a rejected pack must not leave a model behind (seed {seed}, {:?})",
                        plan.classes()
                    );
                    assert_eq!(hybrid.stats().packs_rejected, 1);
                    let stats = evaluate(&mut hybrid, &trace);
                    assert_eq!(
                        stats.mispredictions(),
                        pure_tage.mispredictions(),
                        "degraded hybrid must ride the pure TAGE lane (seed {seed}, {:?})",
                        plan.classes()
                    );
                }
            }
        }
    }
    assert!(rejected > 0, "some corruption must actually reject");
    let after = branchnet_core::degradation::snapshot().packs_rejected;
    assert!(
        after - before >= rejected,
        "global counter must cover the {rejected} local rejections ({before} -> {after})"
    );
}

/// A degraded hybrid (pack rejected, riding the pure TAGE lane) is
/// bit-identical no matter which runtime baselines share its
/// gauntlet: an empty gauntlet, any single lineup lane, or the whole
/// lineup at once. Running those comparison lanes must also leave the
/// global degradation counters untouched — baselines have no business
/// near the pack pipeline.
#[test]
fn degraded_lane_is_identical_under_any_comparison_lineup() {
    use branchnet_tage::baseline_lineup;
    use branchnet_trace::Gauntlet;

    let buf = pack_bytes();
    let trace = chaos_trace();
    let baseline_cfg = TageSclConfig::tage_sc_l_64kb();
    let pure_tage = evaluate(&mut TageScL::new(&baseline_cfg), &trace);

    // A truncated pack always rejects (see the truncation sweep).
    let torn = &buf[..buf.len() - 1];
    let degraded = || {
        let mut hybrid = HybridPredictor::new(&baseline_cfg);
        assert!(hybrid.attach_pack_bytes(torn).is_err(), "torn pack must reject");
        assert_eq!(hybrid.stats().packs_rejected, 1);
        hybrid
    };

    // Companion rosters: nobody, each lineup baseline alone, everyone.
    let mut rosters: Vec<Vec<&str>> = vec![Vec::new()];
    rosters.extend(baseline_lineup().iter().map(|e| vec![e.name]));
    rosters.push(baseline_lineup().iter().map(|e| e.name).collect());

    let counters_before = branchnet_core::degradation::snapshot();
    for roster in &rosters {
        let mut gauntlet = Gauntlet::new();
        let lane = gauntlet.add(degraded());
        for name in roster {
            let entry = branchnet_tage::lineup_entry(name).expect("lineup name");
            gauntlet.add_boxed((entry.build)());
        }
        gauntlet.run(&trace);
        assert_eq!(
            gauntlet.stats(lane).mispredictions(),
            pure_tage.mispredictions(),
            "degraded lane drifted with companions {roster:?}"
        );
        assert_eq!(
            gauntlet.stats(lane).predictions(),
            pure_tage.predictions(),
            "degraded lane saw a different trace with companions {roster:?}"
        );
        let results = gauntlet.finish();
        assert_eq!(results[lane].stats, pure_tage, "lane result drifted {roster:?}");
    }
    // Global counter: one rejection per degraded hybrid, at least.
    // (Exact equality would race with sibling chaos tests on other
    // threads of this binary, which also reject packs.)
    let counters_after = branchnet_core::degradation::snapshot();
    assert!(
        counters_after.packs_rejected - counters_before.packs_rejected >= rosters.len() as u64,
        "every degraded hybrid's rejection must reach the global counter"
    );
}

/// NaN and out-of-range weight injections anywhere in the float
/// tables are caught by pack validation, not served to the datapath.
#[test]
fn injected_nan_and_huge_weights_are_rejected_by_validation() {
    let buf = pack_bytes();
    for label in ["nan", "huge"] {
        let mut weight_rejections = 0u32;
        for offset in 0..buf.len() as u64 {
            let fault = if label == "nan" {
                Fault::NanWeight { offset }
            } else {
                Fault::HugeWeight { offset }
            };
            let corrupted = FaultPlan::single(fault).corrupt(&buf);
            match read_model(corrupted.as_slice()) {
                // An overwrite outside the float tables may still
                // decode (e.g. it hit the pc field) — fine, as long
                // as nothing non-finite survives validation.
                Ok(_) => {}
                Err(ReadModelError::Corrupt(msg)) => {
                    if msg == "non-finite or out-of-range weight" {
                        weight_rejections += 1;
                    }
                }
                Err(_) => {}
            }
        }
        assert!(
            weight_rejections > 0,
            "{label}: no offset tripped the weight validator — is it wired in?"
        );
    }
}

/// Streaming a corrupted pack through [`CorruptingReader`] (the
/// faulted-file view) behaves exactly like decoding the corrupted
/// buffer.
#[test]
fn corrupting_reader_matches_buffer_decode_for_packs() {
    let buf = pack_bytes();
    for seed in 0..16u64 {
        let plan = FaultPlan::generate(seed, buf.len() as u64);
        let direct = read_model(plan.corrupt(&buf).as_slice());
        let streamed = read_model(CorruptingReader::new(buf.as_slice(), plan.clone()));
        match (direct, streamed) {
            (Ok((pa, ma)), Ok((pb, mb))) => {
                assert_eq!(pa, pb, "seed {seed}");
                assert_eq!(ma.config(), mb.config(), "seed {seed}");
            }
            (Err(a), Err(b)) => assert_eq!(format!("{a}"), format!("{b}"), "seed {seed}"),
            (a, b) => panic!("reader/buffer disagree for seed {seed}: {a:?} vs {b:?}"),
        }
    }
}

/// A training run whose every attempt diverges gives up with `None`
/// after the bounded reseeded retries, and the retries are visible in
/// the global degradation counters.
#[test]
fn exhausted_training_retries_degrade_to_none() {
    let cfg = BranchNetConfig {
        name: "chaos-diverge".into(),
        slices: vec![SliceConfig { history: 8, channels: 2, pool_width: 4, precise_pooling: true }],
        pc_bits: 4,
        conv_hash_bits: Some(5),
        embedding_dim: 0,
        conv_width: 3,
        hidden: vec![4],
        fc_quant_bits: Some(4),
        tanh_activations: true,
    };
    let examples = (0..40u32)
        .map(|i| Example {
            window: (0..cfg.window_len() as u32).map(|j| (i * 7 + j) % 32).collect(),
            label: f32::from(u8::from(i % 2 == 0)),
        })
        .collect();
    let ds = BranchDataset { pc: 1, max_history: cfg.window_len(), examples };
    let before = branchnet_core::degradation::snapshot().trainings_retried;
    let result = train_model_resilient(
        &cfg,
        &ds,
        &TrainOptions { epochs: 2, lr: 1.0e30, ..Default::default() },
    );
    assert!(result.is_none(), "an absurd learning rate must exhaust every retry");
    let after = branchnet_core::degradation::snapshot().trainings_retried;
    assert!(after > before, "retries must be counted ({before} -> {after})");
}

/// The error type's user-facing surface is stable: these strings are
/// what operators grep for in degraded-run logs.
#[test]
fn read_model_error_display_and_source_are_stable() {
    use std::error::Error as _;

    let io = ReadModelError::Io(std::io::Error::other("sector gone"));
    assert_eq!(io.to_string(), "i/o error reading model: sector gone");
    assert!(io.source().is_some(), "Io must expose its cause");

    let magic = ReadModelError::BadMagic;
    assert_eq!(magic.to_string(), "not a BranchNet model file");
    assert!(magic.source().is_none());

    let version = ReadModelError::BadVersion(3);
    assert_eq!(version.to_string(), "unsupported model version 3");
    assert!(version.source().is_none());

    let corrupt = ReadModelError::Corrupt("sign table size mismatch");
    assert_eq!(corrupt.to_string(), "corrupt model file: sign table size mismatch");
    assert!(corrupt.source().is_none());
}
