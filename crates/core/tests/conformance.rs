//! Conformance-suite instantiations for the CNN hybrid — the
//! top of the prediction stack must honor the same contracts as the
//! simplest baseline, both bare and with an attached model pack
//! (attached packs are offline configuration and must survive
//! `flush`, like a deployed BranchNet's frozen weights).

use std::sync::OnceLock;

use branchnet_core::config::{BranchNetConfig, SliceConfig};
use branchnet_core::dataset::{BranchDataset, Example};
use branchnet_core::hybrid::HybridPredictor;
use branchnet_core::persist::write_model;
use branchnet_core::quantize::QuantizedMini;
use branchnet_core::trainer::{train_model, TrainOptions};
use branchnet_tage::TageSclConfig;
use branchnet_trace::predictor_conformance;

/// A small trained pack for the conformance PC range, built once.
fn pack_bytes() -> &'static [u8] {
    static PACK: OnceLock<Vec<u8>> = OnceLock::new();
    PACK.get_or_init(|| {
        let cfg = BranchNetConfig {
            name: "conformance".into(),
            slices: vec![SliceConfig {
                history: 8,
                channels: 2,
                pool_width: 4,
                precise_pooling: true,
            }],
            pc_bits: 5,
            conv_hash_bits: Some(6),
            embedding_dim: 0,
            conv_width: 3,
            hidden: vec![4],
            fc_quant_bits: Some(4),
            tanh_activations: true,
        };
        let examples = (0..40u32)
            .map(|i| Example {
                window: (0..cfg.window_len() as u32).map(|j| (i * 7 + j) % 64).collect(),
                label: f32::from(u8::from(i % 2 == 0)),
            })
            .collect();
        // 0x4020 is one of the conditional PCs `mixed_trace` emits.
        let ds = BranchDataset { pc: 0x4020, max_history: cfg.window_len(), examples };
        let (model, _) = train_model(&cfg, &ds, &TrainOptions { epochs: 2, ..Default::default() });
        let mut buf = Vec::new();
        write_model(&mut buf, ds.pc, &QuantizedMini::from_model(&model)).unwrap();
        buf
    })
}

predictor_conformance!(hybrid_bare, 64 * 1024 * 8, || {
    Box::new(HybridPredictor::new(&TageSclConfig::tage_sc_l_64kb()))
});

predictor_conformance!(hybrid_with_pack, 2 * 64 * 1024 * 8, || {
    let mut hybrid = HybridPredictor::new(&TageSclConfig::tage_sc_l_64kb());
    hybrid.attach_pack_bytes(pack_bytes()).expect("the conformance pack is valid");
    Box::new(hybrid)
});
