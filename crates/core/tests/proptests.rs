//! Property-based tests for the BranchNet core: engine state machine,
//! storage monotonicity, and dataset extraction invariants.

use branchnet_core::config::{BranchNetConfig, SliceConfig};
use branchnet_core::dataset::extract;
use branchnet_core::engine::InferenceEngine;
use branchnet_core::quantize::QuantizedMini;
use branchnet_core::storage::storage_breakdown;
use branchnet_core::trainer::{train_model, TrainOptions};
use branchnet_trace::{BranchRecord, Trace};
use proptest::prelude::*;

fn tiny_config(precise2: bool) -> BranchNetConfig {
    BranchNetConfig {
        name: "prop".into(),
        slices: vec![
            SliceConfig { history: 8, channels: 2, pool_width: 4, precise_pooling: true },
            SliceConfig { history: 16, channels: 2, pool_width: 8, precise_pooling: precise2 },
        ],
        pc_bits: 5,
        conv_hash_bits: Some(5),
        embedding_dim: 0,
        conv_width: 3,
        hidden: vec![4],
        fc_quant_bits: Some(4),
        tanh_activations: true,
    }
}

fn quick_quant(precise2: bool) -> QuantizedMini {
    let mut examples = Vec::new();
    let cfg = tiny_config(precise2);
    for i in 0..80u32 {
        let window: Vec<u32> =
            (0..cfg.window_len() as u32).map(|j| (i * 13 + j * 5) % 64).collect();
        examples.push(branchnet_core::dataset::Example {
            window,
            label: f32::from(u8::from(i % 3 == 0)),
        });
    }
    let ds =
        branchnet_core::dataset::BranchDataset { pc: 1, max_history: cfg.window_len(), examples };
    let (model, _) =
        train_model(&cfg, &ds, &TrainOptions { epochs: 2, max_examples: 80, ..Default::default() });
    QuantizedMini::from_model(&model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Checkpoint + wrong-path updates + restore + correct-path replay
    /// is indistinguishable from a straight run, for any stream and
    /// any split point (the Section V-C recovery invariant).
    #[test]
    fn engine_recovery_equals_straight_run(
        stream in prop::collection::vec(0u32..64, 4..120),
        split_frac in 0.1f64..0.9,
        wrong in prop::collection::vec(0u32..64, 1..30),
        precise2 in any::<bool>(),
    ) {
        let quant = quick_quant(precise2);
        let split = ((stream.len() as f64) * split_frac) as usize;

        let mut straight = InferenceEngine::new(quant.clone()).unwrap();
        for &e in &stream {
            straight.update(e);
        }

        let mut flushed = InferenceEngine::new(quant).unwrap();
        for &e in &stream[..split] {
            flushed.update(e);
        }
        let ckpt = flushed.checkpoint();
        for &e in &wrong {
            flushed.update(e);
        }
        flushed.restore(&ckpt);
        for &e in &stream[split..] {
            flushed.update(e);
        }
        prop_assert_eq!(straight.checkpoint(), flushed.checkpoint());
        prop_assert_eq!(straight.predict(), flushed.predict());
    }

    /// Generalizes the recovery invariant to *multiple* flush cycles:
    /// any number of checkpoint → wrong-path → restore episodes at
    /// randomized points, each with its own wrong-path burst, must
    /// leave the engine indistinguishable from a straight run — for
    /// all-precise and mixed precise/sliding slice configs alike.
    /// (Real pipelines flush repeatedly per trace, so single-flush
    /// coverage is not enough; a stale partial-sum or phase counter
    /// that survives one restore can compound across several.)
    #[test]
    fn engine_multi_flush_recovery_equals_straight_run(
        stream in prop::collection::vec(0u32..64, 8..140),
        flushes in prop::collection::vec(
            (0.05f64..0.95, prop::collection::vec(0u32..64, 1..20)),
            1..4,
        ),
        precise2 in any::<bool>(),
    ) {
        let quant = quick_quant(precise2);

        let mut straight = InferenceEngine::new(quant.clone()).unwrap();
        for &e in &stream {
            straight.update(e);
        }

        // Flush points, in stream order (duplicates model two flushes
        // at the same retirement point).
        let mut splits: Vec<usize> =
            flushes.iter().map(|(f, _)| ((stream.len() as f64) * f) as usize).collect();
        splits.sort_unstable();

        let mut flushed = InferenceEngine::new(quant).unwrap();
        let mut pos = 0usize;
        for ((_, wrong), &split) in flushes.iter().zip(&splits) {
            for &e in &stream[pos..split] {
                flushed.update(e);
            }
            pos = split;
            let ckpt = flushed.checkpoint();
            for &e in wrong {
                flushed.update(e); // wrong path
            }
            flushed.restore(&ckpt);
        }
        for &e in &stream[pos..] {
            flushed.update(e);
        }
        prop_assert_eq!(straight.checkpoint(), flushed.checkpoint());
        prop_assert_eq!(straight.predict(), flushed.predict());
    }

    /// Engine prediction is a pure function of state: repeated calls
    /// agree, and reset really clears everything.
    #[test]
    fn engine_reset_restores_cold_state(stream in prop::collection::vec(0u32..64, 1..100)) {
        let quant = quick_quant(false);
        let cold = InferenceEngine::new(quant.clone()).unwrap();
        let cold_ckpt = cold.checkpoint();
        let mut e = InferenceEngine::new(quant).unwrap();
        for &x in &stream {
            e.update(x);
        }
        e.reset();
        prop_assert_eq!(e.checkpoint(), cold_ckpt);
    }

    /// Storage grows monotonically with channel count and hash width.
    #[test]
    fn storage_monotone_in_capacity(extra_channels in 0usize..6, extra_hash in 0u32..4) {
        let base = tiny_config(false);
        let mut bigger = base.clone();
        for s in &mut bigger.slices {
            s.channels += extra_channels;
        }
        bigger.conv_hash_bits = base.conv_hash_bits.map(|h| h + extra_hash);
        let a = storage_breakdown(&base).total_bits();
        let b = storage_breakdown(&bigger).total_bits();
        prop_assert!(b >= a);
        if extra_channels > 0 || extra_hash > 0 {
            prop_assert!(b > a);
        }
    }

    /// Dataset extraction: exactly one example per dynamic occurrence,
    /// labels equal outcomes, and windows never contain the target
    /// occurrence itself.
    #[test]
    fn extraction_counts_occurrences(
        outcomes in prop::collection::vec(any::<bool>(), 1..100),
        others in prop::collection::vec((1u64..30, any::<bool>()), 0..100),
    ) {
        let target = 0x999u64;
        let mut trace = Trace::new();
        let mut oi = others.iter();
        for &t in &outcomes {
            for _ in 0..2 {
                if let Some(&(pc, dir)) = oi.next() {
                    trace.push(BranchRecord::conditional(pc << 3, dir));
                }
            }
            trace.push(BranchRecord::conditional(target, t));
        }
        let ds = extract(&[trace], target, 16, 8);
        prop_assert_eq!(ds.len(), outcomes.len());
        for (e, &t) in ds.examples.iter().zip(&outcomes) {
            prop_assert_eq!(e.label >= 0.5, t);
            prop_assert_eq!(e.window.len(), 16);
        }
    }
}
