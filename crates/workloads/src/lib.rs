//! Synthetic workload generators standing in for the paper's SPEC2017
//! Integer Speed traces.
//!
//! The BranchNet paper's claims are about *classes* of branch
//! behaviour, not about SPEC binaries per se:
//!
//! * branches whose direction correlates with the **occurrence counts**
//!   of other branches buried deep in a **noisy** global history
//!   (leela, mcf, xz, deepsjeng — the big BranchNet winners),
//! * **data-dependent** branches with no history signal at all
//!   (omnetpp — BranchNet cannot help),
//! * mispredictions **diffused** over many static branches (gcc —
//!   per-branch models do not pay off),
//! * and mostly-predictable codes (x264, exchange2, perlbench,
//!   xalancbmk — little opportunity).
//!
//! Each generator in [`spec`] is a small branching "program" with a
//! [`ProgramInput`] (the program's input: a seed plus behavioural
//! knobs). Different inputs exercise different control-flow
//! distributions, which is exactly what the paper's offline-training
//! methodology requires: models are trained on some inputs and
//! evaluated on *unseen* ones (Table III). The [`motivating`] module
//! reproduces the two-loop microbenchmark of Fig. 3/4 exactly.
//!
//! # Example
//!
//! ```
//! use branchnet_workloads::spec::{Benchmark, SpecSuite};
//!
//! let leela = SpecSuite::benchmark(Benchmark::Leela);
//! let traces = leela.trace_set(20_000);
//! assert_eq!(traces.train.len(), 3);
//! assert_eq!(traces.valid.len(), 2);
//! assert_eq!(traces.test.len(), 3);
//! ```

pub mod motivating;
pub mod program;
pub mod spec;

pub use motivating::{MotivatingConfig, MotivatingWorkload};
pub use program::{ProgramInput, TraceBuilder};
pub use spec::{Benchmark, SpecSuite, SpecWorkload};
