//! The paper's Fig. 3 motivating microbenchmark.
//!
//! ```c
//! int x = 0;
//! for (int i = 0; i < N; ++i) {        // Branch L (loop)
//!     if (random_condition(alpha)) {   // Branch A
//!     } else {
//!         x += 1;                      // x counts A's not-taken runs
//!     }
//!     uncorrelated_function();         // ~20 noisy branches
//! }
//! for (int j = 0; j < x; ++j) {        // Branch B: exits when j == x
//!     uncorrelated_function();
//! }
//! ```
//!
//! Branch B is taken while the loop continues and **not taken at
//! exit** (we emit it as "taken = continue"), so its direction is a
//! pure function of two occurrence counts visible in the global
//! history: not-taken instances of A (= x) and taken instances of B
//! since the loop began (= j). Fig. 4 of the paper trains CNNs on
//! three input sets of this program and tests generalization to unseen
//! α / N ranges; [`MotivatingConfig::fig4_training_sets`] reproduces
//! those sets.

use crate::program::{ProgramInput, TraceBuilder};
use branchnet_trace::Trace;
use serde::{Deserialize, Serialize};

/// PC of the first loop's backward branch.
pub const PC_LOOP: u64 = 0x0120;
/// PC of branch A (the probabilistic increment guard).
pub const PC_A: u64 = 0x0100;
/// PC of branch B (the hard-to-predict second-loop exit).
pub const PC_B: u64 = 0x0200;
/// Base PC of the noise branches.
pub const PC_NOISE: u64 = 0x0300;

/// Input distribution of the motivating program.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotivatingConfig {
    /// Probability branch A is **taken** (the paper's
    /// `random_condition(alpha)`; `x` increments when A is not taken).
    pub alpha: f64,
    /// Minimum of the uniform N distribution.
    pub n_min: u64,
    /// Maximum of the uniform N distribution.
    pub n_max: u64,
    /// Noisy branches emitted per iteration (paper uses ~20).
    pub noise_branches: usize,
}

impl MotivatingConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if `n_min > n_max` or `n_min == 0`.
    #[must_use]
    pub fn new(alpha: f64, n_min: u64, n_max: u64, noise_branches: usize) -> Self {
        assert!(n_min <= n_max && n_min > 0);
        Self { alpha, n_min, n_max, noise_branches }
    }

    /// The Fig. 4 training sets. The paper uses
    /// (1) `N = 10, α = 1`, (2) `N ~ rand(5,10), α = 1`,
    /// (3) `N ~ rand(1,4), α = 0.5` with ~20 noise branches.
    ///
    /// This reproduction keeps sets (1) and (2) verbatim (they are
    /// degenerate by design: α = 1 pins `x = 0`) and widens set (3)'s
    /// coverage to two profiled inputs — `(α = 0.5, N ~ rand(2, 8))`
    /// and `(α = 0.9, N ~ rand(2, 8))`: at our training scale, SGD
    /// does not extrapolate counts to history depths or boundary
    /// regimes it never saw, so the coverage-vs-representativeness
    /// claim is carried by α (trained at {0.5, 0.9}, tested on
    /// 0.2–1.0 including both unseen endpoints) and by test N values
    /// (9, 10) absent from training. Noise is scaled from 20 to 4
    /// branches per iteration to keep required history depth within
    /// the scaled models (see DESIGN.md).
    #[must_use]
    pub fn fig4_training_sets() -> [Vec<MotivatingConfig>; 3] {
        [
            vec![MotivatingConfig::new(1.0, 10, 10, Self::FIG4_NOISE)],
            vec![MotivatingConfig::new(1.0, 5, 10, Self::FIG4_NOISE)],
            vec![
                MotivatingConfig::new(0.5, 2, 8, Self::FIG4_NOISE),
                MotivatingConfig::new(0.9, 2, 8, Self::FIG4_NOISE),
            ],
        ]
    }

    /// Noise branches per iteration in the Fig. 4 reproduction.
    pub const FIG4_NOISE: usize = 4;

    /// The Fig. 4 evaluation distribution: `N ~ rand(5,10)` with a
    /// caller-chosen α sweep point.
    #[must_use]
    pub fn fig4_test(alpha: f64) -> MotivatingConfig {
        MotivatingConfig::new(alpha, 5, 10, Self::FIG4_NOISE)
    }
}

/// Generator for the motivating microbenchmark.
#[derive(Debug, Clone, Copy)]
pub struct MotivatingWorkload {
    config: MotivatingConfig,
}

impl MotivatingWorkload {
    /// Creates the workload from an input distribution.
    #[must_use]
    pub fn new(config: MotivatingConfig) -> Self {
        Self { config }
    }

    /// The configured input distribution.
    #[must_use]
    pub fn config(&self) -> &MotivatingConfig {
        &self.config
    }

    /// Generates a trace of roughly `branches` records using `seed`.
    #[must_use]
    pub fn generate(&self, seed: u64, branches: usize) -> Trace {
        let c = self.config;
        let input = ProgramInput::new(
            format!("motivating(a={},N={}..{})", c.alpha, c.n_min, c.n_max),
            seed,
            vec![],
        );
        let mut b = TraceBuilder::new(&input, branches);
        while !b.is_full() {
            // First loop: accumulate x.
            let n = b.uniform(c.n_min, c.n_max);
            let mut x = 0u64;
            for i in 0..n {
                b.loop_branch(PC_LOOP, i + 1 < n);
                let a_taken = b.coin(c.alpha);
                b.branch(PC_A, a_taken);
                if !a_taken {
                    x += 1;
                }
                b.noise(PC_NOISE, c.noise_branches);
            }
            // Second loop: B is taken while j < x (continue), not taken
            // at exit. Emitted once even when x == 0 (the exit test).
            for j in 0..=x {
                b.loop_branch(PC_B, j < x);
                if j < x {
                    b.noise(PC_NOISE + 0x100, c.noise_branches / 2);
                }
            }
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_b_direction_counts_match() {
        // Invariant: per program round, B is taken exactly x times and
        // not-taken once, where x = # not-taken A's in the round.
        let w = MotivatingWorkload::new(MotivatingConfig::new(0.5, 3, 6, 4));
        let t = w.generate(1, 5_000);
        let mut x = 0i64;
        let mut b_taken_run = 0i64;
        for r in &t {
            match r.pc {
                PC_A if !r.taken => {
                    x += 1;
                }
                PC_B => {
                    if r.taken {
                        b_taken_run += 1;
                    } else {
                        // At exit the number of taken B's equals x.
                        assert_eq!(b_taken_run, x, "B trip count must equal x");
                        x = 0;
                        b_taken_run = 0;
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn alpha_one_means_a_always_taken_and_b_exits_immediately() {
        let w = MotivatingWorkload::new(MotivatingConfig::new(1.0, 5, 10, 2));
        let t = w.generate(3, 2_000);
        assert!(t.iter().filter(|r| r.pc == PC_A).all(|r| r.taken));
        assert!(t.iter().filter(|r| r.pc == PC_B).all(|r| !r.taken));
    }

    #[test]
    fn fig4_training_sets_shapes() {
        let sets = MotivatingConfig::fig4_training_sets();
        // Sets (1) and (2) are the paper's degenerate distributions.
        assert_eq!((sets[0][0].n_min, sets[0][0].n_max, sets[0][0].alpha), (10, 10, 1.0));
        assert_eq!((sets[1][0].n_min, sets[1][0].n_max, sets[1][0].alpha), (5, 10, 1.0));
        // Set (3) is diverse: probabilistic A at two biases and a
        // spread of N that still excludes the largest test values.
        assert!(sets[2].len() >= 2);
        for c in &sets[2] {
            assert!(c.alpha < 1.0);
            assert!(c.n_max < 10 && c.n_min > 1);
        }
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let w = MotivatingWorkload::new(MotivatingConfig::fig4_test(0.6));
        assert_eq!(w.generate(9, 1000), w.generate(9, 1000));
        assert_ne!(w.generate(9, 1000), w.generate(10, 1000));
    }

    #[test]
    fn noise_branches_dominate_the_trace() {
        let w = MotivatingWorkload::new(MotivatingConfig::new(0.5, 5, 10, 20));
        let t = w.generate(5, 10_000);
        let noisy = t.iter().filter(|r| r.pc >= PC_NOISE).count();
        assert!(noisy * 2 > t.len(), "history must be noisy for the experiment to be honest");
    }
}
