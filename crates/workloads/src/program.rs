//! Building blocks shared by all workload generators.

use branchnet_trace::{BranchKind, BranchRecord, Trace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One program input: a label, an RNG seed (the "data file"), and a
/// small vector of behavioural knobs each benchmark interprets its own
/// way (e.g. α and the N-range of the motivating example).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramInput {
    /// Human-readable input name (e.g. `"train-2"`, `"ref-1"`).
    pub label: String,
    /// Seed for all stochastic choices made by the generator.
    pub seed: u64,
    /// Benchmark-interpreted behavioural knobs.
    pub knobs: Vec<f64>,
}

impl ProgramInput {
    /// Creates an input.
    #[must_use]
    pub fn new(label: impl Into<String>, seed: u64, knobs: Vec<f64>) -> Self {
        Self { label: label.into(), seed, knobs }
    }

    /// Knob `i`, or `default` when absent.
    #[must_use]
    pub fn knob(&self, i: usize, default: f64) -> f64 {
        self.knobs.get(i).copied().unwrap_or(default)
    }
}

/// Emits branch records into a [`Trace`] with a seeded RNG — the "CPU"
/// every synthetic program runs on.
#[derive(Debug)]
pub struct TraceBuilder {
    trace: Trace,
    rng: SmallRng,
    limit: usize,
    noise_cursor: u64,
}

impl TraceBuilder {
    /// Creates a builder that stops accepting records after `limit`
    /// branches (generators check [`is_full`](Self::is_full) in their
    /// outer loops).
    #[must_use]
    pub fn new(input: &ProgramInput, limit: usize) -> Self {
        let mut trace = Trace::with_label(input.label.clone(), 1.0);
        // Generators run right up to the branch budget, so reserve it
        // up front instead of growing through repeated reallocation.
        trace.reserve(limit);
        Self { trace, rng: SmallRng::seed_from_u64(input.seed), limit, noise_cursor: 0 }
    }

    /// Emits a conditional branch.
    pub fn branch(&mut self, pc: u64, taken: bool) {
        if self.trace.len() < self.limit {
            self.trace.push(BranchRecord::conditional(pc, taken));
        }
    }

    /// Emits a conditional backward branch (a loop branch), so IMLI-
    /// style components see realistic targets.
    pub fn loop_branch(&mut self, pc: u64, taken: bool) {
        if self.trace.len() < self.limit {
            let mut r = BranchRecord::conditional(pc, taken);
            r.target = pc.wrapping_sub(64);
            self.trace.push(r);
        }
    }

    /// Emits an unconditional call/jump (shifts path history only).
    pub fn jump(&mut self, pc: u64, target: u64) {
        if self.trace.len() < self.limit {
            self.trace.push(BranchRecord::unconditional(pc, target, BranchKind::Jump));
        }
    }

    /// Bernoulli draw with probability `p`.
    pub fn coin(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Uniform integer in `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        self.rng.gen_range(lo..=hi)
    }

    /// Whether the branch budget is exhausted.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.trace.len() >= self.limit
    }

    /// Number of branches emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Whether nothing has been emitted.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Emits `count` noise branches: i.i.d. random directions over a
    /// rotating set of 32 static PCs per call site — the
    /// "uncorrelated_function" of the paper's Fig. 3. Rotating the PCs
    /// keeps each individual noise branch's misprediction count small
    /// (diffuse, like real code) while the *history* stays just as
    /// noisy; without rotation a handful of 50%-random PCs would
    /// dominate every hard-branch ranking and starve the offline
    /// pipeline of improvable candidates.
    pub fn noise(&mut self, base_pc: u64, count: usize) {
        for i in 0..count {
            let slot = (self.noise_cursor.wrapping_add(i as u64)) % 32;
            // Per-slot bias between 0.5 and 0.8: every noise branch
            // still flips directions unpredictably (the history stays
            // noisy), but, as in real code, most are not pure coin
            // flips — so diffuse noise does not swamp the benchmark's
            // correlated hard branches in total MPKI.
            let bias = 0.5 + 0.3 * ((slot % 5) as f64) / 4.0;
            let taken = self.rng.gen_bool(bias);
            self.branch(base_pc + slot * 8, taken);
        }
        self.noise_cursor = self.noise_cursor.wrapping_add(count as u64).wrapping_add(1);
    }

    /// Finishes and returns the trace.
    #[must_use]
    pub fn finish(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input() -> ProgramInput {
        ProgramInput::new("t", 42, vec![0.5])
    }

    #[test]
    fn builder_respects_limit() {
        let mut b = TraceBuilder::new(&input(), 5);
        for i in 0..10 {
            b.branch(0x100 + i, true);
        }
        assert!(b.is_full());
        assert_eq!(b.finish().len(), 5);
    }

    #[test]
    fn same_seed_same_trace() {
        let gen = |seed: u64| {
            let mut b = TraceBuilder::new(&ProgramInput::new("x", seed, vec![]), 100);
            for _ in 0..50 {
                let t = b.coin(0.5);
                b.branch(0x10, t);
            }
            b.finish()
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    #[test]
    fn noise_uses_distinct_pcs() {
        let mut b = TraceBuilder::new(&input(), 100);
        b.noise(0x1000, 20);
        let t = b.finish();
        let pcs: std::collections::HashSet<u64> = t.iter().map(|r| r.pc).collect();
        assert_eq!(pcs.len(), 20);
    }

    #[test]
    fn loop_branch_targets_backward() {
        let mut b = TraceBuilder::new(&input(), 10);
        b.loop_branch(0x2000, true);
        let t = b.finish();
        assert!(t.records()[0].target < t.records()[0].pc);
    }

    #[test]
    fn knob_defaults() {
        let i = ProgramInput::new("k", 1, vec![0.25]);
        assert!((i.knob(0, 0.9) - 0.25).abs() < 1e-12);
        assert!((i.knob(3, 0.9) - 0.9).abs() < 1e-12);
    }
}
