//! Synthetic SPEC2017 Integer Speed benchmark analogues.
//!
//! Each generator reproduces the *branch-behaviour class* the paper
//! reports for the corresponding benchmark (Sections IV, VI-B, VI-C):
//!
//! | Benchmark  | Hard-branch structure modeled | BranchNet opportunity |
//! |------------|-------------------------------|----------------------|
//! | leela      | property-count thresholds + count-length loops in a noisy history | large |
//! | mcf        | qsort: random comparisons (hopeless) + count-balance body branches | large |
//! | deepsjeng  | move-quality count vs. pruning threshold | large |
//! | xz         | run-length copy loops (Fig. 3 structure) | large |
//! | gcc        | mispredictions diffused over hundreds of weakly-biased branches | ~none |
//! | omnetpp    | data-dependent event branches, no history signal | ~none |
//! | x264       | regular macroblock loops, strongly biased tests | small |
//! | exchange2  | constant-trip nested loops | small |
//! | perlbench  | periodic dispatch patterns | small |
//! | xalancbmk  | biased template dispatch | small |

use crate::program::{ProgramInput, TraceBuilder};
use branchnet_trace::{Trace, TraceSet};
use serde::{Deserialize, Serialize};

/// The ten SPEC2017 Integer Speed benchmarks the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// Go engine: board-property evaluation.
    Leela,
    /// Network simplex: qsort-heavy.
    Mcf,
    /// Chess engine: alpha-beta search.
    Deepsjeng,
    /// LZMA compression: match/run-length loops.
    Xz,
    /// Compiler: enormous diffuse branch footprint.
    Gcc,
    /// Discrete-event simulator: data-dependent branches.
    Omnetpp,
    /// Video encoder: regular loops.
    X264,
    /// Digit puzzle: constant nested loops.
    Exchange2,
    /// Perl interpreter: dispatch patterns.
    Perlbench,
    /// XSLT processor: biased dispatch.
    Xalancbmk,
}

impl Benchmark {
    /// All benchmarks in the paper's presentation order.
    #[must_use]
    pub fn all() -> [Benchmark; 10] {
        [
            Benchmark::Leela,
            Benchmark::Mcf,
            Benchmark::Deepsjeng,
            Benchmark::Xz,
            Benchmark::Gcc,
            Benchmark::Omnetpp,
            Benchmark::X264,
            Benchmark::Exchange2,
            Benchmark::Perlbench,
            Benchmark::Xalancbmk,
        ]
    }

    /// SPEC-style short name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Leela => "leela",
            Benchmark::Mcf => "mcf",
            Benchmark::Deepsjeng => "deepsjeng",
            Benchmark::Xz => "xz",
            Benchmark::Gcc => "gcc",
            Benchmark::Omnetpp => "omnetpp",
            Benchmark::X264 => "x264",
            Benchmark::Exchange2 => "exchange2",
            Benchmark::Perlbench => "perlbench",
            Benchmark::Xalancbmk => "xalancbmk",
        }
    }

    /// The benchmark with this [`name`](Benchmark::name), if any
    /// (the inverse used by CLI tools and report deserialization).
    #[must_use]
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::all().into_iter().find(|b| b.name() == name)
    }

    /// Whether the paper reports a large BranchNet MPKI win here
    /// (used as a shape check in integration tests).
    #[must_use]
    pub fn is_branchnet_friendly(self) -> bool {
        matches!(self, Benchmark::Leela | Benchmark::Mcf | Benchmark::Deepsjeng | Benchmark::Xz)
    }
}

/// Entry point for building benchmark workloads.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpecSuite;

impl SpecSuite {
    /// The workload for one benchmark.
    #[must_use]
    pub fn benchmark(bench: Benchmark) -> SpecWorkload {
        SpecWorkload { bench }
    }

    /// All ten workloads.
    #[must_use]
    pub fn all() -> Vec<SpecWorkload> {
        Benchmark::all().into_iter().map(|b| SpecWorkload { bench: b }).collect()
    }
}

/// A benchmark plus its Table-III-style input partition.
#[derive(Debug, Clone, Copy)]
pub struct SpecWorkload {
    bench: Benchmark,
}

impl SpecWorkload {
    /// Which benchmark this is.
    #[must_use]
    pub fn benchmark(&self) -> Benchmark {
        self.bench
    }

    /// SPEC-style short name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.bench.name()
    }

    /// The input partition mirroring the paper's Table III: training
    /// inputs (SPEC train + Alberta), validation inputs (Alberta), and
    /// test inputs (SPEC ref) — all mutually exclusive, with test
    /// knobs *outside* the training ranges where generalization is the
    /// point.
    #[must_use]
    pub fn inputs(&self) -> InputPartition {
        // knobs[0]: behaviour probability p; knobs[1]: scale of inner
        // loop sizes. Train spans coverage; test sits elsewhere.
        let mk = |label: &str, seed: u64, p: f64, scale: f64| {
            ProgramInput::new(label, seed, vec![p, scale])
        };
        InputPartition {
            train: vec![
                mk("train-1", 0x1001, 0.35, 0.8),
                mk("train-2", 0x1002, 0.55, 1.2),
                mk("train-3", 0x1003, 0.75, 1.6),
            ],
            valid: vec![mk("valid-1", 0x2001, 0.45, 1.0), mk("valid-2", 0x2002, 0.65, 1.4)],
            test: vec![
                mk("ref-1", 0x3001, 0.40, 1.1),
                mk("ref-2", 0x3002, 0.60, 1.3),
                mk("ref-3", 0x3003, 0.70, 1.5),
            ],
        }
    }

    /// Generates one trace for `input` of roughly `branches` records.
    #[must_use]
    pub fn generate(&self, input: &ProgramInput, branches: usize) -> Trace {
        let mut b = TraceBuilder::new(input, branches);
        match self.bench {
            Benchmark::Leela => gen_leela(&mut b, input),
            Benchmark::Mcf => gen_mcf(&mut b, input),
            Benchmark::Deepsjeng => gen_deepsjeng(&mut b, input),
            Benchmark::Xz => gen_xz(&mut b, input),
            Benchmark::Gcc => gen_gcc(&mut b, input),
            Benchmark::Omnetpp => gen_omnetpp(&mut b, input),
            Benchmark::X264 => gen_x264(&mut b, input),
            Benchmark::Exchange2 => gen_exchange2(&mut b, input),
            Benchmark::Perlbench => gen_perlbench(&mut b, input),
            Benchmark::Xalancbmk => gen_xalancbmk(&mut b, input),
        }
        b.finish()
    }

    /// Builds the full train/valid/test [`TraceSet`] with
    /// `branches_per_trace` records per input.
    #[must_use]
    pub fn trace_set(&self, branches_per_trace: usize) -> TraceSet {
        let parts = self.inputs();
        let gen_all = |inputs: &[ProgramInput]| {
            inputs.iter().map(|i| self.generate(i, branches_per_trace)).collect()
        };
        TraceSet {
            train: gen_all(&parts.train),
            valid: gen_all(&parts.valid),
            test: gen_all(&parts.test),
        }
    }
}

/// The Table III input partition.
#[derive(Debug, Clone)]
pub struct InputPartition {
    /// Inputs whose traces fit model weights.
    pub train: Vec<ProgramInput>,
    /// Inputs used for branch selection.
    pub valid: Vec<ProgramInput>,
    /// Unseen inputs; all reported numbers come from these.
    pub test: Vec<ProgramInput>,
}

// ---------------------------------------------------------------------------
// Generators. Each "program" is a loop of rounds; PC regions are
// disjoint per benchmark so hybrid predictors can attach models by PC.
// ---------------------------------------------------------------------------

/// leela: board scans over points with a hidden per-point property.
/// The *first* branch testing a property is data-dependent (nothing in
/// history predicts it — mirroring the paper's note that BranchNet
/// cannot fix such branches), but several later branches re-examine
/// the **same** property at nondeterministic history distances — the
/// paper's "branches in the global history that depend on a shared
/// property". Evaluation branches threshold property *counts*, and a
/// liberty-walk loop's trip count *is* one of the counts (Fig. 3
/// structure).
fn gen_leela(b: &mut TraceBuilder, input: &ProgramInput) {
    let p = input.knob(0, 0.5);
    let scale = input.knob(1, 1.0);
    while !b.is_full() {
        let m = b.uniform((4.0 * scale) as u64 + 2, (10.0 * scale) as u64 + 2);
        let mut p1 = 0u64;
        for i in 0..m {
            b.loop_branch(0x1020, i + 1 < m);
            // Hidden board property of this point (data-dependent).
            let has_liberty = b.coin(p);
            b.branch(0x1100, has_liberty);
            if has_liberty {
                p1 += 1;
            }
            // Branches that re-test the shared property after a
            // nondeterministic amount of unrelated work.
            let gap = b.uniform(0, 2) as usize;
            b.noise(0x1300, gap);
            b.branch(0x1108, has_liberty);
            b.noise(0x1300, 3);
            let occupied = !has_liberty || b.coin(0.9);
            b.branch(0x1110, occupied);
            b.noise(0x1300, 2);
        }
        // Property-count thresholds (the paper's board evaluations).
        b.branch(0x1200, p1 * 2 > m);
        b.branch(0x1208, p1 * 3 > m);
        b.branch(0x1210, p1 + 2 < m);
        // Liberty walk: trip count equals p1 (Fig. 3 structure).
        for j in 0..=p1 {
            b.loop_branch(0x1218, j < p1);
            if j < p1 {
                b.noise(0x1400, 2);
            }
        }
    }
}

/// mcf: qsort partition rounds. Comparison branches are data-random
/// (not improvable); body branches threshold the running comparison
/// balance, buried at nondeterministic distances.
fn gen_mcf(b: &mut TraceBuilder, input: &ProgramInput) {
    let scale = input.knob(1, 1.0);
    while !b.is_full() {
        let len = b.uniform((6.0 * scale) as u64 + 2, (14.0 * scale) as u64 + 2);
        // Per-partition pivot bias: drawn per round => comparisons are
        // unpredictable across rounds but consistent within one.
        let pivot_bias = 0.3 + 0.4 * (b.uniform(0, 1000) as f64 / 1000.0);
        let mut taken_cnt = 0u64;
        for i in 0..len {
            b.loop_branch(0x2020, i + 1 < len);
            let cmp = b.coin(pivot_bias);
            b.branch(0x2100, cmp);
            if cmp {
                taken_cnt += 1;
            }
            // Nondeterministic gap before the dependent body branch.
            let gap = b.uniform(0, 3) as usize;
            b.noise(0x2300, gap);
            // Body branch: swap when the smaller side is still ahead —
            // a function of the running count balance.
            b.branch(0x2108, taken_cnt * 2 > i + 1);
        }
        // End-of-partition balance checks.
        b.branch(0x2200, taken_cnt * 2 > len);
        b.branch(0x2208, taken_cnt + 2 < len - taken_cnt || taken_cnt > len - taken_cnt + 2);
        b.noise(0x2400, 4);
    }
}

/// deepsjeng: per-node move scans; the pruning branch thresholds the
/// good-move count against a depth-dependent cutoff.
fn gen_deepsjeng(b: &mut TraceBuilder, input: &ProgramInput) {
    let p = input.knob(0, 0.5);
    let scale = input.knob(1, 1.0);
    while !b.is_full() {
        let depth = b.uniform(1, 4);
        let moves = b.uniform((5.0 * scale) as u64 + 3, (12.0 * scale) as u64 + 3);
        let mut good = 0u64;
        for i in 0..moves {
            b.loop_branch(0x3020, i + 1 < moves);
            let g = b.coin(p * 0.9);
            b.branch(0x3100, g);
            if g {
                good += 1;
            }
            b.noise(0x3300, 5);
        }
        // Prune when enough good moves accumulated relative to depth.
        b.branch(0x3200, good >= depth + 2);
        b.branch(0x3208, good * 3 >= moves);
        // Depth loop: short and regular (predictable).
        for d in 0..depth {
            b.loop_branch(0x3028, d + 1 < depth);
        }
    }
}

/// xz: literal/match decisions accumulate a run length; the copy loop
/// then executes exactly that many iterations (Fig. 3 structure with
/// LZ77 flavor).
fn gen_xz(b: &mut TraceBuilder, input: &ProgramInput) {
    let p = input.knob(0, 0.5);
    let scale = input.knob(1, 1.0);
    while !b.is_full() {
        let window = b.uniform((4.0 * scale) as u64 + 2, (9.0 * scale) as u64 + 2);
        let mut run = 0u64;
        for i in 0..window {
            b.loop_branch(0x4020, i + 1 < window);
            let literal = b.coin(p);
            b.branch(0x4100, literal);
            if !literal {
                run += 1;
            }
            b.noise(0x4300, 4);
        }
        // Copy loop of exactly `run` iterations.
        for j in 0..=run {
            b.loop_branch(0x4200, j < run);
            if j < run {
                b.noise(0x4400, 2);
            }
        }
        // Mode branch: biased but input-dependent.
        b.branch(0x4108, !b.len().is_multiple_of(7));
    }
}

/// gcc: hundreds of weakly-biased, data-random branches. No branch
/// dominates the misprediction budget and none carries history signal.
fn gen_gcc(b: &mut TraceBuilder, input: &ProgramInput) {
    let scale = input.knob(1, 1.0);
    let static_branches = 320u64;
    while !b.is_full() {
        let run = b.uniform(20, 60);
        for _ in 0..run {
            let which = b.uniform(0, static_branches - 1);
            // Per-PC bias derived from the PC itself; stable across
            // inputs but each decision is an independent draw.
            let bias = 0.55 + 0.35 * ((which * 7919 % 100) as f64 / 100.0) * scale.min(1.2);
            let t = b.coin(bias.min(0.95));
            b.branch(0x5000 + which * 8, t);
        }
        // Some predictable glue.
        for i in 0..8 {
            b.loop_branch(0x5A00, i < 7);
        }
    }
}

/// omnetpp: event-queue pops whose comparisons depend on event
/// timestamps that never appear in branch history — pure noise to any
/// history-based predictor, with some locally-patterned scaffolding.
fn gen_omnetpp(b: &mut TraceBuilder, input: &ProgramInput) {
    let p = input.knob(0, 0.5);
    while !b.is_full() {
        // The data-dependent hot branch (heap comparison).
        let t = b.coin(0.45 + 0.2 * p);
        b.branch(0x6100, t);
        // A second data-dependent branch.
        let t = b.coin(0.5);

        b.branch(0x6108, t);
        // Locally-patterned module dispatch (period 3) — gives local
        // history components something to win on.
        let phase = b.len() % 3;
        b.branch(0x6200, phase != 2);
        b.noise(0x6300, 3);
        for i in 0..4 {
            b.loop_branch(0x6020, i < 3);
        }
    }
}

/// x264: 16-wide macroblock double loops and strongly biased mode
/// checks — little opportunity for anyone.
fn gen_x264(b: &mut TraceBuilder, input: &ProgramInput) {
    let p = input.knob(0, 0.5);
    while !b.is_full() {
        for i in 0..16u64 {
            b.loop_branch(0x7020, i < 15);
            for j in 0..4u64 {
                b.loop_branch(0x7028, j < 3);
            }
            let t = b.coin(0.93);

            b.branch(0x7100, t);
        }
        // Occasional data-dependent skip decision.
        let t = b.coin(0.8 + 0.1 * p);

        b.branch(0x7108, t);
        b.noise(0x7300, 2);
    }
}

/// exchange2: constant-trip (9-digit) nested loops; almost perfectly
/// predictable by the loop predictor.
fn gen_exchange2(b: &mut TraceBuilder, _input: &ProgramInput) {
    while !b.is_full() {
        for i in 0..9u64 {
            b.loop_branch(0x8020, i < 8);
            for j in 0..9u64 {
                b.loop_branch(0x8028, j < 8);
                b.branch(0x8100, (i + j) % 2 == 0);
            }
        }
        let t = b.coin(0.97);

        b.branch(0x8108, t);
    }
}

/// perlbench: opcode dispatch with strong periodic patterns.
fn gen_perlbench(b: &mut TraceBuilder, input: &ProgramInput) {
    let p = input.knob(0, 0.5);
    let pattern = [true, true, false, true, false, true, true, false];
    while !b.is_full() {
        let idx = b.len() % pattern.len();
        b.branch(0x9100, pattern[idx]);
        b.branch(0x9108, pattern[(idx + 3) % pattern.len()]);
        let t = b.coin(0.97 + 0.02 * p);
        b.branch(0x9110, t);
        for i in 0..6u64 {
            b.loop_branch(0x9020, i < 5);
            b.branch(0x9030, true);
        }
    }
}

/// xalancbmk: biased template dispatch plus regular traversal loops.
fn gen_xalancbmk(b: &mut TraceBuilder, input: &ProgramInput) {
    let p = input.knob(0, 0.5);
    while !b.is_full() {
        // Fixed-arity traversal: the loop predictor nails it.
        for i in 0..4u64 {
            b.loop_branch(0xA020, i < 3);
            let t = b.coin(0.985);
            b.branch(0xA100, t);
            b.branch(0xA110, i % 2 == 0);
        }
        let t = b.coin(0.96 + 0.03 * p);
        b.branch(0xA108, t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use branchnet_tage::{TageScL, TageSclConfig};
    use branchnet_trace::run_one as evaluate;

    #[test]
    fn all_benchmarks_generate_requested_length() {
        for w in SpecSuite::all() {
            let input = &w.inputs().train[0];
            let t = w.generate(input, 5_000);
            assert!(t.len() >= 5_000, "{} produced {} branches", w.name(), t.len());
            // Budget overshoot is bounded by one round.
            assert!(t.len() <= 5_000, "builder must clamp at the limit");
        }
    }

    #[test]
    fn traces_are_deterministic() {
        let w = SpecSuite::benchmark(Benchmark::Mcf);
        let i = &w.inputs().test[0];
        assert_eq!(w.generate(i, 2_000), w.generate(i, 2_000));
    }

    #[test]
    fn partitions_are_mutually_exclusive() {
        let parts = SpecSuite::benchmark(Benchmark::Leela).inputs();
        let mut seeds: Vec<u64> =
            parts.train.iter().chain(&parts.valid).chain(&parts.test).map(|i| i.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 8, "all 8 inputs must be distinct");
    }

    #[test]
    fn pc_regions_do_not_collide_across_benchmarks() {
        let mut all_pcs: std::collections::HashMap<u64, &'static str> =
            std::collections::HashMap::new();
        for w in SpecSuite::all() {
            let t = w.generate(&w.inputs().train[0], 3_000);
            for r in &t {
                if let Some(prev) = all_pcs.insert(r.pc, w.name()) {
                    assert_eq!(prev, w.name(), "pc {:#x} used by {} and {}", r.pc, prev, w.name());
                }
            }
        }
    }

    #[test]
    fn friendly_benchmarks_have_high_tage_mpki() {
        // The BranchNet-friendly benchmarks must actually be hard for
        // TAGE-SC-L; the easy ones must be easy. This is the shape of
        // the paper's Fig. 1.
        let mut hard_min = f64::INFINITY;
        let mut easy_max: f64 = 0.0;
        for w in SpecSuite::all() {
            let t = w.generate(&w.inputs().test[0], 60_000);
            let mut p = TageScL::new(&TageSclConfig::tage_sc_l_64kb());
            let stats = evaluate(&mut p, &t);
            if w.benchmark().is_branchnet_friendly() {
                hard_min = hard_min.min(stats.mpki());
            } else if matches!(
                w.benchmark(),
                Benchmark::X264
                    | Benchmark::Exchange2
                    | Benchmark::Perlbench
                    | Benchmark::Xalancbmk
            ) {
                easy_max = easy_max.max(stats.mpki());
            }
        }
        assert!(
            hard_min > easy_max,
            "hard benchmarks (min MPKI {hard_min:.2}) must mispredict more than easy ones (max {easy_max:.2})"
        );
    }

    #[test]
    fn exchange2_is_nearly_perfectly_predicted() {
        let w = SpecSuite::benchmark(Benchmark::Exchange2);
        let t = w.generate(&w.inputs().test[0], 40_000);
        let mut p = TageScL::new(&TageSclConfig::tage_sc_l_64kb());
        let stats = evaluate(&mut p, &t);
        assert!(stats.accuracy() > 0.98, "accuracy {}", stats.accuracy());
    }

    #[test]
    fn omnetpp_hot_branch_is_data_dependent() {
        // The hot branch's direction must be independent of its own
        // history — verify autocorrelation is near zero.
        let w = SpecSuite::benchmark(Benchmark::Omnetpp);
        let t = w.generate(&w.inputs().train[0], 50_000);
        let dirs: Vec<bool> = t.iter().filter(|r| r.pc == 0x6100).map(|r| r.taken).collect();
        assert!(dirs.len() > 1000);
        let mut agree = 0usize;
        for w in dirs.windows(2) {
            if w[0] == w[1] {
                agree += 1;
            }
        }
        let autocorr = agree as f64 / (dirs.len() - 1) as f64;
        assert!((autocorr - 0.5).abs() < 0.05, "autocorrelation {autocorr}");
    }
}
