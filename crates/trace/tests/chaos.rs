//! Chaos suite for trace IO: every byte stream — arbitrary garbage,
//! plan-corrupted valid files, truncations at every byte — must yield
//! a typed [`ReadTraceError`] or a valid [`Trace`], never a panic
//! (DESIGN.md §9's "untrusted bytes" contract).
//!
//! The corruption recipes come from the deterministic
//! [`FaultPlan`] machinery, so any failure replays from the seed
//! printed in the proptest case description.

use branchnet_trace::{
    read_trace, write_trace, BranchKind, BranchRecord, CorruptingReader, CorruptingWriter,
    FaultPlan, ReadTraceError, Trace,
};
use proptest::prelude::*;
use std::io::Read;

/// A representative trace exercising every record shape: strided
/// conditionals, unconditional kinds, and non-default gaps.
fn sample_trace() -> Trace {
    let mut t = Trace::with_label("chaos/sample", 0.75);
    for i in 0..150u64 {
        t.push(BranchRecord::conditional(0x4000 + (i % 9) * 4, i % 4 != 0));
        if i % 6 == 0 {
            t.push(BranchRecord::unconditional(0x9000 + i * 16, 0x100, BranchKind::Call));
        }
        if i % 13 == 0 {
            t.push(BranchRecord::conditional_with_gap(0x7777, i % 2 == 0, 321));
        }
    }
    t
}

fn sample_bytes() -> Vec<u8> {
    let mut buf = Vec::new();
    write_trace(&mut buf, &sample_trace()).unwrap();
    buf
}

proptest! {
    /// Arbitrary bytes must never panic the reader.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = read_trace(bytes.as_slice());
    }

    /// Arbitrary bytes behind a valid header get deep into the record
    /// parser; they too must fail (or succeed) cleanly.
    #[test]
    fn arbitrary_bytes_after_valid_header_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut framed = b"BNTR\x01".to_vec();
        framed.extend_from_slice(&bytes);
        let _ = read_trace(framed.as_slice());
    }

    /// Any seeded corruption of a valid file parses or errors — and the
    /// error formats without panicking.
    #[test]
    fn corrupted_valid_file_degrades_to_typed_error(seed in any::<u64>()) {
        let buf = sample_bytes();
        let plan = FaultPlan::generate(seed, buf.len() as u64);
        match read_trace(plan.corrupt(&buf).as_slice()) {
            Ok(trace) => prop_assert!(trace.len() <= 1 << 20),
            Err(e) => prop_assert!(!e.to_string().is_empty(), "classes {:?}", plan.classes()),
        }
    }

    /// Writer-side corruption (bit rot between `write_trace` and the
    /// disk) behaves exactly like reading an equally corrupted buffer.
    #[test]
    fn corrupting_writer_path_equals_buffer_corruption(seed in any::<u64>()) {
        let buf = sample_bytes();
        let plan = FaultPlan::generate(seed, buf.len() as u64);
        let mut w = CorruptingWriter::new(Vec::new(), plan.clone());
        write_trace(&mut w, &sample_trace()).unwrap();
        let landed = w.finish().unwrap();
        prop_assert_eq!(landed, plan.corrupt(&buf));
    }

    /// Round trip: any record stream survives write + read bit-exactly.
    #[test]
    fn any_trace_round_trips(
        weight in 0.001f64..100.0,
        records in prop::collection::vec(
            (any::<u32>(), any::<bool>(), any::<u32>(), 0u32..5, 0u32..2000),
            0..150,
        ),
    ) {
        let mut t = Trace::with_label("chaos/round-trip", weight);
        for (pc, taken, target, kind, gap) in records {
            let kind = match kind {
                0 => BranchKind::Conditional,
                1 => BranchKind::Jump,
                2 => BranchKind::Call,
                3 => BranchKind::Return,
                _ => BranchKind::Indirect,
            };
            t.push(BranchRecord {
                pc: u64::from(pc),
                taken: taken || kind != BranchKind::Conditional,
                target: u64::from(target),
                kind,
                inst_gap: gap as u16,
            });
        }
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        prop_assert_eq!(read_trace(buf.as_slice()).unwrap(), t);
    }
}

/// Every proper prefix of a valid file is a clean error: the format
/// has no trailing slack a torn write could hide in.
#[test]
fn truncation_at_every_byte_is_a_clean_error() {
    let buf = sample_bytes();
    for cut in 0..buf.len() {
        let err = read_trace(&buf[..cut]).expect_err("prefix must not parse");
        assert!(!err.to_string().is_empty(), "cut at {cut}");
    }
    assert!(read_trace(buf.as_slice()).is_ok(), "the full file must still parse");
}

/// Each fault class, injected alone, degrades cleanly — and the
/// streaming [`CorruptingReader`] sees exactly what a corrupted file
/// would contain.
#[test]
fn every_fault_class_degrades_cleanly_through_the_reader() {
    let buf = sample_bytes();
    for seed in 0..12u64 {
        for plan in FaultPlan::one_of_each(seed, buf.len() as u64) {
            let corrupted = plan.corrupt(&buf);
            let direct = read_trace(corrupted.as_slice());
            let mut streamed = Vec::new();
            CorruptingReader::new(buf.as_slice(), plan.clone()).read_to_end(&mut streamed).unwrap();
            assert_eq!(streamed, corrupted, "seed {seed} classes {:?}", plan.classes());
            let via_reader = read_trace(CorruptingReader::new(buf.as_slice(), plan.clone()));
            match (direct, via_reader) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "seed {seed} classes {:?}", plan.classes()),
                (Err(a), Err(b)) => {
                    assert_eq!(format!("{a}"), format!("{b}"), "seed {seed}");
                }
                (a, b) => panic!(
                    "reader/buffer disagree for seed {seed} classes {:?}: {a:?} vs {b:?}",
                    plan.classes()
                ),
            }
        }
    }
}

/// The error type's user-facing surface is stable: these strings are
/// what operators grep for in degraded-run logs.
#[test]
fn read_trace_error_display_and_source_are_stable() {
    use std::error::Error as _;

    let io = ReadTraceError::Io(std::io::Error::other("disk on fire"));
    assert_eq!(io.to_string(), "i/o error reading trace: disk on fire");
    assert!(io.source().is_some(), "Io must expose its cause");

    let magic = ReadTraceError::BadMagic;
    assert_eq!(magic.to_string(), "not a BranchNet trace file");
    assert!(magic.source().is_none());

    let version = ReadTraceError::BadVersion(9);
    assert_eq!(version.to_string(), "unsupported trace version 9");
    assert!(version.source().is_none());

    let corrupt = ReadTraceError::Corrupt("varint overflow");
    assert_eq!(corrupt.to_string(), "corrupt trace file: varint overflow");
    assert!(corrupt.source().is_none());
}

/// `std::io::Error` converts into the reader's error type (the `?`
/// path every read helper relies on).
#[test]
fn io_errors_convert_into_read_trace_error() {
    let e: ReadTraceError = std::io::Error::other("boom").into();
    assert!(matches!(e, ReadTraceError::Io(_)));
}
