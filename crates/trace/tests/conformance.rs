//! Conformance-suite instantiations for the trace crate's own
//! predictors — the trivial end of the spectrum, which pins down the
//! suite's semantics for stateless and offline-configured predictors
//! (a [`StaticBias`] profile must survive `flush`, and zero storage
//! is legal for predictors without modeled hardware).

use branchnet_trace::{predictor_conformance, AlwaysTaken, BranchRecord, StaticBias, Trace};

predictor_conformance!(always_taken, 0, || Box::new(AlwaysTaken));

predictor_conformance!(static_bias_empty, 0, || Box::new(StaticBias::default()));

predictor_conformance!(static_bias_profiled, 0, || {
    // A fixed profile over the conformance suite's PC range: offline
    // configuration that must survive flush bit-for-bit.
    let profile: Trace =
        (0..32u64).map(|i| BranchRecord::conditional(0x4000 + (i % 6) * 32, i % 3 == 0)).collect();
    Box::new(StaticBias::from_profile(&profile))
});
