//! Property-based tests for the trace substrate.

use branchnet_trace::{BranchRecord, GlobalHistory, HistoryRegister, PathHistory, Trace};
use proptest::prelude::*;

proptest! {
    /// `low_bits` always reflects the newest pushes, oldest-evicted.
    #[test]
    fn global_history_low_bits_matches_naive(
        bits in prop::collection::vec(any::<bool>(), 1..100),
        capacity in 1usize..64,
        n in 1usize..64,
    ) {
        prop_assume!(n <= 64);
        let mut h = GlobalHistory::new(capacity);
        for &b in &bits {
            h.push(b);
        }
        let mut expect = 0u64;
        for i in (0..n).rev() {
            // Newest-first indexing over at most `capacity` retained bits.
            let bit = if i < capacity && i < bits.len() {
                bits[bits.len() - 1 - i]
            } else {
                false
            };
            expect = (expect << 1) | u64::from(bit);
        }
        prop_assert_eq!(h.low_bits(n), expect);
    }

    /// A history register window is always oldest→newest and zero-padded.
    #[test]
    fn history_register_window_invariants(
        records in prop::collection::vec((any::<u64>(), any::<bool>()), 0..80),
        capacity in 1usize..64,
        window in 1usize..64,
        pc_bits in 1u32..16,
    ) {
        let mut hr = HistoryRegister::new(capacity, pc_bits);
        let mut encoded = Vec::new();
        for &(pc, taken) in &records {
            let r = BranchRecord::conditional(pc, taken);
            hr.push(&r);
            encoded.push(r.encode(pc_bits));
        }
        let w = hr.window(window);
        prop_assert_eq!(w.len(), window);
        // The newest min(window, capacity, len) entries match the tail.
        let have = window.min(capacity).min(encoded.len());
        for i in 0..have {
            prop_assert_eq!(w[window - 1 - i], encoded[encoded.len() - 1 - i]);
        }
        // Everything older is zero padding.
        for &v in &w[..window - have] {
            prop_assert_eq!(v, 0);
        }
    }

    /// Encoding is injective in (low PC bits, direction).
    #[test]
    fn encode_is_injective_over_low_bits(pc1 in any::<u64>(), pc2 in any::<u64>(), t1 in any::<bool>(), t2 in any::<bool>()) {
        let bits = 12u32;
        let a = BranchRecord { taken: t1, ..BranchRecord::conditional(pc1, t1) };
        let b = BranchRecord { taken: t2, ..BranchRecord::conditional(pc2, t2) };
        let same_key = (pc1 & 0xFFF) == (pc2 & 0xFFF) && t1 == t2;
        prop_assert_eq!(a.encode(bits) == b.encode(bits), same_key);
    }

    /// Path history keeps exactly the configured bits per branch.
    #[test]
    fn path_history_low_bits_window(pcs in prop::collection::vec(any::<u64>(), 1..40), n in 1u32..32) {
        let mut p = PathHistory::new();
        for &pc in &pcs {
            p.push(pc);
        }
        let v = p.low_bits(n);
        prop_assert!(n >= 64 || v < (1u64 << n));
    }

    /// Instruction counting is additive over concatenation.
    #[test]
    fn trace_instruction_count_is_additive(
        a in prop::collection::vec((any::<u64>(), any::<bool>(), 0u16..64), 0..50),
        b in prop::collection::vec((any::<u64>(), any::<bool>(), 0u16..64), 0..50),
    ) {
        let build = |v: &[(u64, bool, u16)]| -> Trace {
            v.iter().map(|&(pc, t, gap)| BranchRecord::conditional_with_gap(pc, t, gap)).collect()
        };
        let ta = build(&a);
        let tb = build(&b);
        let mut tc = ta.clone();
        tc.extend(tb.iter().copied());
        prop_assert_eq!(tc.instruction_count(), ta.instruction_count() + tb.instruction_count());
    }
}
