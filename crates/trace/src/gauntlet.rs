//! The [`Gauntlet`]: single-pass, multi-predictor trace evaluation.
//!
//! The paper's evaluation (Figs. 9–13) runs the *same* test traces
//! through every predictor under study. Driving each predictor in its
//! own pass decodes and re-walks the trace once per variant; the
//! gauntlet instead decodes each record once and feeds it to N
//! independent *lanes*, collecting per-lane
//! [`PredictionStats`] (and optionally per-static-branch
//! [`BranchStats`]) simultaneously.
//!
//! Lanes never interact: each lane's predictor sees exactly the
//! predict/update/note sequence it would see when driven alone, and
//! its statistics counters are integer-valued `f64` accumulated in the
//! same order, so per-lane results are bit-identical to a sequential
//! per-predictor run.
//!
//! # Example
//!
//! ```
//! use branchnet_trace::{AlwaysTaken, BranchRecord, Gauntlet, StaticBias, Trace};
//!
//! let trace: Trace = (0..100).map(|i| BranchRecord::conditional(0x40, i % 2 == 0)).collect();
//! let mut gauntlet = Gauntlet::new();
//! let taken = gauntlet.add(AlwaysTaken);
//! let bias = gauntlet.add(StaticBias::from_profile(&trace));
//! gauntlet.run(&trace);
//! assert!((gauntlet.stats(taken).accuracy() - 0.5).abs() < 1e-9);
//! assert!((gauntlet.stats(bias).accuracy() - 0.5).abs() < 1e-9);
//! ```

use crate::predict::Predictor;
use crate::stats::{BranchStats, PredictionStats};
use crate::trace::Trace;

/// One predictor being driven through the gauntlet, with its
/// accumulated statistics.
struct Lane<'a> {
    predictor: Box<dyn Predictor + 'a>,
    stats: PredictionStats,
    branch_stats: Option<BranchStats>,
}

/// A finished lane's results, as returned by [`Gauntlet::finish`].
pub struct LaneResult {
    /// The predictor's [`Predictor::name`].
    pub name: &'static str,
    /// Aggregate statistics over every record the lane saw.
    pub stats: PredictionStats,
    /// Per-static-branch statistics, for lanes added with
    /// [`Gauntlet::add_tracked`]. Matches the historical
    /// per-branch-evaluation convention: only conditional branches are
    /// counted (no unconditional instruction credit).
    pub branch_stats: Option<BranchStats>,
}

/// Drives N independent predictors over traces in one pass per trace.
#[derive(Default)]
pub struct Gauntlet<'a> {
    lanes: Vec<Lane<'a>>,
}

impl<'a> Gauntlet<'a> {
    /// Creates an empty gauntlet.
    #[must_use]
    pub fn new() -> Self {
        Self { lanes: Vec::new() }
    }

    /// Adds a lane and returns its index.
    pub fn add(&mut self, predictor: impl Predictor + 'a) -> usize {
        self.add_boxed(Box::new(predictor))
    }

    /// Adds an already-boxed lane and returns its index.
    pub fn add_boxed(&mut self, predictor: Box<dyn Predictor + 'a>) -> usize {
        self.lanes.push(Lane { predictor, stats: PredictionStats::new(), branch_stats: None });
        self.lanes.len() - 1
    }

    /// Adds a lane that additionally collects per-static-branch
    /// statistics, and returns its index.
    pub fn add_tracked(&mut self, predictor: impl Predictor + 'a) -> usize {
        let lane = self.add_boxed(Box::new(predictor));
        self.lanes[lane].branch_stats = Some(BranchStats::new());
        lane
    }

    /// Number of lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the gauntlet has no lanes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Drives every lane over `trace` in one pass, accumulating each
    /// lane's statistics. May be called repeatedly; pair with
    /// [`flush`](Gauntlet::flush) between traces for cold-start
    /// (per-SimPoint) evaluation.
    pub fn run(&mut self, trace: &Trace) {
        for record in trace {
            if record.kind.is_conditional() {
                for lane in &mut self.lanes {
                    let predicted = lane.predictor.predict(record.pc);
                    let correct = predicted == record.taken;
                    lane.stats.record(correct, record.inst_gap);
                    if let Some(bs) = &mut lane.branch_stats {
                        bs.record(record.pc, correct, record.inst_gap);
                    }
                    lane.predictor.update(record, predicted);
                }
            } else {
                for lane in &mut self.lanes {
                    lane.stats.record_instructions(1 + u64::from(record.inst_gap));
                    lane.predictor.note_unconditional(record);
                }
            }
        }
    }

    /// Flushes every lane's predictor back to its freshly-constructed
    /// state. Accumulated statistics are kept — this is the seam for
    /// serial cold-start accumulation across a trace set.
    pub fn flush(&mut self) {
        for lane in &mut self.lanes {
            lane.predictor.flush();
        }
    }

    /// A lane's aggregate statistics so far.
    #[must_use]
    pub fn stats(&self, lane: usize) -> &PredictionStats {
        &self.lanes[lane].stats
    }

    /// A tracked lane's per-branch statistics so far.
    #[must_use]
    pub fn branch_stats(&self, lane: usize) -> Option<&BranchStats> {
        self.lanes[lane].branch_stats.as_ref()
    }

    /// Consumes the gauntlet and returns every lane's results in lane
    /// order.
    #[must_use]
    pub fn finish(self) -> Vec<LaneResult> {
        self.lanes
            .into_iter()
            .map(|lane| LaneResult {
                name: lane.predictor.name(),
                stats: lane.stats,
                branch_stats: lane.branch_stats,
            })
            .collect()
    }
}

/// Runs one predictor over `trace` and returns aggregate statistics —
/// a single-lane [`Gauntlet`] pass.
///
/// ```
/// use branchnet_trace::{run_one, AlwaysTaken, BranchRecord, Trace};
///
/// let trace: Trace = (0..10).map(|i| BranchRecord::conditional(4, i % 2 == 0)).collect();
/// let stats = run_one(&mut AlwaysTaken, &trace);
/// assert!((stats.accuracy() - 0.5).abs() < 1e-9);
/// ```
pub fn run_one<P: Predictor + ?Sized>(predictor: &mut P, trace: &Trace) -> PredictionStats {
    let mut gauntlet = Gauntlet::new();
    gauntlet.add(&mut *predictor);
    gauntlet.run(trace);
    gauntlet.finish().pop().expect("single lane").stats
}

/// Like [`run_one`] but returns per-static-branch statistics, which
/// the offline pipeline uses to rank hard-to-predict branches. Only
/// conditional branches are counted (no unconditional instruction
/// credit), matching the per-branch ranking convention.
pub fn run_one_per_branch<P: Predictor + ?Sized>(predictor: &mut P, trace: &Trace) -> BranchStats {
    let mut gauntlet = Gauntlet::new();
    gauntlet.add_tracked(&mut *predictor);
    gauntlet.run(trace);
    gauntlet.finish().pop().expect("single lane").branch_stats.expect("tracked lane")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::{AlwaysTaken, StaticBias};
    use crate::record::{BranchKind, BranchRecord};

    fn alternating(n: usize) -> Trace {
        (0..n).map(|i| BranchRecord::conditional(0x10, i % 2 == 0)).collect()
    }

    #[test]
    fn always_taken_gets_half_of_alternating() {
        let stats = run_one(&mut AlwaysTaken, &alternating(100));
        assert!((stats.accuracy() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn run_one_counts_unconditional_instructions() {
        let mut t = Trace::new();
        t.push(BranchRecord::conditional(0x10, true));
        t.push(BranchRecord::unconditional(0x20, 0x80, BranchKind::Jump));
        let stats = run_one(&mut AlwaysTaken, &t);
        assert!((stats.predictions() - 1.0).abs() < f64::EPSILON);
        assert!((stats.instructions() - 10.0).abs() < f64::EPSILON);
    }

    #[test]
    fn per_branch_separates_pcs_and_skips_unconditional_credit() {
        let mut t = Trace::new();
        for i in 0..10 {
            t.push(BranchRecord::conditional(0x10, true));
            t.push(BranchRecord::conditional(0x20, i % 2 == 0));
        }
        t.push(BranchRecord::unconditional(0x30, 0x80, BranchKind::Jump));
        let bs = run_one_per_branch(&mut AlwaysTaken, &t);
        assert!((bs.get(0x10).unwrap().accuracy() - 1.0).abs() < 1e-9);
        assert!((bs.get(0x20).unwrap().accuracy() - 0.5).abs() < 1e-9);
        // Historical convention: only conditional records count.
        assert!((bs.totals().instructions() - 100.0).abs() < f64::EPSILON);
    }

    #[test]
    fn multi_lane_matches_individual_runs() {
        let trace = alternating(200);
        let solo_taken = run_one(&mut AlwaysTaken, &trace);
        let solo_bias = run_one(&mut StaticBias::from_profile(&trace), &trace);

        let mut g = Gauntlet::new();
        let a = g.add(AlwaysTaken);
        let b = g.add(StaticBias::from_profile(&trace));
        g.run(&trace);
        assert_eq!(*g.stats(a), solo_taken);
        assert_eq!(*g.stats(b), solo_bias);
        let results = g.finish();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].name, "always-taken");
        assert!(results[0].branch_stats.is_none());
    }

    #[test]
    fn flush_keeps_stats_and_resets_predictors() {
        let trace = alternating(100);
        let mut g = Gauntlet::new();
        let lane = g.add(AlwaysTaken);
        g.run(&trace);
        let after_one = *g.stats(lane);
        g.flush();
        assert_eq!(*g.stats(lane), after_one, "flush must not clear statistics");
        g.run(&trace);
        assert!((g.stats(lane).predictions() - 200.0).abs() < f64::EPSILON);
    }
}
