//! Compact binary trace files.
//!
//! Profiling runs produce long branch traces that experiments re-read
//! many times; this module gives them a stable on-disk format:
//!
//! ```text
//! magic "BNTR" | version u8 | weight f64 | label (u16 len + utf8)
//! record count u64 | records...
//! ```
//!
//! Each record is delta/varint packed: most branches repeat a small
//! set of PCs at small strides, so the common case is 3–6 bytes per
//! record instead of the 26-byte in-memory layout.

use crate::record::{BranchKind, BranchRecord};
use crate::trace::Trace;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"BNTR";
const VERSION: u8 = 1;

/// Errors from reading a trace file.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a trace file (bad magic).
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// Structurally invalid content.
    Corrupt(&'static str),
}

impl std::fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ReadTraceError::BadMagic => write!(f, "not a BranchNet trace file"),
            ReadTraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            ReadTraceError::Corrupt(what) => write!(f, "corrupt trace file: {what}"),
        }
    }
}

impl std::error::Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadTraceError {
    fn from(e: io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> Result<u64, ReadTraceError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if shift >= 64 {
            return Err(ReadTraceError::Corrupt("varint overflow"));
        }
        v |= u64::from(byte[0] & 0x7F) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// ZigZag encoding for signed deltas.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn kind_code(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::Conditional => 0,
        BranchKind::Jump => 1,
        BranchKind::Call => 2,
        BranchKind::Return => 3,
        BranchKind::Indirect => 4,
    }
}

fn code_kind(code: u8) -> Result<BranchKind, ReadTraceError> {
    Ok(match code {
        0 => BranchKind::Conditional,
        1 => BranchKind::Jump,
        2 => BranchKind::Call,
        3 => BranchKind::Return,
        4 => BranchKind::Indirect,
        _ => return Err(ReadTraceError::Corrupt("unknown branch kind")),
    })
}

/// Writes `trace` to `w` in the compact binary format.
///
/// A `&mut` reference works wherever a writer is required.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
pub fn write_trace<W: Write>(mut w: W, trace: &Trace) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION])?;
    w.write_all(&trace.weight().to_le_bytes())?;
    let label = trace.label().as_bytes();
    let label_len = u16::try_from(label.len()).unwrap_or(u16::MAX);
    w.write_all(&label_len.to_le_bytes())?;
    w.write_all(&label[..usize::from(label_len)])?;
    write_varint(&mut w, trace.len() as u64)?;
    let mut prev_pc = 0u64;
    for r in trace {
        // header byte: kind (3 bits) | taken (1) | gap==4 default (1)
        let default_gap = r.inst_gap == 4;
        let header = kind_code(r.kind) | (u8::from(r.taken) << 3) | (u8::from(default_gap) << 4);
        w.write_all(&[header])?;
        write_varint(&mut w, zigzag(r.pc as i64 - prev_pc as i64))?;
        write_varint(&mut w, zigzag(r.target as i64 - r.pc as i64))?;
        if !default_gap {
            write_varint(&mut w, u64::from(r.inst_gap))?;
        }
        prev_pc = r.pc;
    }
    Ok(())
}

/// Reads a trace previously written by [`write_trace`].
///
/// # Errors
///
/// Returns [`ReadTraceError`] on I/O failure or malformed content.
pub fn read_trace<R: Read>(mut r: R) -> Result<Trace, ReadTraceError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ReadTraceError::BadMagic);
    }
    let mut version = [0u8; 1];
    r.read_exact(&mut version)?;
    if version[0] != VERSION {
        return Err(ReadTraceError::BadVersion(version[0]));
    }
    let mut weight = [0u8; 8];
    r.read_exact(&mut weight)?;
    let weight = f64::from_le_bytes(weight);
    if !(weight.is_finite() && weight > 0.0) {
        return Err(ReadTraceError::Corrupt("non-positive weight"));
    }
    let mut label_len = [0u8; 2];
    r.read_exact(&mut label_len)?;
    let mut label = vec![0u8; usize::from(u16::from_le_bytes(label_len))];
    r.read_exact(&mut label)?;
    let label = String::from_utf8(label).map_err(|_| ReadTraceError::Corrupt("label not utf-8"))?;
    let count = read_varint(&mut r)?;
    if count > 1 << 40 {
        return Err(ReadTraceError::Corrupt("implausible record count"));
    }
    let mut trace = Trace::with_label(label, weight);
    let mut prev_pc = 0u64;
    for _ in 0..count {
        let mut header = [0u8; 1];
        r.read_exact(&mut header)?;
        let kind = code_kind(header[0] & 0x7)?;
        let taken = header[0] >> 3 & 1 == 1;
        let default_gap = header[0] >> 4 & 1 == 1;
        let pc = (prev_pc as i64).wrapping_add(unzigzag(read_varint(&mut r)?)) as u64;
        let target = (pc as i64).wrapping_add(unzigzag(read_varint(&mut r)?)) as u64;
        let inst_gap = if default_gap {
            4
        } else {
            u16::try_from(read_varint(&mut r)?)
                .map_err(|_| ReadTraceError::Corrupt("inst_gap overflow"))?
        };
        trace.push(BranchRecord { pc, taken, target, kind, inst_gap });
        prev_pc = pc;
    }
    Ok(trace)
}

/// Writes an artifact file atomically: the payload goes to a
/// `.tmp.<pid>.<seq>` sibling first, is fsynced, and is renamed over
/// `path` only then — so a killed process (or, for the payload bytes,
/// a power loss after the rename) can never leave a torn artifact
/// under the final name for the next run to trip on; at worst it
/// leaves an orphaned temporary. The per-process/per-call suffix keeps
/// concurrent writers to the same destination from stomping each
/// other's half-written temporary, and the temporary lives in the same
/// directory, keeping the rename a same-filesystem atomic operation.
///
/// # Errors
///
/// Propagates creation/write/sync/rename errors; the temporary is
/// removed (best effort) on failure.
pub fn atomic_write(
    path: &std::path::Path,
    write: impl FnOnce(&mut dyn Write) -> io::Result<()>,
) -> io::Result<()> {
    static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}.{seq}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let file = std::fs::File::create(&tmp)?;
        let mut w = io::BufWriter::new(file);
        write(&mut w)?;
        w.flush()?;
        w.get_ref().sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Convenience: writes a trace to a file path, atomically (see
/// [`atomic_write`]).
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn save_trace(path: &std::path::Path, trace: &Trace) -> io::Result<()> {
    atomic_write(path, |w| write_trace(w, trace))
}

/// Convenience: reads a trace from a file path.
///
/// # Errors
///
/// Returns [`ReadTraceError`] on open/read failure or malformed
/// content.
pub fn load_trace(path: &std::path::Path) -> Result<Trace, ReadTraceError> {
    let file = std::fs::File::open(path)?;
    read_trace(io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut t = Trace::with_label("leela/train-1", 0.5);
        for i in 0..200u64 {
            t.push(BranchRecord::conditional(0x1000 + (i % 7) * 8, i % 3 == 0));
            if i % 5 == 0 {
                t.push(BranchRecord::unconditional(0x2000 + i, 0x3000, BranchKind::Call));
            }
            if i % 11 == 0 {
                t.push(BranchRecord::conditional_with_gap(0x4000, true, 123));
            }
        }
        t
    }

    #[test]
    fn round_trip_preserves_everything() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn format_is_compact() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        let naive = t.len() * std::mem::size_of::<BranchRecord>();
        assert!(buf.len() * 3 < naive, "packed {} bytes vs naive {} bytes", buf.len(), naive);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_trace(&b"NOPE0000"[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadMagic));
    }

    #[test]
    fn truncated_file_is_an_error_not_a_panic() {
        let t = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        for cut in [5, 16, buf.len() / 2, buf.len() - 1] {
            assert!(read_trace(&buf[..cut]).is_err(), "cut at {cut} must fail cleanly");
        }
    }

    #[test]
    fn unknown_version_is_rejected() {
        let t = Trace::new();
        let mut buf = Vec::new();
        write_trace(&mut buf, &t).unwrap();
        buf[4] = 99;
        assert!(matches!(read_trace(buf.as_slice()), Err(ReadTraceError::BadVersion(99))));
    }

    #[test]
    fn varint_round_trips_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn file_helpers_round_trip() {
        let dir = std::env::temp_dir().join("branchnet-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.bntr");
        let t = sample_trace();
        save_trace(&path, &t).unwrap();
        assert_eq!(load_trace(&path).unwrap(), t);
        std::fs::remove_file(&path).ok();
    }

    /// Names of leftover `.tmp.<pid>.<seq>` siblings in `dir`.
    fn orphaned_temporaries(dir: &std::path::Path) -> Vec<String> {
        std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|name| name.contains(".tmp."))
            .collect()
    }

    #[test]
    fn save_trace_leaves_no_temporary_behind() {
        let dir = std::env::temp_dir().join("branchnet-trace-io-atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("a.bntr");
        save_trace(&path, &sample_trace()).unwrap();
        assert!(path.exists());
        assert_eq!(orphaned_temporaries(&dir), Vec::<String>::new());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_atomic_write_preserves_the_previous_artifact() {
        let dir = std::env::temp_dir().join("branchnet-trace-io-atomic-fail");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("b.bntr");
        let t = sample_trace();
        save_trace(&path, &t).unwrap();
        // A writer that dies mid-artifact must leave the good file
        // untouched and clean up its temporary.
        let err = atomic_write(&path, |w| {
            w.write_all(b"partial")?;
            Err(io::Error::other("injected mid-write failure"))
        });
        assert!(err.is_err());
        assert_eq!(orphaned_temporaries(&dir), Vec::<String>::new());
        assert_eq!(load_trace(&path).unwrap(), t, "previous artifact must survive");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_atomic_writes_to_one_path_leave_a_complete_artifact() {
        // Two racing writers must not share a temp file: whichever
        // rename lands last wins, but the surviving file is always one
        // writer's complete payload, never an interleaving.
        let dir = std::env::temp_dir().join("branchnet-trace-io-atomic-race");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.bntr");
        let traces: Vec<Trace> = (0..2)
            .map(|i| {
                let mut t = Trace::with_label(format!("writer-{i}"), 1.0);
                for j in 0..50u64 {
                    t.push(BranchRecord::conditional(0x1000 + j * 8, (j + i) % 2 == 0));
                }
                t
            })
            .collect();
        std::thread::scope(|s| {
            for t in &traces {
                s.spawn(|| save_trace(&path, t).unwrap());
            }
        });
        let survivor = load_trace(&path).unwrap();
        assert!(traces.contains(&survivor), "survivor must be one complete payload");
        assert_eq!(orphaned_temporaries(&dir), Vec::<String>::new());
        std::fs::remove_file(&path).ok();
    }
}
