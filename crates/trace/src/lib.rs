//! Branch-trace infrastructure for the BranchNet reproduction.
//!
//! This crate provides the substrate every other crate builds on:
//!
//! * [`record`] — the [`BranchRecord`](record::BranchRecord) unit of a
//!   trace and the [`BranchKind`](record::BranchKind) taxonomy,
//! * [`trace`] — in-memory [`Trace`](trace::Trace) containers and the
//!   train/validation/test [`TraceSet`](trace::TraceSet) partitioning used
//!   by the offline-training methodology (Table III of the paper),
//! * [`history`] — global direction history, path history, the
//!   cyclic-shift-register *folded* histories TAGE uses for indexing, and
//!   the `p`-bit-PC ⊕ direction encoding BranchNet consumes,
//! * [`stats`] — per-branch accuracy accounting, MPKI computation, and
//!   hard-to-predict branch ranking,
//! * [`predict`] — the object-safe [`Predictor`](predict::Predictor)
//!   contract every prediction stack (TAGE baselines, CNN hybrids)
//!   implements,
//! * [`gauntlet`] — the [`Gauntlet`](gauntlet::Gauntlet), which drives
//!   N predictors over a trace in a single pass,
//! * [`conformance`] — the universal predictor-conformance contracts
//!   (gauntlet==solo, flush==fresh, determinism, storage honesty) and
//!   the [`predictor_conformance!`] macro that instantiates them as a
//!   test suite for any predictor,
//! * [`fault`] — deterministic fault injection
//!   ([`FaultPlan`](fault::FaultPlan), corrupting `Read`/`Write`
//!   wrappers) for chaos-testing every consumer of untrusted bytes.
//!
//! # Example
//!
//! ```
//! use branchnet_trace::record::BranchRecord;
//! use branchnet_trace::trace::Trace;
//!
//! let mut trace = Trace::new();
//! trace.push(BranchRecord::conditional(0x400_100, true));
//! trace.push(BranchRecord::conditional(0x400_200, false));
//! assert_eq!(trace.len(), 2);
//! assert_eq!(trace.records()[0].pc, 0x400_100);
//! ```

pub mod conformance;
pub mod fault;
pub mod gauntlet;
pub mod history;
pub mod io;
pub mod predict;
pub mod record;
pub mod stats;
pub mod trace;

pub use fault::{CorruptingReader, CorruptingWriter, Fault, FaultPlan};
pub use gauntlet::{run_one, run_one_per_branch, Gauntlet, LaneResult};
pub use history::{FoldedHistory, GlobalHistory, HistoryRegister, PathHistory};
pub use io::{atomic_write, load_trace, read_trace, save_trace, write_trace, ReadTraceError};
pub use predict::{AlwaysTaken, Predictor, StaticBias};
pub use record::{BranchKind, BranchRecord};
pub use stats::{BranchStats, MispredictionRanking, PredictionStats};
pub use trace::{Trace, TraceSet};
