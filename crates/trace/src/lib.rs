//! Branch-trace infrastructure for the BranchNet reproduction.
//!
//! This crate provides the substrate every other crate builds on:
//!
//! * [`record`] — the [`BranchRecord`](record::BranchRecord) unit of a
//!   trace and the [`BranchKind`](record::BranchKind) taxonomy,
//! * [`trace`] — in-memory [`Trace`](trace::Trace) containers and the
//!   train/validation/test [`TraceSet`](trace::TraceSet) partitioning used
//!   by the offline-training methodology (Table III of the paper),
//! * [`history`] — global direction history, path history, the
//!   cyclic-shift-register *folded* histories TAGE uses for indexing, and
//!   the `p`-bit-PC ⊕ direction encoding BranchNet consumes,
//! * [`stats`] — per-branch accuracy accounting, MPKI computation, and
//!   hard-to-predict branch ranking.
//!
//! # Example
//!
//! ```
//! use branchnet_trace::record::BranchRecord;
//! use branchnet_trace::trace::Trace;
//!
//! let mut trace = Trace::new();
//! trace.push(BranchRecord::conditional(0x400_100, true));
//! trace.push(BranchRecord::conditional(0x400_200, false));
//! assert_eq!(trace.len(), 2);
//! assert_eq!(trace.records()[0].pc, 0x400_100);
//! ```

pub mod history;
pub mod io;
pub mod record;
pub mod stats;
pub mod trace;

pub use history::{FoldedHistory, GlobalHistory, HistoryRegister, PathHistory};
pub use io::{load_trace, read_trace, save_trace, write_trace, ReadTraceError};
pub use record::{BranchKind, BranchRecord};
pub use stats::{BranchStats, MispredictionRanking, PredictionStats};
pub use trace::{Trace, TraceSet};
