//! The [`Predictor`] contract every prediction stack implements.
//!
//! This lives in the trace crate — the lowest layer of the workspace —
//! so runtime baselines (`branchnet-tage`), CNN hybrids
//! (`branchnet-core`), and the timing model (`branchnet-sim`) can all
//! implement and consume the same object-safe trait. Evaluation is
//! driven by the [`Gauntlet`](crate::gauntlet::Gauntlet), which runs
//! any number of predictors over a trace in a single pass.

use crate::record::BranchRecord;
use crate::trace::Trace;

/// A runtime conditional-branch predictor.
///
/// Predictors are driven in trace order: for every conditional branch,
/// [`predict`](Predictor::predict) is called first, then
/// [`update`](Predictor::update) with the resolved record. Predictors
/// may stash lookup state between the two calls (the usual
/// championship-simulator contract). Non-conditional control flow is
/// reported through [`note_unconditional`](Predictor::note_unconditional)
/// so history registers stay realistic.
pub trait Predictor {
    /// Predicts the direction of the conditional branch at `pc`.
    fn predict(&mut self, pc: u64) -> bool;

    /// Trains on the resolved branch. `predicted` must be the value
    /// this predictor returned from the immediately preceding
    /// [`predict`](Predictor::predict) call for the same branch.
    fn update(&mut self, record: &BranchRecord, predicted: bool);

    /// Observes a non-conditional control-flow instruction (shifts
    /// path/target histories in predictors that keep them).
    fn note_unconditional(&mut self, record: &BranchRecord) {
        let _ = record;
    }

    /// Discards all runtime-learned state, returning the predictor to
    /// exactly its freshly-constructed state (tables, histories,
    /// adaptive thresholds). Offline-derived configuration — profile
    /// tables, frozen CNN weights, sizing — survives. Used between
    /// traces for cold-start (per-SimPoint) evaluation.
    fn flush(&mut self) {}

    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Modeled hardware budget in bits (0 when not meaningful, e.g.
    /// for oracle or unlimited predictors).
    fn storage_bits(&self) -> u64 {
        0
    }
}

impl<P: Predictor + ?Sized> Predictor for &mut P {
    fn predict(&mut self, pc: u64) -> bool {
        (**self).predict(pc)
    }
    fn update(&mut self, record: &BranchRecord, predicted: bool) {
        (**self).update(record, predicted);
    }
    fn note_unconditional(&mut self, record: &BranchRecord) {
        (**self).note_unconditional(record);
    }
    fn flush(&mut self) {
        (**self).flush();
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn storage_bits(&self) -> u64 {
        (**self).storage_bits()
    }
}

impl<P: Predictor + ?Sized> Predictor for Box<P> {
    fn predict(&mut self, pc: u64) -> bool {
        (**self).predict(pc)
    }
    fn update(&mut self, record: &BranchRecord, predicted: bool) {
        (**self).update(record, predicted);
    }
    fn note_unconditional(&mut self, record: &BranchRecord) {
        (**self).note_unconditional(record);
    }
    fn flush(&mut self) {
        (**self).flush();
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn storage_bits(&self) -> u64 {
        (**self).storage_bits()
    }
}

/// A trivial predictor that always predicts taken. Useful as a floor
/// in tests and as the "static bias" strawman of Section II-B.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysTaken;

impl Predictor for AlwaysTaken {
    fn predict(&mut self, _pc: u64) -> bool {
        true
    }
    fn update(&mut self, _record: &BranchRecord, _predicted: bool) {}
    fn name(&self) -> &'static str {
        "always-taken"
    }
}

/// A profile-derived static-bias predictor: predicts each static
/// branch's majority direction as measured on a profiling trace
/// (Section II-B's "static branch biases" offline technique). The
/// profile is offline configuration, so [`Predictor::flush`] keeps it.
#[derive(Debug, Clone, Default)]
pub struct StaticBias {
    bias: std::collections::HashMap<u64, bool>,
}

impl StaticBias {
    /// Profiles `trace` and records each branch's majority direction.
    #[must_use]
    pub fn from_profile(trace: &Trace) -> Self {
        let mut counts: std::collections::HashMap<u64, (u64, u64)> =
            std::collections::HashMap::new();
        for r in trace.iter().filter(|r| r.kind.is_conditional()) {
            let e = counts.entry(r.pc).or_default();
            if r.taken {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
        Self { bias: counts.into_iter().map(|(pc, (t, n))| (pc, t >= n)).collect() }
    }
}

impl Predictor for StaticBias {
    fn predict(&mut self, pc: u64) -> bool {
        self.bias.get(&pc).copied().unwrap_or(true)
    }
    fn update(&mut self, _record: &BranchRecord, _predicted: bool) {}
    fn name(&self) -> &'static str {
        "static-bias"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gauntlet::run_one;

    #[test]
    fn static_bias_learns_majority_direction() {
        let mut t = Trace::new();
        for i in 0..100 {
            t.push(BranchRecord::conditional(0x10, i % 10 != 0)); // 90% taken
            t.push(BranchRecord::conditional(0x20, i % 10 == 0)); // 10% taken
        }
        let mut sb = StaticBias::from_profile(&t);
        assert!(sb.predict(0x10));
        assert!(!sb.predict(0x20));
        assert!(sb.predict(0x999), "unseen branches default to taken");
        let stats = run_one(&mut StaticBias::from_profile(&t), &t);
        assert!((stats.accuracy() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn static_bias_profile_survives_flush() {
        let t: Trace = (0..50).map(|_| BranchRecord::conditional(0x10, false)).collect();
        let mut sb = StaticBias::from_profile(&t);
        sb.flush();
        assert!(!sb.predict(0x10), "profile is offline state and must survive flush");
    }

    #[test]
    fn blanket_impls_forward_everything() {
        let mut p = AlwaysTaken;
        let by_ref: &mut dyn Predictor = &mut p;
        let mut boxed: Box<dyn Predictor> = Box::new(AlwaysTaken);
        assert!(boxed.predict(0x40));
        assert_eq!(boxed.name(), "always-taken");
        assert_eq!(boxed.storage_bits(), 0);
        let wrapped = by_ref;
        assert!(wrapped.predict(0x40));
        wrapped.flush();
        boxed.flush();
    }
}
