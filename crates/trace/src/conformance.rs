//! The universal predictor-conformance suite.
//!
//! Every predictor that enters the experiment lineup must uphold the
//! same four contracts, regardless of its internals:
//!
//! 1. **Gauntlet == solo** — a lane inside a multi-lane [`Gauntlet`]
//!    produces bit-identical statistics to a solo [`run_one`] pass
//!    (lanes never interact);
//! 2. **Flush == fresh** — [`Predictor::flush`] restores exactly the
//!    freshly-constructed behavior;
//! 3. **Determinism** — two fresh instances replaying the same trace
//!    agree bit for bit, down to per-branch statistics;
//! 4. **Storage honesty** — [`Predictor::storage_bits`] is non-zero,
//!    within the nominal budget, and constant at runtime.
//!
//! The assertion helpers here are plain panicking functions so they
//! compose with any harness; the [`predictor_conformance!`] macro
//! wraps them in a ready-made property-test module for one predictor.
//! Test crates instantiate the macro once per lineup entry, which is
//! what the dedicated conformance CI step runs.

use crate::gauntlet::{run_one, run_one_per_branch, Gauntlet};
use crate::predict::{AlwaysTaken, Predictor};
use crate::record::{BranchKind, BranchRecord};
use crate::trace::Trace;

/// Builds a mixed conditional/unconditional trace from an op stream:
/// each `(slot, taken)` becomes a branch at a slot-derived PC, and
/// every third slot is an unconditional jump (exercising
/// [`Predictor::note_unconditional`]).
#[must_use]
pub fn mixed_trace(ops: &[(u8, bool)]) -> Trace {
    ops.iter()
        .map(|&(slot, taken)| {
            let pc = 0x4000 + u64::from(slot) * 32;
            if slot % 3 == 0 {
                BranchRecord::unconditional(pc, pc + 64, BranchKind::Jump)
            } else {
                BranchRecord::conditional(pc, taken)
            }
        })
        .collect()
}

/// Contract 1: driving the predictor as one lane of a multi-lane
/// gauntlet (companion lanes before *and* after it) yields statistics
/// bit-identical to a solo [`run_one`] pass.
pub fn assert_gauntlet_matches_solo(build: &dyn Fn() -> Box<dyn Predictor>, trace: &Trace) {
    let solo = run_one(build().as_mut(), trace);

    let mut gauntlet = Gauntlet::new();
    gauntlet.add(AlwaysTaken);
    let lane = gauntlet.add_boxed(build());
    let twin = gauntlet.add_boxed(build());
    gauntlet.add(AlwaysTaken);
    gauntlet.run(trace);
    let name = build().name();
    assert_eq!(gauntlet.stats(lane), &solo, "{name}: gauntlet lane diverged from solo run");
    assert_eq!(
        gauntlet.stats(twin),
        &solo,
        "{name}: twin lane diverged — lanes are not independent"
    );
}

/// Contract 2: after arbitrary warm-up, [`Predictor::flush`] restores
/// exactly the freshly-constructed behavior on a replay trace, down to
/// per-branch statistics.
pub fn assert_flush_recovers_cold_start(
    build: &dyn Fn() -> Box<dyn Predictor>,
    warmup: &Trace,
    replay: &Trace,
) {
    let mut warmed = build();
    run_one(warmed.as_mut(), warmup);
    warmed.flush();
    let after_flush = run_one_per_branch(warmed.as_mut(), replay);
    let from_new = run_one_per_branch(build().as_mut(), replay);
    assert_eq!(after_flush, from_new, "{}: flush must equal fresh construction", warmed.name());
}

/// Contract 3: prediction is a deterministic function of the trace —
/// two fresh instances replaying the same records agree bit for bit.
pub fn assert_deterministic_replay(build: &dyn Fn() -> Box<dyn Predictor>, trace: &Trace) {
    let first = run_one_per_branch(build().as_mut(), trace);
    let second = run_one_per_branch(build().as_mut(), trace);
    assert_eq!(first, second, "{}: replay must be deterministic", build().name());
}

/// Contract 4: `storage_bits` reports a cost within `budget_bits`,
/// and the figure does not drift as the predictor runs (hardware does
/// not grow tables at runtime). Zero is allowed — the trait documents
/// it as "not meaningful" for oracle/static predictors.
pub fn assert_storage_within(build: &dyn Fn() -> Box<dyn Predictor>, budget_bits: u64) {
    let mut p = build();
    let nominal = p.storage_bits();
    assert!(
        nominal <= budget_bits,
        "{}: {nominal} bits exceeds the nominal budget of {budget_bits}",
        p.name()
    );
    let ops: Vec<(u8, bool)> = (0..64u8).map(|i| (i % 6, i % 5 < 2)).collect();
    run_one(p.as_mut(), &mixed_trace(&ops));
    assert_eq!(p.storage_bits(), nominal, "{}: storage drifted at runtime", p.name());
}

/// Instantiates the full conformance suite for one predictor.
///
/// Expands to a test module named `$mod_name` containing property
/// tests for the four contracts documented at
/// [module level](self). The caller's crate must have `proptest` as a
/// dev-dependency (the workspace's vendored mini-proptest).
///
/// ```
/// use branchnet_trace::{predictor_conformance, StaticBias};
///
/// predictor_conformance!(static_bias, 128, || Box::new(StaticBias::default()));
/// # fn main() {}
/// ```
#[macro_export]
macro_rules! predictor_conformance {
    ($mod_name:ident, $budget_bits:expr, $build:expr) => {
        mod $mod_name {
            #[allow(unused_imports)]
            use super::*;

            fn build() -> Box<dyn $crate::Predictor> {
                ($build)()
            }

            ::proptest::proptest! {
                #![proptest_config(::proptest::ProptestConfig::with_cases(16))]

                #[test]
                fn gauntlet_pass_matches_solo_run(
                    ops in ::proptest::collection::vec((0u8..6, ::proptest::any::<bool>()), 1..200)
                ) {
                    let trace = $crate::conformance::mixed_trace(&ops);
                    $crate::conformance::assert_gauntlet_matches_solo(&build, &trace);
                }

                #[test]
                fn flush_equals_fresh_construction(
                    warmup in ::proptest::collection::vec((0u8..6, ::proptest::any::<bool>()), 1..150),
                    replay in ::proptest::collection::vec((0u8..6, ::proptest::any::<bool>()), 1..150),
                ) {
                    $crate::conformance::assert_flush_recovers_cold_start(
                        &build,
                        &$crate::conformance::mixed_trace(&warmup),
                        &$crate::conformance::mixed_trace(&replay),
                    );
                }

                #[test]
                fn replay_is_deterministic(
                    ops in ::proptest::collection::vec((0u8..6, ::proptest::any::<bool>()), 1..200)
                ) {
                    let trace = $crate::conformance::mixed_trace(&ops);
                    $crate::conformance::assert_deterministic_replay(&build, &trace);
                }
            }

            #[test]
            pub fn storage_bits_within_nominal_budget() {
                $crate::conformance::assert_storage_within(&build, $budget_bits);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predict::StaticBias;

    #[test]
    fn mixed_trace_interleaves_unconditional_jumps() {
        let ops: Vec<(u8, bool)> = (0..12u8).map(|i| (i % 6, i % 2 == 0)).collect();
        let trace = mixed_trace(&ops);
        assert_eq!(trace.len(), 12);
        assert!(trace.records().iter().any(|r| !r.kind.is_conditional()));
        assert!(trace.records().iter().any(|r| r.kind.is_conditional()));
    }

    #[test]
    fn helpers_accept_the_simplest_predictors() {
        let build: &dyn Fn() -> Box<dyn Predictor> = &|| Box::new(AlwaysTaken);
        let ops: Vec<(u8, bool)> = (0..40u8).map(|i| (i % 6, i % 3 == 0)).collect();
        let trace = mixed_trace(&ops);
        assert_gauntlet_matches_solo(build, &trace);
        assert_deterministic_replay(build, &trace);
        assert_flush_recovers_cold_start(build, &trace, &trace);
    }

    #[test]
    fn zero_storage_predictors_pass_within_any_budget() {
        assert_storage_within(&|| Box::new(AlwaysTaken), 0);
        assert_storage_within(&|| Box::new(StaticBias::default()), 64);
    }

    /// A deliberately dishonest predictor: claims more storage than
    /// its budget, and grows it as it trains.
    struct Dishonest {
        bits: u64,
    }

    impl Predictor for Dishonest {
        fn predict(&mut self, _pc: u64) -> bool {
            true
        }
        fn update(&mut self, _record: &BranchRecord, _predicted: bool) {
            self.bits += 1;
        }
        fn name(&self) -> &'static str {
            "dishonest"
        }
        fn storage_bits(&self) -> u64 {
            self.bits
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the nominal budget")]
    fn over_budget_storage_is_rejected() {
        assert_storage_within(&|| Box::new(Dishonest { bits: 100 }), 64);
    }

    #[test]
    #[should_panic(expected = "storage drifted at runtime")]
    fn runtime_storage_drift_is_rejected() {
        assert_storage_within(&|| Box::new(Dishonest { bits: 10 }), 1 << 40);
    }
}
