//! Prediction-accuracy accounting: accuracy, MPKI, and hard-to-predict
//! branch ranking.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Aggregate prediction statistics over a stream of conditional
/// branches. Counters are `f64` so traces can be merged with SimPoint
/// weights (paper Section VI-A).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PredictionStats {
    predictions: f64,
    mispredictions: f64,
    instructions: f64,
}

impl PredictionStats {
    /// Creates zeroed statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds statistics from raw counters — e.g. derived from a
    /// timing simulation that already counted branches,
    /// mispredictions, and instructions on the same predictor
    /// sequence.
    #[must_use]
    pub fn from_counts(predictions: f64, mispredictions: f64, instructions: f64) -> Self {
        Self { predictions, mispredictions, instructions }
    }

    /// Records one predicted branch: whether the prediction was
    /// `correct` and how many non-branch instructions (`inst_gap`)
    /// preceded it.
    pub fn record(&mut self, correct: bool, inst_gap: u16) {
        self.predictions += 1.0;
        if !correct {
            self.mispredictions += 1.0;
        }
        self.instructions += 1.0 + f64::from(inst_gap);
    }

    /// Records instructions that carried no conditional branch (e.g.
    /// unconditional control flow in the trace).
    pub fn record_instructions(&mut self, count: u64) {
        self.instructions += count as f64;
    }

    /// Adds `other` scaled by `weight` into `self`.
    pub fn merge_weighted(&mut self, other: &PredictionStats, weight: f64) {
        self.predictions += other.predictions * weight;
        self.mispredictions += other.mispredictions * weight;
        self.instructions += other.instructions * weight;
    }

    /// Adds `other` with unit weight.
    pub fn merge(&mut self, other: &PredictionStats) {
        self.merge_weighted(other, 1.0);
    }

    /// Number of predictions (possibly weighted).
    #[must_use]
    pub fn predictions(&self) -> f64 {
        self.predictions
    }

    /// Number of mispredictions (possibly weighted).
    #[must_use]
    pub fn mispredictions(&self) -> f64 {
        self.mispredictions
    }

    /// Instructions covered (possibly weighted).
    #[must_use]
    pub fn instructions(&self) -> f64 {
        self.instructions
    }

    /// Fraction of correct predictions; 1.0 when nothing was predicted.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0.0 {
            1.0
        } else {
            1.0 - self.mispredictions / self.predictions
        }
    }

    /// Mispredictions per kilo-instruction — the paper's headline
    /// metric; 0.0 when no instructions were recorded.
    #[must_use]
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0.0 {
            0.0
        } else {
            1000.0 * self.mispredictions / self.instructions
        }
    }
}

/// Per-static-branch prediction statistics, keyed by PC. Used to rank
/// the 100 highest-MPKI branches in the validation set (paper
/// Section V-E) and to report per-branch accuracies (Fig. 10).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BranchStats {
    per_pc: HashMap<u64, PredictionStats>,
    totals: PredictionStats,
}

impl BranchStats {
    /// Creates empty per-branch statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one prediction for the branch at `pc`.
    pub fn record(&mut self, pc: u64, correct: bool, inst_gap: u16) {
        self.per_pc.entry(pc).or_default().record(correct, inst_gap);
        self.totals.record(correct, inst_gap);
    }

    /// Statistics for one static branch, if it was ever seen.
    #[must_use]
    pub fn get(&self, pc: u64) -> Option<&PredictionStats> {
        self.per_pc.get(&pc)
    }

    /// Aggregate statistics across all branches.
    #[must_use]
    pub fn totals(&self) -> &PredictionStats {
        &self.totals
    }

    /// Number of distinct static branches seen.
    #[must_use]
    pub fn static_branch_count(&self) -> usize {
        self.per_pc.len()
    }

    /// Ranks static branches by absolute misprediction count,
    /// descending — the paper's proxy for per-branch MPKI contribution
    /// (shared instruction denominator). Ties break by PC for
    /// determinism.
    #[must_use]
    pub fn rank_by_mispredictions(&self) -> MispredictionRanking {
        let mut entries: Vec<(u64, PredictionStats)> =
            self.per_pc.iter().map(|(pc, s)| (*pc, *s)).collect();
        entries.sort_by(|a, b| {
            b.1.mispredictions()
                .partial_cmp(&a.1.mispredictions())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        MispredictionRanking { entries, total_instructions: self.totals.instructions() }
    }

    /// Iterates over `(pc, stats)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &PredictionStats)> {
        self.per_pc.iter().map(|(pc, s)| (*pc, s))
    }

    /// Merges another accumulation into this one (e.g. per-trace
    /// evaluations combined across a validation set).
    pub fn merge(&mut self, other: &BranchStats) {
        for (pc, s) in other.iter() {
            self.per_pc.entry(pc).or_default().merge(s);
        }
        self.totals.merge(&other.totals);
    }
}

/// Static branches ordered most-mispredicted first.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MispredictionRanking {
    entries: Vec<(u64, PredictionStats)>,
    total_instructions: f64,
}

impl MispredictionRanking {
    /// The `k` most-mispredicted branch PCs.
    #[must_use]
    pub fn top_pcs(&self, k: usize) -> Vec<u64> {
        self.entries.iter().take(k).map(|(pc, _)| *pc).collect()
    }

    /// All ranked `(pc, stats)` entries, most-mispredicted first.
    #[must_use]
    pub fn entries(&self) -> &[(u64, PredictionStats)] {
        &self.entries
    }

    /// MPKI contributed by the top `k` branches alone: the
    /// mispredictions that would vanish if those branches became
    /// perfectly predicted (the Fig. 1 headroom decomposition).
    #[must_use]
    pub fn mpki_of_top(&self, k: usize) -> f64 {
        if self.total_instructions == 0.0 {
            return 0.0;
        }
        let mis: f64 = self.entries.iter().take(k).map(|(_, s)| s.mispredictions()).sum();
        1000.0 * mis / self.total_instructions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_of_empty_stats_is_one() {
        assert!((PredictionStats::new().accuracy() - 1.0).abs() < f64::EPSILON);
        assert_eq!(PredictionStats::new().mpki(), 0.0);
    }

    #[test]
    fn mpki_counts_mispredictions_per_kilo_instruction() {
        let mut s = PredictionStats::new();
        // 10 branches, each preceded by 99 instructions => 1000 insts.
        for i in 0..10 {
            s.record(i % 2 == 0, 99);
        }
        assert!((s.instructions() - 1000.0).abs() < f64::EPSILON);
        assert!((s.mpki() - 5.0).abs() < 1e-12);
        assert!((s.accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_weighted_scales_all_counters() {
        let mut a = PredictionStats::new();
        a.record(false, 9);
        let mut agg = PredictionStats::new();
        agg.merge_weighted(&a, 3.0);
        assert!((agg.predictions() - 3.0).abs() < f64::EPSILON);
        assert!((agg.mispredictions() - 3.0).abs() < f64::EPSILON);
        assert!((agg.instructions() - 30.0).abs() < f64::EPSILON);
    }

    #[test]
    fn merge_weighted_zero_instruction_stats_stay_finite() {
        // A trace can contain zero conditional branches (and even zero
        // instructions); merging such stats at any weight must leave
        // the aggregate's derived metrics finite and unchanged.
        let empty = PredictionStats::new();
        let mut agg = PredictionStats::new();
        agg.merge_weighted(&empty, 7.5);
        assert_eq!(agg, PredictionStats::new());
        assert_eq!(agg.mpki(), 0.0);
        assert!((agg.accuracy() - 1.0).abs() < f64::EPSILON);

        // And in the other direction: real stats merged into an empty
        // aggregate with weight 0.0 contribute nothing.
        let mut real = PredictionStats::new();
        real.record(false, 99);
        agg.merge_weighted(&real, 0.0);
        assert_eq!(agg, PredictionStats::new());
        assert_eq!(agg.mpki(), 0.0);
    }

    #[test]
    fn merge_weighted_accumulates_mixed_weights() {
        // SimPoint-style aggregation: two traces with different
        // weights; MPKI of the aggregate is the weighted-misprediction
        // over weighted-instruction ratio, not a mean of per-trace
        // MPKIs.
        let mut t1 = PredictionStats::new();
        t1.record(false, 99); // 1 mispredict / 100 insts
        let mut t2 = PredictionStats::new();
        t2.record(true, 399); // 0 mispredicts / 400 insts

        let mut agg = PredictionStats::new();
        agg.merge_weighted(&t1, 2.0);
        agg.merge_weighted(&t2, 1.0);
        assert!((agg.predictions() - 3.0).abs() < f64::EPSILON);
        assert!((agg.mispredictions() - 2.0).abs() < f64::EPSILON);
        assert!((agg.instructions() - 600.0).abs() < f64::EPSILON);
        // 2 mispredicts per 600 insts = 10/3 MPKI.
        assert!((agg.mpki() - 1000.0 * 2.0 / 600.0).abs() < 1e-12);
    }

    #[test]
    fn ranking_orders_by_misprediction_count() {
        let mut bs = BranchStats::new();
        // pc 0x10: 3 mispredicts; pc 0x20: 1; pc 0x30: 0.
        for _ in 0..3 {
            bs.record(0x10, false, 0);
        }
        bs.record(0x20, false, 0);
        bs.record(0x30, true, 0);
        let ranking = bs.rank_by_mispredictions();
        assert_eq!(ranking.top_pcs(2), vec![0x10, 0x20]);
        assert_eq!(ranking.top_pcs(10), vec![0x10, 0x20, 0x30]);
    }

    #[test]
    fn mpki_of_top_is_headroom_decomposition() {
        let mut bs = BranchStats::new();
        // 4 branches, 1 inst_gap each => 4 * 2 = 8 instructions? gap=249
        // Use gap so totals are 1000 instructions: 4 * 250 = 1000.
        bs.record(0x10, false, 249);
        bs.record(0x10, false, 249);
        bs.record(0x20, false, 249);
        bs.record(0x30, true, 249);
        let r = bs.rank_by_mispredictions();
        assert!((r.mpki_of_top(1) - 2.0).abs() < 1e-12);
        assert!((r.mpki_of_top(2) - 3.0).abs() < 1e-12);
        assert!((bs.totals().mpki() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn ranking_ties_break_by_pc() {
        let mut bs = BranchStats::new();
        bs.record(0x30, false, 0);
        bs.record(0x10, false, 0);
        bs.record(0x20, false, 0);
        assert_eq!(bs.rank_by_mispredictions().top_pcs(3), vec![0x10, 0x20, 0x30]);
    }

    #[test]
    fn static_branch_count_tracks_distinct_pcs() {
        let mut bs = BranchStats::new();
        bs.record(1, true, 0);
        bs.record(1, false, 0);
        bs.record(2, true, 0);
        assert_eq!(bs.static_branch_count(), 2);
    }
}
