//! The unit of a branch trace: one dynamic branch instance.

use serde::{Deserialize, Serialize};

/// Classification of a control-flow instruction.
///
/// The BranchNet paper (and TAGE-SC-L) primarily predicts *conditional*
/// branches; other kinds still shift the path history and are kept in
/// traces so history contents are realistic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum BranchKind {
    /// A conditional direct branch (the prediction target).
    #[default]
    Conditional,
    /// An unconditional direct jump.
    Jump,
    /// A direct call.
    Call,
    /// A return.
    Return,
    /// An indirect jump or call.
    Indirect,
}

impl BranchKind {
    /// Whether this kind of branch has a direction to predict.
    #[must_use]
    pub fn is_conditional(self) -> bool {
        matches!(self, BranchKind::Conditional)
    }
}

/// One dynamic branch occurrence in a program trace.
///
/// `pc` is the address of the branch instruction, `target` the address
/// control went to when taken (used only for path history), and `taken`
/// the resolved direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchRecord {
    /// Address of the branch instruction.
    pub pc: u64,
    /// Resolved direction (always `true` for unconditional kinds).
    pub taken: bool,
    /// Branch target address when taken.
    pub target: u64,
    /// Kind of control-flow instruction.
    pub kind: BranchKind,
    /// Number of non-branch instructions retired since the previous
    /// branch. Used for instruction counting (MPKI) and IPC simulation.
    pub inst_gap: u16,
}

impl BranchRecord {
    /// Creates a conditional branch record with a default fall-through
    /// style target and a small instruction gap.
    ///
    /// ```
    /// use branchnet_trace::record::BranchRecord;
    /// let r = BranchRecord::conditional(0x1000, true);
    /// assert!(r.kind.is_conditional());
    /// assert!(r.taken);
    /// ```
    #[must_use]
    pub fn conditional(pc: u64, taken: bool) -> Self {
        Self { pc, taken, target: pc.wrapping_add(16), kind: BranchKind::Conditional, inst_gap: 4 }
    }

    /// Creates a conditional branch record with an explicit instruction
    /// gap since the previous branch.
    #[must_use]
    pub fn conditional_with_gap(pc: u64, taken: bool, inst_gap: u16) -> Self {
        Self { inst_gap, ..Self::conditional(pc, taken) }
    }

    /// Creates an unconditional branch record of the given kind.
    #[must_use]
    pub fn unconditional(pc: u64, target: u64, kind: BranchKind) -> Self {
        debug_assert!(!kind.is_conditional());
        Self { pc, taken: true, target, kind, inst_gap: 4 }
    }

    /// The `(p+1)`-bit integer encoding used as BranchNet's CNN input:
    /// the low `pc_bits` of the PC concatenated with the direction bit
    /// (direction in the least-significant position).
    ///
    /// ```
    /// use branchnet_trace::record::BranchRecord;
    /// let r = BranchRecord::conditional(0b1010_1100, true);
    /// assert_eq!(r.encode(4), 0b1100_1 );
    /// ```
    #[must_use]
    pub fn encode(&self, pc_bits: u32) -> u32 {
        let mask = (1u64 << pc_bits) - 1;
        (((self.pc & mask) as u32) << 1) | u32::from(self.taken)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conditional_constructor_sets_kind() {
        let r = BranchRecord::conditional(0x42, false);
        assert_eq!(r.kind, BranchKind::Conditional);
        assert!(!r.taken);
        assert_eq!(r.pc, 0x42);
    }

    #[test]
    fn unconditional_is_always_taken() {
        let r = BranchRecord::unconditional(0x10, 0x80, BranchKind::Call);
        assert!(r.taken);
        assert_eq!(r.target, 0x80);
    }

    #[test]
    fn encode_packs_pc_and_direction() {
        let taken = BranchRecord::conditional(0xFFF, true);
        let not = BranchRecord::conditional(0xFFF, false);
        assert_eq!(taken.encode(12), (0xFFF << 1) | 1);
        assert_eq!(not.encode(12), 0xFFF << 1);
        // Only low bits of the PC participate.
        let high = BranchRecord::conditional(0xABCD_1234, true);
        assert_eq!(high.encode(8), (0x34 << 1) | 1);
    }

    #[test]
    fn encode_fits_in_p_plus_one_bits() {
        for pc in [0u64, 1, 0xFFFF_FFFF, u64::MAX] {
            for taken in [false, true] {
                let mut r = BranchRecord::conditional(pc, taken);
                r.taken = taken;
                let e = r.encode(12);
                assert!(e < (1 << 13));
            }
        }
    }

    #[test]
    fn branch_kind_conditional_check() {
        assert!(BranchKind::Conditional.is_conditional());
        for k in [BranchKind::Jump, BranchKind::Call, BranchKind::Return, BranchKind::Indirect] {
            assert!(!k.is_conditional());
        }
    }
}
