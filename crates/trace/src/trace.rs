//! Trace containers and the offline-training partitioning.

use crate::record::BranchRecord;
use crate::stats::PredictionStats;
use serde::{Deserialize, Serialize};

/// An in-memory branch trace: the sequence of dynamic branches retired
/// by one run of a program (one "input"), in program order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<BranchRecord>,
    /// SimPoint-style weight of this trace when aggregating statistics
    /// across traces (paper Section VI-A). Defaults to 1.0.
    weight: f64,
    /// Human-readable label, e.g. the workload input that produced it.
    label: String,
}

impl Trace {
    /// Creates an empty, unit-weight trace.
    #[must_use]
    pub fn new() -> Self {
        Self { records: Vec::new(), weight: 1.0, label: String::new() }
    }

    /// Creates an empty trace with a label and SimPoint weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not finite and positive.
    #[must_use]
    pub fn with_label(label: impl Into<String>, weight: f64) -> Self {
        assert!(weight.is_finite() && weight > 0.0, "trace weight must be positive");
        Self { records: Vec::new(), weight, label: label.into() }
    }

    /// Creates an empty, unit-weight trace whose record storage is
    /// pre-allocated for `capacity` records (trace generators know
    /// their branch budget up front, so synthesis never reallocates).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self { records: Vec::with_capacity(capacity), weight: 1.0, label: String::new() }
    }

    /// Reserves capacity for at least `additional` more records.
    pub fn reserve(&mut self, additional: usize) {
        self.records.reserve(additional);
    }

    /// Appends a record.
    pub fn push(&mut self, record: BranchRecord) {
        self.records.push(record);
    }

    /// The recorded branches in program order.
    #[must_use]
    pub fn records(&self) -> &[BranchRecord] {
        &self.records
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// SimPoint weight of this trace.
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Label describing the producing input.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Total retired instructions represented by this trace (branches
    /// plus their `inst_gap` preambles); the MPKI denominator.
    #[must_use]
    pub fn instruction_count(&self) -> u64 {
        self.records.iter().map(|r| 1 + u64::from(r.inst_gap)).sum()
    }

    /// Iterates over records.
    pub fn iter(&self) -> std::slice::Iter<'_, BranchRecord> {
        self.records.iter()
    }
}

impl FromIterator<BranchRecord> for Trace {
    fn from_iter<T: IntoIterator<Item = BranchRecord>>(iter: T) -> Self {
        Self { records: iter.into_iter().collect(), weight: 1.0, label: String::new() }
    }
}

impl Extend<BranchRecord> for Trace {
    fn extend<T: IntoIterator<Item = BranchRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a BranchRecord;
    type IntoIter = std::slice::Iter<'a, BranchRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

/// The three mutually-exclusive trace partitions of the offline
/// training methodology (paper Table III): training traces come from
/// some program inputs, validation from others, and the reported test
/// numbers from yet others (the "ref" inputs).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceSet {
    /// Traces used to fit model weights.
    pub train: Vec<Trace>,
    /// Traces used to pick hard branches and select improved models.
    pub valid: Vec<Trace>,
    /// Unseen-input traces; all reported numbers are measured here.
    pub test: Vec<Trace>,
}

impl TraceSet {
    /// Creates an empty trace set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Total dynamic branches across all partitions.
    #[must_use]
    pub fn total_branches(&self) -> usize {
        self.train.iter().chain(&self.valid).chain(&self.test).map(Trace::len).sum()
    }

    /// Weighted aggregate of per-trace statistics over the test
    /// partition, using each trace's SimPoint weight.
    #[must_use]
    pub fn weighted_test_stats<F>(&self, mut eval: F) -> PredictionStats
    where
        F: FnMut(&Trace) -> PredictionStats,
    {
        let mut agg = PredictionStats::default();
        for t in &self.test {
            agg.merge_weighted(&eval(t), t.weight());
        }
        agg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::BranchRecord;

    fn mini_trace(n: usize, taken: bool) -> Trace {
        (0..n).map(|i| BranchRecord::conditional(0x100 + i as u64 * 8, taken)).collect()
    }

    #[test]
    fn trace_collects_and_counts() {
        let t = mini_trace(10, true);
        assert_eq!(t.len(), 10);
        assert!(!t.is_empty());
        // Each record contributes 1 + inst_gap(4) instructions.
        assert_eq!(t.instruction_count(), 50);
    }

    #[test]
    fn with_capacity_preallocates_without_changing_semantics() {
        let mut t = Trace::with_capacity(64);
        assert!(t.is_empty());
        assert!((t.weight() - 1.0).abs() < f64::EPSILON);
        for i in 0..64 {
            t.push(BranchRecord::conditional(0x100 + i * 8, true));
        }
        assert_eq!(t.len(), 64);
        t.reserve(128);
        assert_eq!(t.len(), 64);
    }

    #[test]
    fn trace_weight_defaults_to_one() {
        assert!((Trace::new().weight() - 1.0).abs() < f64::EPSILON);
        let t = Trace::with_label("leela/train1", 0.25);
        assert!((t.weight() - 0.25).abs() < f64::EPSILON);
        assert_eq!(t.label(), "leela/train1");
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn trace_rejects_nonpositive_weight() {
        let _ = Trace::with_label("bad", 0.0);
    }

    #[test]
    fn trace_set_counts_all_partitions() {
        let mut ts = TraceSet::new();
        ts.train.push(mini_trace(3, true));
        ts.valid.push(mini_trace(4, false));
        ts.test.push(mini_trace(5, true));
        assert_eq!(ts.total_branches(), 12);
    }

    #[test]
    fn weighted_test_stats_respects_weights() {
        let mut ts = TraceSet::new();
        let mut a = Trace::with_label("a", 2.0);
        a.extend(mini_trace(4, true).iter().copied());
        let mut b = Trace::with_label("b", 1.0);
        b.extend(mini_trace(4, false).iter().copied());
        ts.test = vec![a, b];
        // Predictor that always says taken: perfect on `a`, 0% on `b`.
        let stats = ts.weighted_test_stats(|t| {
            let mut s = PredictionStats::default();
            for r in t {
                s.record(r.taken, r.inst_gap);
            }
            s
        });
        // Weighted accuracy = (2*4 correct) / (2*4 + 1*4 predictions) = 2/3.
        assert!((stats.accuracy() - 2.0 / 3.0).abs() < 1e-9);
    }
}
