//! Branch history structures.
//!
//! Three views of history are needed by the predictors in this
//! workspace:
//!
//! * [`GlobalHistory`] — a long shift register of branch directions,
//!   used by gshare/perceptron/2-level predictors and the statistical
//!   corrector.
//! * [`PathHistory`] — a short register of low PC bits of taken
//!   branches, mixed into TAGE index hashes.
//! * [`FoldedHistory`] — the TAGE trick: an `n`-bit-long history folded
//!   into a small register by cyclic shifting, updated incrementally in
//!   O(1) per branch.
//! * [`HistoryRegister`] — the (PC, direction) integer encoding stream
//!   consumed by BranchNet's CNN (Section V-A "History Format").

use crate::record::BranchRecord;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A bounded shift register of branch directions, newest first.
///
/// ```
/// use branchnet_trace::history::GlobalHistory;
/// let mut h = GlobalHistory::new(8);
/// h.push(true);
/// h.push(false);
/// assert_eq!(h.bit(0), false); // newest
/// assert_eq!(h.bit(1), true);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalHistory {
    bits: VecDeque<bool>,
    capacity: usize,
}

impl GlobalHistory {
    /// Creates an empty history with room for `capacity` direction bits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history capacity must be positive");
        Self { bits: VecDeque::with_capacity(capacity), capacity }
    }

    /// Pushes the newest direction, evicting the oldest when full.
    pub fn push(&mut self, taken: bool) {
        if self.bits.len() == self.capacity {
            self.bits.pop_back();
        }
        self.bits.push_front(taken);
    }

    /// Direction of the branch `age` positions back (0 = newest).
    /// Out-of-range positions read as not-taken.
    #[must_use]
    pub fn bit(&self, age: usize) -> bool {
        self.bits.get(age).copied().unwrap_or(false)
    }

    /// Number of recorded directions (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether no branch has been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Maximum number of retained directions.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The newest `n` bits packed into a `u64` (bit 0 = newest).
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    #[must_use]
    pub fn low_bits(&self, n: usize) -> u64 {
        assert!(n <= 64, "at most 64 bits fit in a u64");
        let mut v = 0u64;
        for i in (0..n).rev() {
            v = (v << 1) | u64::from(self.bit(i));
        }
        v
    }

    /// Iterates over directions from newest to oldest.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.bits.iter().copied()
    }

    /// Clears all recorded history.
    pub fn clear(&mut self) {
        self.bits.clear();
    }
}

/// A register of low PC bits of recent branches, used as TAGE path
/// history. Holds `PATH_BITS_PER_BRANCH` bits per branch in a `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PathHistory {
    value: u64,
}

impl PathHistory {
    /// Bits of PC contributed per branch.
    pub const BITS_PER_BRANCH: u32 = 2;

    /// Creates an empty path history.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Shifts in the low bits of `pc`.
    pub fn push(&mut self, pc: u64) {
        self.value =
            (self.value << Self::BITS_PER_BRANCH) | (pc & ((1 << Self::BITS_PER_BRANCH) - 1));
    }

    /// The newest `n` path bits (n ≤ 64).
    #[must_use]
    pub fn low_bits(&self, n: u32) -> u64 {
        if n >= 64 {
            self.value
        } else {
            self.value & ((1u64 << n) - 1)
        }
    }
}

/// Incrementally-folded history as used by TAGE tables (Michaud's
/// cyclic shift register). Folds an `original_len`-bit direction
/// history into `compressed_len` bits, updated in O(1) per branch.
///
/// The invariant — checked by property tests — is that the register
/// always equals the XOR-fold of the newest `original_len` history bits
/// into `compressed_len`-bit chunks, each chunk rotated by its index.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FoldedHistory {
    comp: u64,
    original_len: usize,
    compressed_len: usize,
    /// `original_len % compressed_len`, the rotation of the outgoing bit.
    outpoint: usize,
}

impl FoldedHistory {
    /// Creates a folded register compressing `original_len` history bits
    /// into `compressed_len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `compressed_len` is zero or greater than 63.
    #[must_use]
    pub fn new(original_len: usize, compressed_len: usize) -> Self {
        assert!(compressed_len > 0 && compressed_len < 64);
        Self { comp: 0, original_len, compressed_len, outpoint: original_len % compressed_len }
    }

    /// Incrementally updates the fold given the incoming newest bit and
    /// the bit that is `original_len` positions old (the one falling out
    /// of the folded window). `outgoing` must be the direction recorded
    /// `original_len` branches ago (false if history is shorter).
    pub fn update(&mut self, incoming: bool, outgoing: bool) {
        self.comp = (self.comp << 1) | u64::from(incoming);
        self.comp ^= u64::from(outgoing) << self.outpoint;
        self.comp ^= (self.comp >> self.compressed_len) & 1;
        self.comp &= (1u64 << self.compressed_len) - 1;
    }

    /// Current folded value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.comp
    }

    /// The length of history being folded.
    #[must_use]
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// The width of the folded register.
    #[must_use]
    pub fn compressed_len(&self) -> usize {
        self.compressed_len
    }

    /// Recomputes the fold from scratch over a [`GlobalHistory`]; used
    /// for testing the incremental update.
    #[must_use]
    pub fn fold_from_history(
        history: &GlobalHistory,
        original_len: usize,
        compressed_len: usize,
    ) -> u64 {
        // Reconstruct by replaying the incremental update over the
        // recorded history, oldest first. This mirrors exactly what a
        // predictor performing `update` on every branch would hold.
        let mut f = FoldedHistory::new(original_len, compressed_len);
        let recorded: Vec<bool> = history.iter().collect(); // newest first
        for (i, &bit) in recorded.iter().enumerate().rev() {
            // When `bit` was pushed, the outgoing bit was the one
            // `original_len` older; with newest-first indexing that is
            // position i + original_len.
            let outgoing = recorded.get(i + original_len).copied().unwrap_or(false);
            f.update(bit, outgoing);
        }
        f.value()
    }
}

/// A bounded history of `(p+1)`-bit encoded branches — the CNN input
/// stream (Section V-A): low `pc_bits` of the PC concatenated with the
/// direction bit. Newest first.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryRegister {
    entries: VecDeque<u32>,
    capacity: usize,
    pc_bits: u32,
}

impl HistoryRegister {
    /// Creates an encoded-branch history holding `capacity` entries of
    /// `pc_bits`-bit PCs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `pc_bits` > 31.
    #[must_use]
    pub fn new(capacity: usize, pc_bits: u32) -> Self {
        assert!(capacity > 0);
        assert!(pc_bits <= 31);
        Self { entries: VecDeque::with_capacity(capacity), capacity, pc_bits }
    }

    /// Pushes a record, evicting the oldest when full.
    pub fn push(&mut self, record: &BranchRecord) {
        if self.entries.len() == self.capacity {
            self.entries.pop_back();
        }
        self.entries.push_front(record.encode(self.pc_bits));
    }

    /// The encoded entry `age` positions back (0 = newest); `None` if
    /// history is shorter.
    #[must_use]
    pub fn get(&self, age: usize) -> Option<u32> {
        self.entries.get(age).copied()
    }

    /// A snapshot of the newest `n` entries ordered **oldest→newest**
    /// (the order a convolution slides over), zero-padded at the front
    /// when fewer than `n` branches have been seen.
    #[must_use]
    pub fn window(&self, n: usize) -> Vec<u32> {
        let mut out = vec![0u32; n];
        for (i, slot) in out.iter_mut().enumerate() {
            // i = 0 is the oldest of the window = age n-1.
            let age = n - 1 - i;
            if let Some(v) = self.entries.get(age) {
                *slot = *v;
            }
        }
        out
    }

    /// Number of recorded entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the register is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Width of the PC field in each encoded entry.
    #[must_use]
    pub fn pc_bits(&self) -> u32 {
        self.pc_bits
    }

    /// Clears the register.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::BranchRecord;

    #[test]
    fn global_history_orders_newest_first() {
        let mut h = GlobalHistory::new(4);
        for b in [true, false, true, true] {
            h.push(b);
        }
        assert!(h.bit(0));
        assert!(h.bit(1));
        assert!(!h.bit(2));
        assert!(h.bit(3));
    }

    #[test]
    fn global_history_evicts_oldest() {
        let mut h = GlobalHistory::new(2);
        h.push(true);
        h.push(false);
        h.push(false);
        assert_eq!(h.len(), 2);
        assert!(!h.bit(0));
        assert!(!h.bit(1));
        assert!(!h.bit(2), "evicted bits read as not-taken");
    }

    #[test]
    fn low_bits_packs_newest_in_bit0() {
        let mut h = GlobalHistory::new(8);
        h.push(true); // will be bit 2
        h.push(false); // bit 1
        h.push(true); // bit 0
        assert_eq!(h.low_bits(3), 0b101);
        assert_eq!(h.low_bits(8), 0b101);
    }

    #[test]
    fn path_history_shifts_low_pc_bits() {
        let mut p = PathHistory::new();
        p.push(0b11);
        p.push(0b01);
        assert_eq!(p.low_bits(4), 0b1101);
    }

    #[test]
    fn folded_history_matches_from_scratch_reference() {
        let mut h = GlobalHistory::new(128);
        let mut f = FoldedHistory::new(37, 11);
        let dirs = [true, false, false, true, true, true, false, true, false, false];
        // Push 100 pseudo-random bits.
        for i in 0..100 {
            let bit = dirs[(i * 7 + 3) % dirs.len()];
            // The bit that will be `original_len` old once `bit` is pushed.
            let outgoing = if h.len() >= 37 { h.bit(36) } else { false };
            f.update(bit, outgoing);
            h.push(bit);
            assert_eq!(
                f.value(),
                FoldedHistory::fold_from_history(&h, 37, 11),
                "incremental fold diverged at step {i}"
            );
        }
    }

    #[test]
    fn folded_history_zero_when_empty() {
        let f = FoldedHistory::new(100, 12);
        assert_eq!(f.value(), 0);
    }

    #[test]
    fn history_register_window_is_oldest_to_newest_zero_padded() {
        let mut hr = HistoryRegister::new(8, 4);
        hr.push(&BranchRecord::conditional(0x1, true)); // encode: 0b11 = 3
        hr.push(&BranchRecord::conditional(0x2, false)); // encode: 0b100 = 4
        let w = hr.window(4);
        assert_eq!(w, vec![0, 0, 3, 4]);
    }

    #[test]
    fn history_register_evicts_oldest() {
        let mut hr = HistoryRegister::new(2, 4);
        hr.push(&BranchRecord::conditional(0x1, true));
        hr.push(&BranchRecord::conditional(0x2, true));
        hr.push(&BranchRecord::conditional(0x3, true));
        assert_eq!(hr.len(), 2);
        assert_eq!(hr.get(0), Some((0x3 << 1) | 1));
        assert_eq!(hr.get(1), Some((0x2 << 1) | 1));
        assert_eq!(hr.get(2), None);
    }
}
