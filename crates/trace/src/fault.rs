//! Deterministic fault injection for artifact byte streams.
//!
//! The deployment story (paper Section V-F) has the OS load per-branch
//! model files into the on-chip engine at program load and context
//! switches. In that world corrupt, truncated, or stale artifacts are
//! routine events, and the only acceptable failure mode is a typed
//! error followed by TAGE-SC-L fallback — never a panic. This module
//! is the attack half of that contract: a seeded [`FaultPlan`]
//! describes byte-level corruptions (bit flips, truncation, chunk
//! duplication/reordering, garbage headers, NaN/out-of-range weight
//! patterns) that the chaos suites replay against every consumer of
//! untrusted bytes — trace IO ([`crate::io`]), model-pack persistence
//! (`branchnet_core::persist`), and anything layered on them.
//!
//! Everything here is deterministic: a plan is a pure function of its
//! seed, and applying a plan to the same bytes always yields the same
//! corrupted bytes, so any chaos-suite failure replays exactly from
//! the reported seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Read, Write};

/// The IEEE-754 bit pattern injected by [`Fault::NanWeight`].
const NAN_BITS: u32 = f32::NAN.to_bits();
/// The out-of-range magnitude injected by [`Fault::HugeWeight`]
/// (far beyond any trained weight; rejected by model validation).
const HUGE: f32 = 1.0e30;

/// One byte-level corruption, positioned by absolute offset into the
/// artifact. Offsets past the end of the buffer make the fault a
/// no-op (except [`Fault::Truncate`], which clamps), so plans can be
/// generated without knowing the exact artifact length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Flip bit `bit` (0..8) of the byte at `offset`.
    BitFlip {
        /// Byte position.
        offset: u64,
        /// Bit within the byte (masked to 0..8).
        bit: u8,
    },
    /// Drop every byte at or past `offset` (torn write / short file).
    Truncate {
        /// First byte dropped.
        offset: u64,
    },
    /// Re-insert the `len` bytes at `offset` immediately after
    /// themselves (record duplication).
    DuplicateChunk {
        /// Start of the duplicated span.
        offset: u64,
        /// Span length in bytes.
        len: u64,
    },
    /// Swap the two `len`-byte chunks starting at `a` and `b` (record
    /// reordering). Overlapping or out-of-range chunks are a no-op.
    SwapChunks {
        /// Start of the first chunk.
        a: u64,
        /// Start of the second chunk.
        b: u64,
        /// Chunk length in bytes.
        len: u64,
    },
    /// Overwrite the first `len` bytes with seeded garbage (a stomped
    /// header: bad magic, bad version, nonsense lengths).
    GarbageHeader {
        /// Bytes overwritten from the start.
        len: u64,
        /// Seed for the garbage byte stream.
        seed: u64,
    },
    /// Overwrite the 4 bytes at `offset` with the f32 NaN bit pattern
    /// (NaN weight injection against float tables).
    NanWeight {
        /// Byte position of the overwritten word.
        offset: u64,
    },
    /// Overwrite the 4 bytes at `offset` with an absurdly large f32
    /// (out-of-range weight injection).
    HugeWeight {
        /// Byte position of the overwritten word.
        offset: u64,
    },
}

impl Fault {
    /// The fault's class name (stable; used by chaos-suite coverage
    /// assertions and failure reports).
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            Fault::BitFlip { .. } => "bit-flip",
            Fault::Truncate { .. } => "truncate",
            Fault::DuplicateChunk { .. } => "duplicate-chunk",
            Fault::SwapChunks { .. } => "swap-chunks",
            Fault::GarbageHeader { .. } => "garbage-header",
            Fault::NanWeight { .. } => "nan-weight",
            Fault::HugeWeight { .. } => "huge-weight",
        }
    }

    /// Applies this fault to `bytes` in place.
    fn apply(&self, bytes: &mut Vec<u8>) {
        let len = bytes.len() as u64;
        match *self {
            Fault::BitFlip { offset, bit } => {
                if offset < len {
                    bytes[offset as usize] ^= 1 << (bit % 8);
                }
            }
            Fault::Truncate { offset } => {
                bytes.truncate(offset.min(len) as usize);
            }
            Fault::DuplicateChunk { offset, len: n } => {
                if n > 0 && offset < len {
                    let end = offset.saturating_add(n).min(len) as usize;
                    let chunk: Vec<u8> = bytes[offset as usize..end].to_vec();
                    bytes.splice(end..end, chunk);
                }
            }
            Fault::SwapChunks { a, b, len: n } => {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                // Only swap disjoint, fully in-range chunks. Saturating
                // sums keep absurd offsets on the no-op path instead of
                // overflowing (debug builds have overflow checks live).
                if n > 0 && lo.saturating_add(n) <= hi && hi.saturating_add(n) <= len {
                    for i in 0..n as usize {
                        bytes.swap(lo as usize + i, hi as usize + i);
                    }
                }
            }
            Fault::GarbageHeader { len: n, seed } => {
                let mut rng = SmallRng::seed_from_u64(seed);
                let end = n.min(len) as usize;
                for byte in &mut bytes[..end] {
                    *byte = rng.gen::<u32>() as u8;
                }
            }
            Fault::NanWeight { offset } => overwrite_word(bytes, offset, NAN_BITS),
            Fault::HugeWeight { offset } => overwrite_word(bytes, offset, HUGE.to_bits()),
        }
    }
}

fn overwrite_word(bytes: &mut [u8], offset: u64, word: u32) {
    let Some(end) = offset.checked_add(4) else { return };
    if end <= bytes.len() as u64 {
        bytes[offset as usize..end as usize].copy_from_slice(&word.to_le_bytes());
    }
}

/// A deterministic, replayable corruption recipe: an ordered list of
/// [`Fault`]s applied left to right (later faults see earlier faults'
/// effects, including length changes).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The faults, applied in order.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// A plan with a single fault.
    #[must_use]
    pub fn single(fault: Fault) -> Self {
        Self { faults: vec![fault] }
    }

    /// Draws a random plan of 1..=3 faults with offsets inside
    /// `approx_len`. A pure function of `(seed, approx_len)`.
    #[must_use]
    pub fn generate(seed: u64, approx_len: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xFA_0175);
        let span = approx_len.max(1);
        let n = rng.gen_range(1..=3u32);
        let faults = (0..n).map(|_| random_fault(&mut rng, span)).collect();
        Self { faults }
    }

    /// One representative single-fault plan per fault class, each
    /// positioned inside `approx_len`. The chaos suites iterate this
    /// to prove every class degrades cleanly.
    #[must_use]
    pub fn one_of_each(seed: u64, approx_len: u64) -> Vec<Self> {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x0C1A55E5);
        let span = approx_len.max(8);
        let off = |rng: &mut SmallRng| rng.gen_range(0..span);
        let a = rng.gen_range(0..span / 2);
        let b = rng.gen_range(span / 2..span);
        vec![
            Self::single(Fault::BitFlip {
                offset: off(&mut rng),
                bit: rng.gen_range(0..8u32) as u8,
            }),
            Self::single(Fault::Truncate { offset: off(&mut rng) }),
            Self::single(Fault::DuplicateChunk {
                offset: off(&mut rng),
                len: rng.gen_range(1u64..16),
            }),
            Self::single(Fault::SwapChunks { a, b, len: rng.gen_range(1u64..8) }),
            Self::single(Fault::GarbageHeader {
                len: rng.gen_range(1u64..24),
                seed: rng.gen::<u64>(),
            }),
            Self::single(Fault::NanWeight { offset: off(&mut rng) }),
            Self::single(Fault::HugeWeight { offset: off(&mut rng) }),
        ]
    }

    /// Applies every fault to `bytes`, in order.
    pub fn apply(&self, bytes: &mut Vec<u8>) {
        for fault in &self.faults {
            fault.apply(bytes);
        }
    }

    /// Convenience: a corrupted copy of `bytes`.
    #[must_use]
    pub fn corrupt(&self, bytes: &[u8]) -> Vec<u8> {
        let mut out = bytes.to_vec();
        self.apply(&mut out);
        out
    }

    /// The class names of the plan's faults, for failure reports.
    #[must_use]
    pub fn classes(&self) -> Vec<&'static str> {
        self.faults.iter().map(Fault::class).collect()
    }
}

fn random_fault(rng: &mut SmallRng, span: u64) -> Fault {
    match rng.gen_range(0..7u32) {
        0 => Fault::BitFlip { offset: rng.gen_range(0..span), bit: rng.gen_range(0..8u32) as u8 },
        1 => Fault::Truncate { offset: rng.gen_range(0..span) },
        2 => Fault::DuplicateChunk { offset: rng.gen_range(0..span), len: rng.gen_range(1u64..16) },
        3 => {
            let a = rng.gen_range(0..span);
            let b = rng.gen_range(0..span);
            Fault::SwapChunks { a, b, len: rng.gen_range(1u64..8) }
        }
        4 => Fault::GarbageHeader { len: rng.gen_range(1u64..24), seed: rng.gen::<u64>() },
        5 => Fault::NanWeight { offset: rng.gen_range(0..span) },
        _ => Fault::HugeWeight { offset: rng.gen_range(0..span) },
    }
}

/// A [`Read`] adapter that serves the plan-corrupted view of an inner
/// reader. The inner stream is drained on first read (plans need
/// whole-buffer context for truncation and reordering), corrupted
/// once, then served positionally — so `read_trace(CorruptingReader::
/// new(file, plan))` behaves exactly like reading a corrupted file.
#[derive(Debug)]
pub struct CorruptingReader<R> {
    inner: Option<R>,
    plan: FaultPlan,
    buf: Vec<u8>,
    pos: usize,
}

impl<R: Read> CorruptingReader<R> {
    /// Wraps `inner` so reads observe the bytes corrupted by `plan`.
    #[must_use]
    pub fn new(inner: R, plan: FaultPlan) -> Self {
        Self { inner: Some(inner), plan, buf: Vec::new(), pos: 0 }
    }
}

impl<R: Read> Read for CorruptingReader<R> {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if let Some(mut inner) = self.inner.take() {
            if let Err(e) = inner.read_to_end(&mut self.buf) {
                // Never serve the partially drained, uncorrupted bytes
                // as success: drop them and surface the error (later
                // reads observe a clean EOF).
                self.buf.clear();
                return Err(e);
            }
            self.plan.apply(&mut self.buf);
        }
        let n = out.len().min(self.buf.len() - self.pos);
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// A [`Write`] adapter that buffers everything written through it and
/// emits the plan-corrupted bytes to the inner writer on
/// [`finish`](Self::finish) — modeling a writer whose output lands
/// corrupted on disk (bit rot, torn write, firmware bug).
#[derive(Debug)]
pub struct CorruptingWriter<W> {
    inner: W,
    plan: FaultPlan,
    buf: Vec<u8>,
}

impl<W: Write> CorruptingWriter<W> {
    /// Wraps `inner` so finished writes land corrupted by `plan`.
    #[must_use]
    pub fn new(inner: W, plan: FaultPlan) -> Self {
        Self { inner, plan, buf: Vec::new() }
    }

    /// Corrupts the buffered bytes and writes them through, returning
    /// the inner writer.
    ///
    /// # Errors
    ///
    /// Propagates the inner writer's I/O errors.
    pub fn finish(mut self) -> io::Result<W> {
        self.plan.apply(&mut self.buf);
        self.inner.write_all(&self.buf)?;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

impl<W: Write> Write for CorruptingWriter<W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        // Corruption is applied once, at `finish`; flushing the
        // partial buffer early would corrupt a prefix twice.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        (0u16..200).map(|i| (i * 7 % 251) as u8).collect()
    }

    #[test]
    fn plans_are_deterministic() {
        for seed in 0..32u64 {
            assert_eq!(FaultPlan::generate(seed, 500), FaultPlan::generate(seed, 500));
            let plan = FaultPlan::generate(seed, 500);
            assert_eq!(plan.corrupt(&sample()), plan.corrupt(&sample()));
        }
    }

    #[test]
    fn one_of_each_covers_every_class() {
        let plans = FaultPlan::one_of_each(1, 256);
        let classes: Vec<&str> = plans.iter().flat_map(FaultPlan::classes).collect();
        for class in [
            "bit-flip",
            "truncate",
            "duplicate-chunk",
            "swap-chunks",
            "garbage-header",
            "nan-weight",
            "huge-weight",
        ] {
            assert!(classes.contains(&class), "missing {class}");
        }
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let plan = FaultPlan::single(Fault::BitFlip { offset: 3, bit: 5 });
        let out = plan.corrupt(&sample());
        let diff: Vec<usize> = (0..out.len()).filter(|&i| out[i] != sample()[i]).collect();
        assert_eq!(diff, vec![3]);
        assert_eq!(out[3] ^ sample()[3], 1 << 5);
    }

    #[test]
    fn truncate_clamps_to_length() {
        let plan = FaultPlan::single(Fault::Truncate { offset: 10_000 });
        assert_eq!(plan.corrupt(&sample()), sample());
        let plan = FaultPlan::single(Fault::Truncate { offset: 7 });
        assert_eq!(plan.corrupt(&sample()).len(), 7);
    }

    #[test]
    fn duplicate_chunk_grows_the_buffer() {
        let plan = FaultPlan::single(Fault::DuplicateChunk { offset: 4, len: 6 });
        let out = plan.corrupt(&sample());
        assert_eq!(out.len(), sample().len() + 6);
        assert_eq!(&out[4..10], &out[10..16]);
    }

    #[test]
    fn swap_chunks_reorders_and_preserves_multiset() {
        let plan = FaultPlan::single(Fault::SwapChunks { a: 0, b: 100, len: 8 });
        let src = sample();
        let out = plan.corrupt(&src);
        assert_eq!(out.len(), src.len());
        assert_eq!(&out[..8], &src[100..108]);
        assert_eq!(&out[100..108], &src[..8]);
    }

    #[test]
    fn overlapping_swap_is_a_noop() {
        let plan = FaultPlan::single(Fault::SwapChunks { a: 10, b: 12, len: 8 });
        assert_eq!(plan.corrupt(&sample()), sample());
    }

    #[test]
    fn nan_weight_writes_the_nan_pattern() {
        let plan = FaultPlan::single(Fault::NanWeight { offset: 8 });
        let out = plan.corrupt(&sample());
        let word = f32::from_le_bytes(out[8..12].try_into().unwrap());
        assert!(word.is_nan());
    }

    #[test]
    fn out_of_range_faults_are_noops() {
        let src = sample();
        for fault in [
            Fault::BitFlip { offset: 10_000, bit: 0 },
            Fault::DuplicateChunk { offset: 10_000, len: 4 },
            Fault::SwapChunks { a: 0, b: 10_000, len: 4 },
            Fault::NanWeight { offset: src.len() as u64 - 2 },
            Fault::HugeWeight { offset: 10_000 },
        ] {
            assert_eq!(FaultPlan::single(fault).corrupt(&src), src, "{fault:?}");
        }
    }

    #[test]
    fn absurd_offsets_never_panic() {
        // The chaos suites run in debug where overflow checks are
        // live; plan values near u64::MAX must take the out-of-range
        // no-op/clamp path, not overflow.
        let src = sample();
        for fault in [
            Fault::BitFlip { offset: u64::MAX, bit: 7 },
            Fault::Truncate { offset: u64::MAX },
            Fault::DuplicateChunk { offset: 1, len: u64::MAX },
            Fault::DuplicateChunk { offset: u64::MAX, len: u64::MAX },
            Fault::SwapChunks { a: u64::MAX, b: 0, len: u64::MAX },
            Fault::SwapChunks { a: u64::MAX - 1, b: u64::MAX, len: 4 },
            Fault::GarbageHeader { len: u64::MAX, seed: 1 },
            Fault::NanWeight { offset: u64::MAX - 2 },
            Fault::HugeWeight { offset: u64::MAX },
        ] {
            let _ = FaultPlan::single(fault).corrupt(&src);
        }
    }

    #[test]
    fn corrupting_reader_does_not_serve_partial_bytes_after_inner_error() {
        // An inner reader that yields some bytes and then fails: the
        // error must surface, and the drained-but-never-corrupted
        // prefix must not be readable afterwards.
        struct FailingReader {
            served: bool,
        }
        impl Read for FailingReader {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                if self.served {
                    Err(io::Error::other("injected inner failure"))
                } else {
                    self.served = true;
                    let n = out.len().min(8);
                    out[..n].fill(0xAB);
                    Ok(n)
                }
            }
        }
        let plan = FaultPlan::single(Fault::Truncate { offset: 10_000 });
        let mut reader = CorruptingReader::new(FailingReader { served: false }, plan);
        let mut out = Vec::new();
        assert!(reader.read_to_end(&mut out).is_err());
        let mut after = Vec::new();
        assert_eq!(reader.read_to_end(&mut after).unwrap(), 0);
        assert!(after.is_empty(), "partial uncorrupted bytes must not leak");
    }

    #[test]
    fn corrupting_reader_matches_buffer_corruption() {
        let src = sample();
        for seed in 0..16u64 {
            let plan = FaultPlan::generate(seed, src.len() as u64);
            let mut via_reader = Vec::new();
            CorruptingReader::new(src.as_slice(), plan.clone())
                .read_to_end(&mut via_reader)
                .unwrap();
            assert_eq!(via_reader, plan.corrupt(&src), "seed {seed}");
        }
    }

    #[test]
    fn corrupting_writer_matches_buffer_corruption() {
        let src = sample();
        for seed in 0..16u64 {
            let plan = FaultPlan::generate(seed, src.len() as u64);
            let mut w = CorruptingWriter::new(Vec::new(), plan.clone());
            // Write in uneven pieces to exercise buffering.
            w.write_all(&src[..13]).unwrap();
            w.write_all(&src[13..]).unwrap();
            let out = w.finish().unwrap();
            assert_eq!(out, plan.corrupt(&src), "seed {seed}");
        }
    }
}
