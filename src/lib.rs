//! # BranchNet
//!
//! A reproduction of *"BranchNet: A Convolutional Neural Network to
//! Predict Hard-To-Predict Branches"* (Zangeneh, Pruett, Lym, Patt —
//! MICRO 2020), built as a Rust workspace.
//!
//! This facade crate re-exports every member crate so applications can
//! depend on a single package:
//!
//! * [`trace`] — branch records, traces, histories, statistics.
//! * [`workloads`] — synthetic SPEC2017-Int-like workload generators.
//! * [`tage`] — TAGE-SC-L, MTAGE-SC and classic runtime predictors.
//! * [`nn`] — a from-scratch CNN library (layers, backprop, optimizers).
//! * [`core`] — BranchNet models, quantization, the on-chip inference
//!   engine, offline training pipeline, and the hybrid predictor.
//! * [`sim`] — a trace-driven pipeline timing model for IPC studies.
//!
//! # Quickstart
//!
//! Train a Big-BranchNet on the paper's Fig. 3 motivating
//! microbenchmark and compare it against TAGE-SC-L — see
//! `examples/quickstart.rs` for the full program:
//!
//! ```
//! use branchnet::tage::{Predictor, TageScL, TageSclConfig};
//! use branchnet::trace::BranchRecord;
//!
//! let mut tage = TageScL::new(&TageSclConfig::tage_sc_l_64kb());
//! let r = BranchRecord::conditional(0x4000, true);
//! let predicted = tage.predict(r.pc);
//! tage.update(&r, predicted);
//! ```

pub use branchnet_core as core;
pub use branchnet_nn as nn;
pub use branchnet_sim as sim;
pub use branchnet_tage as tage;
pub use branchnet_trace as trace;
pub use branchnet_workloads as workloads;
