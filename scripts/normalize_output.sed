# Strips the run-dependent tokens from reproduce_output.txt — section
# wall-clock, summary seconds, gauntlet in-pass milliseconds, total
# time, thread fan-out, and cache counters — so two runs of the same
# tree byte-compare equal. Used by the CI baseline-staleness check;
# everything else in the output is deterministic at any
# BRANCHNET_THREADS. The gauntlet pass/lane counts are deterministic
# (one pass per trace walked) and stay in the comparison, as does the
# degradation line: its counters are zero on a healthy no-fault run,
# so keeping it verbatim makes the golden diff an implicit
# no-degradation check.
s/| threads: [0-9][0-9]*/| threads: T/
s/^\(=== .*\) \[[0-9][0-9]*s\] ===$/\1 [Ts] ===/
s/ *[0-9][0-9]*\.[0-9]s$/ T.Ts/
s/ *[0-9][0-9]*\.[0-9]s  \[gauntlet:/ T.Ts  [gauntlet:/
s/, [0-9][0-9]*ms\]$/, Tms]/
s/^Done in [0-9][0-9]*s\.$/Done in Ts./
s/^cache: .*/cache: C/
s/^json report: .*/json report: R/
