#!/usr/bin/env bash
# Regenerates the golden quick-scale baselines (baselines/quick/)
# consumed by fidelity_gate, plus the human-readable
# reproduce_output.txt, from the current tree.
#
# The experiment artifacts are byte-deterministic at any
# BRANCHNET_THREADS (ordered-merge guarantee); the documented
# regeneration config pins THREADS=2 to match CI. Commit the result in
# the same PR as the change that moved the numbers — the fidelity gate
# and the staleness check both fail until the baselines describe the
# tree again.
set -euo pipefail
cd "$(dirname "$0")/.."

export BRANCHNET_SCALE=quick
export BRANCHNET_THREADS="${BRANCHNET_THREADS:-2}"

cargo build --release -p branchnet-bench
rm -rf baselines/quick
./target/release/reproduce --json baselines/quick | tee reproduce_output.txt
echo "Regenerated baselines/quick/ and reproduce_output.txt."
