#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== test (release) =="
cargo test -q --release --workspace

echo "== rustfmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI checks passed."
