#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml — run before pushing.
#
# The fidelity and determinism jobs re-run the whole quick reproduce
# (once and twice respectively), which takes tens of minutes per run on
# a laptop core, so they are opt-in locally: BRANCHNET_CI_FIDELITY=1
# and/or BRANCHNET_CI_DETERMINISM=1. BRANCHNET_CI_CHAOS=1 re-runs the
# fault-injection suites at 8x the proptest case count (quick).
set -euo pipefail
cd "$(dirname "$0")/.."

cleanup() { rm -rf "${fresh:-}" "${runs:-}"; }
trap cleanup EXIT

echo "== build (offline, locked) =="
cargo build --offline --locked --workspace

echo "== build (release) =="
cargo build --release --workspace

echo "== test (release) =="
cargo test -q --release --workspace

echo "== predictor conformance (every lineup baseline + hybrid) =="
# A named pass over the shared conformance suites so a baseline that
# skips lineup registration (or a predictor that violates the
# gauntlet/flush/storage contracts) fails loudly, not buried in the
# workspace wall of tests.
cargo test -q --release -p branchnet-trace --test conformance
cargo test -q --release -p branchnet-tage --test conformance
cargo test -q --release -p branchnet-core --test conformance

echo "== rustfmt =="
cargo fmt --all --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

if [ "${BRANCHNET_CI_CHAOS:-0}" = "1" ]; then
  echo "== chaos (fault injection, 512 proptest cases, debug) =="
  # Debug profile on purpose: overflow/shift checks are live, so
  # arithmetic on corrupted values panics here even where release
  # would wrap silently.
  PROPTEST_CASES=512 cargo test -q -p branchnet-trace --test chaos
  PROPTEST_CASES=512 cargo test -q -p branchnet-core --test chaos
fi

if [ "${BRANCHNET_CI_FIDELITY:-0}" = "1" ]; then
  echo "== fidelity gate =="
  fresh="$(mktemp -d)"
  BRANCHNET_SCALE=quick ./target/release/reproduce --json "$fresh/run" \
    > "$fresh/reproduce_output.txt"
  ./target/release/fidelity_gate "$fresh/run" --baseline baselines/quick
  for f in baselines/quick/*.json; do
    name="$(basename "$f")"
    [ "$name" = manifest.json ] && continue
    cmp "$f" "$fresh/run/$name"
  done
  sed -f scripts/normalize_output.sed reproduce_output.txt > "$fresh/committed.norm"
  sed -f scripts/normalize_output.sed "$fresh/reproduce_output.txt" > "$fresh/fresh.norm"
  diff -u "$fresh/committed.norm" "$fresh/fresh.norm"
fi

if [ "${BRANCHNET_CI_DETERMINISM:-0}" = "1" ]; then
  echo "== thread determinism =="
  runs="$(mktemp -d)"
  BRANCHNET_SCALE=quick BRANCHNET_THREADS=1 \
    ./target/release/reproduce --json "$runs/t1" > /dev/null
  BRANCHNET_SCALE=quick BRANCHNET_THREADS=4 \
    ./target/release/reproduce --json "$runs/t4" > /dev/null
  diff -r -x manifest.json "$runs/t1" "$runs/t4"
fi

echo "CI checks passed."
