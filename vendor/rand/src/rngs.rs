//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The xoshiro256++ generator — the algorithm behind `rand 0.8`'s
/// `SmallRng` on 64-bit targets. Fast, 256 bits of state, passes
/// BigCrush; not cryptographically secure (nor does any caller here
/// need it to be).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 expansion, as rand_xoshiro's seed_from_u64 does.
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
