//! Sequence utilities (`SliceRandom`).

use crate::{Rng, RngCore};

/// Uniform index below `ubound`, using 32-bit sampling for small
/// bounds exactly as `rand 0.8`'s `gen_index` does (keeps seeded
/// streams aligned with the upstream implementation).
fn gen_index<R: RngCore>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= u32::MAX as usize {
        rng.gen_range(0..ubound as u32) as usize
    } else {
        rng.gen_range(0..ubound)
    }
}

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, high index down).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// Uniformly-random element, or `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[gen_index(rng, self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, (0..50).collect::<Vec<u32>>(), "50 elements should not stay in place");
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = SmallRng::seed_from_u64(1);
        let v = [3u8, 5, 7];
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
