//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache,
//! so the workspace vendors the small API subset it actually uses:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ with SplitMix64 `seed_from_u64`,
//!   the same algorithm `rand 0.8` uses on 64-bit targets, so seeded
//!   streams are reproducible and statistically sound;
//! * [`Rng::gen_range`] over integer and float ranges (Lemire
//!   widening-multiply rejection for integers, matching rand 0.8);
//! * [`Rng::gen_bool`] (Bernoulli via a 2^64 fixed-point threshold);
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates, high-to-low).
//!
//! Everything is deterministic given the seed; no OS entropy is ever
//! consulted (there is deliberately no `thread_rng`).

pub mod rngs;
pub mod seq;

/// Low-level generator interface: raw 32/64-bit output.
pub trait RngCore {
    /// Next raw 32 bits (the low half of [`RngCore::next_u64`], as in
    /// `rand_xoshiro`).
    fn next_u32(&mut self) -> u32;
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction. Only `seed_from_u64` is provided: all
/// randomness in this workspace flows through explicit `u64` seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed via SplitMix64 expansion
    /// (identical to `rand 0.8`'s `SmallRng::seed_from_u64`).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a [`Standard`]-distributed type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} outside [0, 1]");
        if p >= 1.0 {
            return true;
        }
        // Fixed-point threshold: p scaled by 2^64 (rand 0.8 Bernoulli).
        let p_int = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < p_int
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from raw generator output ("standard"
/// distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 24 significant bits into [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 significant bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range a value can be drawn from uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Lemire's widening-multiply method over a 32-bit sample space.
#[inline]
fn lemire32<R: RngCore>(rng: &mut R, span: u32) -> u32 {
    debug_assert!(span > 0);
    let zone = (span << span.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u32();
        let m = u64::from(v) * u64::from(span);
        if (m as u32) <= zone {
            return (m >> 32) as u32;
        }
    }
}

/// Lemire's widening-multiply method over a 64-bit sample space.
#[inline]
fn lemire64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = (span << span.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = u128::from(v) * u128::from(span);
        if (m as u64) <= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range_impl {
    ($ty:ty, $uty:ty, $lemire:ident, $raw:ident) => {
        impl SampleRange for core::ops::Range<$ty> {
            type Output = $ty;
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = self.end.wrapping_sub(self.start) as $uty;
                self.start.wrapping_add($lemire(rng, span.into()) as $ty)
            }
        }

        impl SampleRange for core::ops::RangeInclusive<$ty> {
            type Output = $ty;
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi.wrapping_sub(lo) as $uty).wrapping_add(1);
                if span == 0 {
                    // Full domain: every raw draw is valid.
                    return rng.$raw() as $ty;
                }
                lo.wrapping_add($lemire(rng, span.into()) as $ty)
            }
        }
    };
}

int_range_impl!(u8, u8, lemire32, next_u32);
int_range_impl!(u16, u16, lemire32, next_u32);
int_range_impl!(u32, u32, lemire32, next_u32);
int_range_impl!(i8, u8, lemire32, next_u32);
int_range_impl!(i16, u16, lemire32, next_u32);
int_range_impl!(i32, u32, lemire32, next_u32);
int_range_impl!(u64, u64, lemire64, next_u64);
int_range_impl!(i64, u64, lemire64, next_u64);
int_range_impl!(usize, u64, lemire64, next_u64);
int_range_impl!(isize, u64, lemire64, next_u64);

macro_rules! float_range_impl {
    ($ty:ty) => {
        impl SampleRange for core::ops::Range<$ty> {
            type Output = $ty;
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit: $ty = Standard::sample(rng);
                let v = unit * (self.end - self.start) + self.start;
                // Guard the open upper bound against rounding.
                if v >= self.end {
                    <$ty>::max(self.start, self.end - (self.end - self.start) * <$ty>::EPSILON)
                } else {
                    v
                }
            }
        }
    };
}

float_range_impl!(f32);
float_range_impl!(f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ seeded via SplitMix64(0), the
        // construction rand 0.8's SmallRng::seed_from_u64(0) uses.
        let mut r = SmallRng::seed_from_u64(0);
        let first = r.next_u64();
        // SplitMix64(0) expands to these four state words:
        // e220a8397b1dcdaf, 6e789e6aa1b965f4, 06c45d188009454f,
        // f88bb8a8724c81ec; xoshiro256++ output 1 is
        // rotl(s0 + s3, 23) + s0.
        let s0 = 0xe220a8397b1dcdafu64;
        let s3 = 0xf88bb8a8724c81ecu64;
        assert_eq!(first, s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(5u64..=9);
            assert!((5..=9).contains(&w));
            let f = r.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..600 {
            seen[r.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn gen_bool_rejects_invalid_probability() {
        let mut r = SmallRng::seed_from_u64(0);
        let _ = r.gen_bool(1.5);
    }
}
