//! No-op `Serialize` / `Deserialize` derives for the vendored serde
//! stub: the workspace uses the derives purely as annotations, so
//! expanding to nothing is sufficient (and keeps compile times nil).

use proc_macro::TokenStream;

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
