//! Offline vendored mini-criterion.
//!
//! The build environment has no network access, so this crate provides
//! the criterion API subset the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`Throughput`],
//! [`BatchSize`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — backed by a plain wall-clock timer. Each benchmark warms
//! up briefly, then runs for ~200 ms and reports the mean time per
//! iteration (plus derived throughput). There is no statistics engine,
//! no outlier analysis, and no baseline persistence; the numbers are
//! indicative, not publication-grade.

use std::time::{Duration, Instant};

/// How elapsed time is normalized in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Report per-element rates.
    Elements(u64),
    /// Report per-byte rates.
    Bytes(u64),
}

/// Hint for how setup output is batched in
/// [`Bencher::iter_batched`]. The mini harness runs one setup per
/// measured iteration regardless, so this only mirrors the API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One batch per measurement.
    PerIteration,
}

/// Measurement driver passed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(200);

impl Bencher {
    fn new() -> Self {
        Self { iters_done: 0, elapsed: Duration::ZERO }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (untimed).
        let start = Instant::now();
        while start.elapsed() < WARMUP {
            std::hint::black_box(routine());
        }
        // Measurement.
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= MEASURE {
                self.iters_done = iters;
                self.elapsed = elapsed;
                break;
            }
        }
    }

    /// Times `routine` over fresh `setup` output each iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP {
            std::hint::black_box(routine(setup()));
        }
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        while measured < MEASURE {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.iters_done = iters;
        self.elapsed = measured;
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters_done == 0 {
        println!("{name:<40} (no iterations)");
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters_done as f64;
    let time = if per_iter >= 1.0 {
        format!("{per_iter:.3} s")
    } else if per_iter >= 1e-3 {
        format!("{:.3} ms", per_iter * 1e3)
    } else if per_iter >= 1e-6 {
        format!("{:.3} us", per_iter * 1e6)
    } else {
        format!("{:.1} ns", per_iter * 1e9)
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 / per_iter)
        }
        None => String::new(),
    };
    println!("{name:<40} {time:>12}/iter  ({} iters){rate}", b.iters_done);
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(name, &b, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string(), throughput: None }
    }
}

/// A group of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Mirror of criterion's sample-size knob (ignored: the mini
    /// harness is time-budgeted).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{}", self.name, name), &b, self.throughput);
        self
    }

    /// Ends the group (formatting no-op).
    pub fn finish(self) {}
}

/// Re-export matching criterion's; benches here import
/// `std::hint::black_box` directly, but the macro-generated code may
/// reference it.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            });
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_runs_batched_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        let mut sum = 0u64;
        group.bench_function("sum", |b| {
            b.iter_batched(|| 7u64, |x| sum = sum.wrapping_add(x), BatchSize::SmallInput);
        });
        group.finish();
        assert!(sum > 0);
    }
}
