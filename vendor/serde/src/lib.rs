//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no network access, and this workspace
//! only uses serde as *annotations* (`#[derive(Serialize,
//! Deserialize)]`) — no code path serializes through serde traits
//! (model files use the explicit binary codec in
//! `branchnet-core::persist`). This stub therefore provides the two
//! marker traits and re-exports no-op derive macros under the same
//! names, exactly mirroring real serde's namespace layout (trait and
//! derive share a name in different namespaces).

/// Marker for types declared serializable.
pub trait Serialize {}

/// Marker for types declared deserializable.
pub trait Deserialize<'de>: Sized {}

/// Marker for types deserializable without borrowing.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};
