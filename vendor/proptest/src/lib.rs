//! Offline vendored mini-proptest.
//!
//! The build environment has no network access, so this crate
//! reimplements the small proptest API surface the workspace's tests
//! use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assert_ne!`/`prop_assume!`, and strategies for ranges,
//! `any::<T>()`, tuples, `prop::collection::vec`, and
//! `prop::sample::select`.
//!
//! Semantics versus real proptest:
//!
//! * cases are drawn from a deterministic seeded RNG (no persistence
//!   files, no OS entropy) — every run tests the same cases;
//! * there is **no shrinking**: a failure reports the exact drawn
//!   inputs instead of a minimized case;
//! * `prop_assume!` skips the case without drawing a replacement;
//! * the default case count is 64 (real proptest: 256) — the figure
//!   tests here train CNNs per case, so the lower default keeps test
//!   time sane. Override per block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`, or for a
//!   whole run with the `PROPTEST_CASES` environment variable (which
//!   real proptest also honors; it scales the default, not explicit
//!   `with_cases` blocks).

use rand::rngs::SmallRng;

pub mod collection;
pub mod sample;

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };

    /// Mirror of the `proptest::prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Runner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest reads PROPTEST_CASES into its default config;
        // the chaos CI job uses it to raise coverage without code
        // edits. Explicit `with_cases(n)` blocks are unaffected.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64);
        Self { cases }
    }
}

/// A recipe for generating random values of `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut SmallRng) -> $ty {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut SmallRng) -> $ty {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut SmallRng) -> $ty {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

float_strategy!(f32, f64);

/// The `any::<T>()` strategy: arbitrary values over `T`'s full domain.
pub struct Any<T>(core::marker::PhantomData<T>);

/// Creates an [`Any`] strategy for `T`.
#[must_use]
pub fn any<T>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! any_impl {
    ($($ty:ty),*) => {$(
        impl Strategy for Any<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut SmallRng) -> $ty {
                rand::Rng::gen::<$ty>(rng)
            }
        }
    )*};
}

any_impl!(bool, u32, u64, usize, f32, f64);

impl Strategy for Any<u8> {
    type Value = u8;
    fn sample(&self, rng: &mut SmallRng) -> u8 {
        rand::Rng::gen::<u32>(rng) as u8
    }
}

impl Strategy for Any<u16> {
    type Value = u16;
    fn sample(&self, rng: &mut SmallRng) -> u16 {
        rand::Rng::gen::<u32>(rng) as u16
    }
}

impl Strategy for Any<i32> {
    type Value = i32;
    fn sample(&self, rng: &mut SmallRng) -> i32 {
        rand::Rng::gen::<u32>(rng) as i32
    }
}

impl Strategy for Any<i64> {
    type Value = i64;
    fn sample(&self, rng: &mut SmallRng) -> i64 {
        rand::Rng::gen::<u64>(rng) as i64
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// The seeded generator a property block runs on. Exposed for the
/// macro expansion only.
#[doc(hidden)]
#[must_use]
pub fn runner_rng(test_name: &str) -> SmallRng {
    // Stable per-test seed: tests draw distinct streams, reruns are
    // identical.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    rand::SeedableRng::seed_from_u64(h)
}

/// Defines property tests. See crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::runner_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let case_desc = format!(
                        concat!("case {}/{}: ", $(stringify!($arg), " = {:?} ",)* ),
                        case + 1, config.cases, $(&$arg),*
                    );
                    let run = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        || { $body }
                    ));
                    if let Err(payload) = run {
                        eprintln!("proptest failure in {}\n  {}", stringify!($name), case_desc);
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics with context).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0.0f64..1.0, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            let _ = b;
        }

        #[test]
        fn vec_lengths_respect_spec(
            v in prop::collection::vec(any::<u64>(), 2..9),
            w in prop::collection::vec(0u8..4, 5),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert_eq!(w.len(), 5);
            prop_assert!(w.iter().all(|&x| x < 4));
        }

        #[test]
        fn select_draws_members(x in prop::sample::select(vec![2usize, 4, 8])) {
            prop_assert!([2usize, 4, 8].contains(&x));
        }

        #[test]
        fn tuples_and_assume(pair in (0u32..10, any::<bool>())) {
            prop_assume!(pair.1);
            prop_assert!(pair.0 < 10);
        }
    }

    #[test]
    fn runner_rng_differs_per_test_name() {
        use rand::RngCore;
        let a = crate::runner_rng("a").next_u64();
        let b = crate::runner_rng("b").next_u64();
        assert_ne!(a, b);
    }
}
