//! Sampling strategies (`prop::sample::select`).

use crate::Strategy;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;

/// Strategy drawing uniformly from an explicit list of options.
///
/// # Panics
///
/// Sampling panics if `options` is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    Select { options }
}

/// See [`select`].
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut SmallRng) -> T {
        self.options.choose(rng).expect("select requires at least one option").clone()
    }
}
