//! Collection strategies (`prop::collection::vec`).

use crate::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;

/// A length specification for [`vec`]: a fixed size, `lo..hi`, or
/// `lo..=hi`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        Self { lo: r.start, hi: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec length range");
        Self { lo: *r.start(), hi: *r.end() }
    }
}

/// Strategy producing `Vec`s of `element` with lengths drawn from
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
